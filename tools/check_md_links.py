#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.

Walks every ``*.md`` file in the repository (skipping dot-directories),
extracts inline links and bare relative references, and verifies that

* relative file targets exist (relative to the linking file), and
* ``#fragment`` anchors point at a heading that actually exists in the
  target file (GitHub-style slugs: lowercased, punctuation stripped,
  spaces to dashes).

External links (``http(s)://``, ``mailto:``) are not fetched — this is
the *intra-repo* consistency gate the docs CI job runs.  Exits
non-zero listing every broken link.

Usage::

    python tools/check_md_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", ".github", "__pycache__", "node_modules"}
#: Retrieval artifacts, not repo documentation: excerpted external
#: material whose internal anchors point at sections that were never
#: copied.  Authored docs are never listed here.
SKIP_FILES = {"SNIPPETS.md", "PAPERS.md", "PAPER.md"}


def slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {slugify(match) for match in HEADING_RE.findall(text)}


def check(root: Path) -> int:
    failures = []
    md_files = [
        path
        for path in sorted(root.rglob("*.md"))
        if path.name not in SKIP_FILES
        and not any(
            part in SKIP_DIRS or part.startswith(".")
            for part in path.parts[len(root.parts):-1]
        )
    ]
    checked = 0
    for md in md_files:
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            raw_path, _, fragment = target.partition("#")
            dest = md if not raw_path else (md.parent / raw_path).resolve()
            rel = md.relative_to(root)
            if not dest.exists():
                failures.append(f"{rel}: broken link target {target!r}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    failures.append(
                        f"{rel}: no heading for anchor {target!r}"
                    )
    for failure in failures:
        print(failure, file=sys.stderr)
    print(
        f"checked {checked} intra-repo links across {len(md_files)} "
        f"markdown files: {len(failures)} broken"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    raise SystemExit(check(root))
