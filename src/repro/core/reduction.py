"""Static arguments and reduced programs (Section 5, Defs 5.1-5.2).

A bound argument position of the adorned recursive predicate is
*static* when every body occurrence carries the same variable there as
the head.  Lemma 5.1: substituting the query's constant for that
variable and deleting the position preserves the query's answers.  The
lemma turns programs outside the Section 4 classes into programs inside
them — Examples 5.1 and 5.2, including the pseudo-left-linear rules of
Definition 5.3 (Lemma 5.2: reducing every static bound argument of a
pseudo-left-linear program yields a left-linear program).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.adornment import (
    AdornedProgram,
    Adornment,
    adorned_name,
    split_adorned_name,
)
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.engine.unify import Substitution


def static_argument_positions(
    program: Program, predicate: str, adornment: Adornment
) -> List[int]:
    """Bound positions that are static (Definition 5.1).

    A position qualifies when, in every rule for ``predicate``, the
    head's argument there is a variable and every body occurrence
    carries that same variable at that position.
    """
    candidates = set(adornment.bound_positions())
    for rule in program.rules_for(predicate):
        for position in list(candidates):
            head_arg = rule.head.args[position]
            if not isinstance(head_arg, Variable):
                candidates.discard(position)
                continue
            for literal in rule.body:
                if literal.predicate != predicate:
                    continue
                if literal.args[position] != head_arg:
                    candidates.discard(position)
                    break
    return sorted(candidates)


@dataclass
class ReductionResult:
    """The reduced program, its query, and the positions removed."""

    program: Program
    goal: Literal
    removed_positions: Tuple[int, ...]
    original_predicate: str
    reduced_predicate: str
    adornment: Adornment


def reduce_static_arguments(
    program: Program,
    goal: Literal,
    positions: Optional[Sequence[int]] = None,
    reduced_predicate: Optional[str] = None,
) -> ReductionResult:
    """Reduce the program with respect to static bound positions (Def 5.2).

    ``program`` is the adorned program, ``goal`` the adorned query.
    ``positions`` defaults to every static bound argument position.
    Every rule is instantiated with the query's constants at those
    positions (the substitution ``X <- c``), and the positions are
    deleted from every occurrence, producing the lower-arity predicate
    ``s`` of Example 5.1.
    """
    predicate = goal.predicate
    base, adornment = split_adorned_name(predicate)
    if adornment is None:
        raise ValueError(f"goal {goal} is not adorned")
    if positions is None:
        positions = static_argument_positions(program, predicate, adornment)
    positions = tuple(sorted(positions))
    if not positions:
        raise ValueError("no static argument positions to reduce")
    for position in positions:
        if adornment[position] != "b":
            raise ValueError(f"position {position} is not bound in {adornment}")
        if not goal.args[position].is_ground():
            raise ValueError(f"query argument {position} is not ground")

    new_adornment = Adornment(
        "".join(ch for i, ch in enumerate(adornment) if i not in positions)
    )
    reduced_predicate = reduced_predicate or adorned_name(
        f"{base}_red", new_adornment
    )

    def reduce_literal(literal: Literal) -> Literal:
        return Literal(
            reduced_predicate,
            tuple(arg for i, arg in enumerate(literal.args) if i not in positions),
        )

    new_rules: List[Rule] = []
    for rule in program.rules:
        if rule.head.predicate != predicate:
            # Unit programs only define the one predicate, but keep any
            # bystander rules intact (e.g. a query rule).
            new_body = tuple(
                reduce_literal(lit) if lit.predicate == predicate else lit
                for lit in rule.body
            )
            new_rules.append(Rule(rule.head, new_body))
            continue
        # Substitution X <- c for each reduced position.
        mapping: Dict[Variable, Term] = {}
        consistent = True
        for position in positions:
            head_arg = rule.head.args[position]
            constant = goal.args[position]
            if isinstance(head_arg, Variable):
                existing = mapping.get(head_arg)
                if existing is not None and existing != constant:
                    consistent = False
                    break
                mapping[head_arg] = constant
            elif head_arg != constant:
                # A rule head with a different constant can never
                # contribute to this query; drop it.
                consistent = False
                break
        if not consistent:
            continue
        subst = Substitution(dict(mapping))
        head = reduce_literal(subst.apply_literal(rule.head))
        body = tuple(
            reduce_literal(subst.apply_literal(lit))
            if lit.predicate == predicate
            else subst.apply_literal(lit)
            for lit in rule.body
        )
        new_rules.append(Rule(head, body))

    new_goal = reduce_literal(goal)
    return ReductionResult(
        program=Program(new_rules),
        goal=new_goal,
        removed_positions=positions,
        original_predicate=predicate,
        reduced_predicate=reduced_predicate,
        adornment=new_adornment,
    )
