"""The additional optimizations of Section 5.

These are the rewrites the paper applies after factoring to reach the
small programs printed in Examples 4.2-4.6 and 5.3:

* **Proposition 5.4 (a)** — delete a rule whose head literal appears in
  its own body (a special case of deletion under uniform equivalence);
* **Proposition 5.1** — delete a ``magic`` body literal when the same
  rule body carries the ``bp`` literal with identical arguments
  (``bp ⊆ magic`` holds by construction of the factored program);
* **Propositions 5.2 / 5.3 (+ the symmetric variant)** — in a body
  that contains an ``fp`` literal, delete a ``bp`` literal whose
  arguments are all anonymous (single-occurrence variables, Proposition
  5.5) or exactly the query-seed constants; symmetrically delete an
  anonymous ``fp`` literal from a body containing a ``bp`` literal
  (every ``bp`` fact exists iff some ``fp`` fact exists);
* **Proposition 5.4 (b)** — delete rules for predicates unreachable
  from the query;
* **deletion under uniform equivalence** ([13], used in Example 5.3's
  final step) — rule ``r`` is deleted when freezing its body to fresh
  constants and evaluating the remaining rules rederives its frozen
  head; decided by the chase, which terminates for Datalog rules (the
  pass skips programs with function symbols, whose chase may diverge).

The passes iterate to a fixpoint.  Section 7.4 notes that the final
program may depend on the order of deletions; this implementation uses
a fixed, documented order (the one above) so results are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.factoring import FactoredProgram
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable


@dataclass
class SimplificationTrace:
    """A log of every deletion, for inspection and tests."""

    steps: List[str] = field(default_factory=list)

    def record(self, pass_name: str, detail: str) -> None:
        self.steps.append(f"[{pass_name}] {detail}")

    def __str__(self) -> str:
        return "\n".join(self.steps)


def _delete_tautologies(program: Program, trace: SimplificationTrace) -> Program:
    """Proposition 5.4 (a): head literal appears in the body."""
    kept: List[Rule] = []
    for rule in program.rules:
        if rule.head in rule.body:
            trace.record("prop-5.4a", f"deleted tautological rule: {rule}")
        else:
            kept.append(rule)
    return Program(kept)


def _delete_magic_duplicates(
    program: Program,
    bound: str,
    magic: str,
    trace: SimplificationTrace,
) -> Program:
    """Proposition 5.1: drop ``magic(t̄)`` next to ``bp(t̄)``."""
    new_rules: List[Rule] = []
    for rule in program.rules:
        bound_args = {lit.args for lit in rule.body if lit.predicate == bound}
        body: List[Literal] = []
        for literal in rule.body:
            if literal.predicate == magic and literal.args in bound_args:
                trace.record("prop-5.1", f"deleted {literal} from: {rule}")
                continue
            body.append(literal)
        new_rules.append(Rule(rule.head, body))
    return Program(new_rules)


def _occurrence_counts(rule: Rule) -> Dict[Variable, int]:
    counts: Dict[Variable, int] = {}
    for literal in (rule.head, *rule.body):
        for var in literal.iter_variables():
            counts[var] = counts.get(var, 0) + 1
    return counts


def _is_anonymous_literal(literal: Literal, counts: Dict[Variable, int]) -> bool:
    """All arguments are variables occurring nowhere else in the rule."""
    if not literal.args:
        return False
    return all(
        isinstance(arg, Variable) and counts.get(arg, 0) == 1 for arg in literal.args
    )


def _delete_anonymous_projections(
    program: Program,
    bound: str,
    free: str,
    seed_args: Optional[Tuple[Term, ...]],
    trace: SimplificationTrace,
) -> Program:
    """Propositions 5.2 / 5.3 and the symmetric fp variant.

    Two phases prevent a body from losing both of its bp and fp
    witnesses: phase A deletes anonymous/seed ``bp`` literals while any
    ``fp`` literal is present; phase B then deletes anonymous ``fp``
    literals only while a ``bp`` literal *remains* in the reduced body.
    """
    new_rules: List[Rule] = []
    for rule in program.rules:
        counts = _occurrence_counts(rule)
        has_free = any(lit.predicate == free for lit in rule.body)
        # Phase A: bp deletions (Propositions 5.2 and 5.3).
        body: List[Literal] = []
        for literal in rule.body:
            if literal.predicate == bound and has_free:
                if _is_anonymous_literal(literal, counts):
                    trace.record("prop-5.2", f"deleted {literal} from: {rule}")
                    continue
                if seed_args is not None and literal.args == seed_args:
                    trace.record("prop-5.3", f"deleted {literal} from: {rule}")
                    continue
            body.append(literal)
        # Phase B: symmetric fp deletions, against the reduced body.
        has_bound = any(lit.predicate == bound for lit in body)
        final_body: List[Literal] = []
        for literal in body:
            if (
                literal.predicate == free
                and has_bound
                and _is_anonymous_literal(literal, counts)
            ):
                trace.record("prop-5.2-sym", f"deleted {literal} from: {rule}")
                continue
            final_body.append(literal)
        new_rules.append(Rule(rule.head, final_body))
    return Program(new_rules)


def _delete_unreachable(
    program: Program, root: str, trace: SimplificationTrace
) -> Program:
    """Proposition 5.4 (b): drop rules not reachable from the query."""
    dependencies: Dict[str, Set[str]] = {}
    for rule in program.rules:
        dependencies.setdefault(rule.head.predicate, set()).update(
            lit.predicate for lit in rule.body
        )
    reachable: Set[str] = set()
    frontier = [root]
    while frontier:
        predicate = frontier.pop()
        if predicate in reachable:
            continue
        reachable.add(predicate)
        frontier.extend(dependencies.get(predicate, ()))
    kept: List[Rule] = []
    for rule in program.rules:
        if rule.head.predicate in reachable:
            kept.append(rule)
        else:
            trace.record("prop-5.4b", f"deleted unreachable rule: {rule}")
    return Program(kept)


def _delete_uniformly_redundant(
    program: Program, trace: SimplificationTrace
) -> Program:
    """Delete chase-redundant rules (deletion under uniform equivalence).

    Delegates to :mod:`repro.analysis.uniform`, which implements the
    Sagiv [13] chase; programs with function symbols are skipped (the
    chase may diverge on them).
    """
    from repro.analysis.uniform import UniformUndecidedError, redundant_rules

    try:
        removed = redundant_rules(program, max_iterations=100, max_facts=100_000)
    except UniformUndecidedError as err:
        trace.record(
            "uniform",
            f"skipped: program uses function symbols ({err})",
        )
        return program
    for rule in removed:
        trace.record("uniform", f"deleted redundant rule: {rule}")
    if not removed:
        return program
    dropped_ids = {id(rule) for rule in removed}
    return Program([r for r in program.rules if id(r) not in dropped_ids])


def simplify_factored(
    factored: FactoredProgram,
    use_uniform_equivalence: bool = True,
    max_rounds: int = 20,
) -> Tuple[FactoredProgram, SimplificationTrace]:
    """Apply the Section 5 optimizations to a factored Magic program.

    Returns the simplified program (a new :class:`FactoredProgram`
    sharing the original's metadata) and the deletion trace.
    """
    trace = SimplificationTrace()
    program = factored.program
    bound = factored.first_name
    free = factored.second_name
    magic = factored.magic_predicate
    root = factored.query_head.predicate if factored.query_head else None

    for _ in range(max_rounds):
        before = program
        program = _delete_tautologies(program, trace)
        if magic:
            program = _delete_magic_duplicates(program, bound, magic, trace)
        program = _delete_anonymous_projections(
            program, bound, free, factored.seed_args, trace
        )
        if root:
            program = _delete_unreachable(program, root, trace)
        if program == before:
            break

    if use_uniform_equivalence:
        program = _delete_uniformly_redundant(program, trace)
        if root:
            program = _delete_unreachable(program, root, trace)

    simplified = FactoredProgram(
        program=program,
        predicate=factored.predicate,
        first_name=factored.first_name,
        second_name=factored.second_name,
        first_positions=factored.first_positions,
        second_positions=factored.second_positions,
        magic_predicate=factored.magic_predicate,
        seed_args=factored.seed_args,
        query_head=factored.query_head,
    )
    return simplified, trace
