"""Factoring inner predicates of non-unit programs (Section 7.3).

Section 7.3 asks: when can ``p^a`` be factored even though it is *not*
the top-level query predicate?  Example 7.2 shows the answer depends on
both the calling context and ``p``'s definition:

* with ``P = q(Y) :- a(X, Z), p(Z, Y)`` and the right-linear ``P1``,
  factoring ``p^bf`` in the Magic program of ``P ∪ P1`` is valid —
  every seed's answers are interchangeable for the query;
* with ``P = q(X, Y) :- a(X, Z), p(Z, Y)`` it is not: the query
  correlates each subgoal with its own answers, which the split
  ``bp``/``fp`` loses;
* with the combined-rule ``P2`` it is invalid for either query form.

The paper leaves sufficient conditions open.  This module provides the
machinery to *explore* the question: :func:`factor_inner` builds the
candidate factored program, :func:`inner_factoring_valid_on` tests it
against Magic on a given EDB, and :func:`decouples_subgoals` implements
the one sufficient condition Example 7.2 suggests — that no rule of the
outer program uses both the bound and the free side of a ``p`` literal
with variables that reach the query head (the subgoal/answer
correlation test).  The condition is documented as a heuristic, not a
theorem: the benchmark (E16) probes it empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analysis.adornment import Adornment, adorn, split_adorned_name
from repro.core.factoring import FactoredProgram, bound_name, factor_predicate, free_name
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine.database import Database
from repro.engine.seminaive import seminaive_eval
from repro.transforms.magic import MagicResult, magic_name, magic_sets


@dataclass
class InnerFactoring:
    """A candidate factoring of an inner adorned predicate."""

    magic: MagicResult
    factored: Program
    predicate: str          # the adorned inner predicate, e.g. p@bf
    adornment: Adornment

    def answers_magic(self, edb: Database):
        db, stats = seminaive_eval(self.magic.program, edb)
        return db.query(self.magic.query_head), stats

    def answers_factored(self, edb: Database):
        db, stats = seminaive_eval(self.factored, edb)
        return db.query(self.magic.query_head), stats


def factor_inner(
    program: Program, goal: Literal, inner_predicate: str
) -> InnerFactoring:
    """Factor ``inner_predicate`` (base name) in the Magic program.

    The program need not be unit; the inner predicate must reach a
    single adornment from ``goal`` (multiple adornments would need one
    factoring per adorned version).
    """
    adorned = adorn(program, goal)
    magic = magic_sets(adorned)
    candidates = {
        name
        for name in {r.head.predicate for r in adorned.program.rules}
        if split_adorned_name(name)[0] == inner_predicate
    }
    if len(candidates) != 1:
        raise ValueError(
            f"{inner_predicate} reaches adornments {sorted(candidates)}; "
            "exactly one is required"
        )
    adorned_name = next(iter(candidates))
    _, adornment = split_adorned_name(adorned_name)
    bound = adornment.bound_positions()
    free = adornment.free_positions()
    if not bound or not free:
        raise ValueError(f"{adorned_name} admits only trivial factorings")
    factored = factor_predicate(
        magic.program,
        adorned_name,
        len(adornment),
        bound,
        free,
        first_name=bound_name(adorned_name),
        second_name=free_name(adorned_name),
    )
    return InnerFactoring(
        magic=magic,
        factored=factored.program,
        predicate=adorned_name,
        adornment=adornment,
    )


def inner_factoring_valid_on(
    program: Program, goal: Literal, inner_predicate: str, edb: Database
) -> bool:
    """Empirical validity: factored answers equal Magic answers on ``edb``."""
    candidate = factor_inner(program, goal, inner_predicate)
    magic_answers, _ = candidate.answers_magic(edb)
    factored_answers, _ = candidate.answers_factored(edb)
    return magic_answers == factored_answers


def decouples_subgoals(
    program: Program, goal: Literal, inner_predicate: str
) -> bool:
    """The Example 7.2 correlation heuristic.

    Factoring an inner ``p`` loses which answer belongs to which
    subgoal.  That is harmless when no rule outside ``p``'s own
    definition *correlates* the two sides: for every rule of the outer
    program with a ``p`` body literal, the variables of ``p``'s bound
    arguments must not occur in the rule head or in any other body
    literal that shares variables with the head.  (The unary
    ``q(Y) :- a(X, Z), p(Z, Y)`` passes — ``Z`` reaches only ``a``,
    which is disconnected from the head; the binary ``q(X, Y)`` version
    fails because ``a`` links ``Z`` to the head variable ``X``.)

    This is a *heuristic*, not one of the paper's theorems; Section 7.3
    leaves the sufficient condition open, and E16 probes this one
    empirically.
    """
    adorned = adorn(program, goal)
    candidates = {
        name
        for name in {r.head.predicate for r in adorned.program.rules}
        if split_adorned_name(name)[0] == inner_predicate
    }
    if len(candidates) != 1:
        return False
    adorned_name = next(iter(candidates))
    _, adornment = split_adorned_name(adorned_name)
    bound_positions = adornment.bound_positions()

    for rule in adorned.program.rules:
        if rule.head.predicate == adorned_name:
            continue  # p's own rules are judged by the unit-program theorems
        p_literals = [l for l in rule.body if l.predicate == adorned_name]
        if not p_literals:
            continue
        head_vars = set(rule.head.iter_variables())
        for p_literal in p_literals:
            bound_vars: Set[Variable] = set()
            for i in bound_positions:
                bound_vars |= set(p_literal.args[i].variables())
            # Which variables can the head "see", transitively through
            # other body literals?
            reachable = set(head_vars)
            changed = True
            while changed:
                changed = False
                for literal in rule.body:
                    if literal is p_literal:
                        continue
                    lit_vars = set(literal.iter_variables())
                    if lit_vars & reachable and not lit_vars <= reachable:
                        reachable |= lit_vars
                        changed = True
            if bound_vars & reachable:
                return False
    return True
