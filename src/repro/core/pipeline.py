"""End-to-end optimization: Magic Sets followed by factoring.

``optimize(program, goal)`` runs the paper's two-step approach
(Section 4.2): adorn, apply Magic Sets, test the factorability classes,
factor when certified, and simplify with the Section 5 rewrites.  When
classification fails it retries after static-argument reduction
(Lemma 5.1, the Example 5.1/5.2 device).  Every intermediate stage is
kept on the result for inspection, testing, and benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.analysis.adornment import AdornedProgram, adorn, split_adorned_name
from repro.analysis.classify import ProgramClassification, classify_program
from repro.analysis.dependency import DependencyGraph
from repro.core.factoring import FactoredProgram, factor_magic
from repro.core.reduction import (
    ReductionResult,
    reduce_static_arguments,
    static_argument_positions,
)
from repro.core.simplify import SimplificationTrace, simplify_factored
from repro.core.theorems import FactorabilityReport, check_factorability
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.engine.database import Database
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats
from repro.transforms.magic import MagicResult, magic_sets


@dataclass
class OptimizationResult:
    """All stages of one optimization run."""

    original: Program
    goal: Literal
    adorned: AdornedProgram
    magic: MagicResult
    classification: Optional[ProgramClassification] = None
    report: Optional[FactorabilityReport] = None
    reduction: Optional[ReductionResult] = None
    factored: Optional[FactoredProgram] = None
    simplified: Optional[FactoredProgram] = None
    trace: Optional[SimplificationTrace] = None
    forced: bool = False

    @property
    def factorable(self) -> bool:
        return self.factored is not None and not self.forced

    def best_program(self) -> Program:
        """The most optimized executable program produced."""
        if self.simplified is not None:
            return self.simplified.program
        if self.factored is not None:
            return self.factored.program
        return self.magic.program

    def answers(
        self, edb: Database, evaluator=seminaive_eval, **kwargs
    ) -> Tuple[Set[Tuple], EvalStats]:
        """Evaluate the best program and read off the query answers."""
        db, stats = evaluator(self.best_program(), edb, **kwargs)
        return db.query(self.magic.query_head), stats

    STAGES = ("original", "magic", "factored", "simplified")

    def available_stages(self) -> Tuple[str, ...]:
        """The stage names :meth:`evaluate_stage` can run for this result."""
        return tuple(
            stage
            for stage in self.STAGES
            if stage in ("original", "magic") or getattr(self, stage) is not None
        )

    def evaluate_stage(
        self, stage: str, edb: Database, evaluator=seminaive_eval, **kwargs
    ) -> Tuple[Set[Tuple], EvalStats]:
        """Evaluate a named stage: original | magic | factored | simplified.

        Unknown or unavailable stage names fail *before* any evaluation
        with the list of valid choices.
        """
        if stage not in self.STAGES:
            raise ValueError(
                f"unknown stage {stage!r}; valid stages are "
                f"{', '.join(self.STAGES)}"
            )
        available = self.available_stages()
        if stage not in available:
            raise ValueError(
                f"stage {stage!r} was not produced for this query "
                f"(factoring not certified); available stages are "
                f"{', '.join(available)}"
            )
        if stage == "original":
            db, stats = evaluator(self.original, edb, **kwargs)
            return db.query(self.goal), stats
        programs = {
            "magic": self.magic.program,
            "factored": self.factored.program if self.factored else None,
            "simplified": self.simplified.program if self.simplified else None,
        }
        program = programs[stage]
        db, stats = evaluator(program, edb, **kwargs)
        return db.query(self.magic.query_head), stats


def _recursive_adorned_predicate(
    adorned: AdornedProgram,
) -> Optional[str]:
    """The single recursive adorned predicate, if the program is unit."""
    graph = DependencyGraph(adorned.program)
    recursive = {
        sig
        for sig in graph.recursive_signatures()
        if adorned.program.is_idb(sig)
    }
    if len(recursive) != 1:
        return None
    return next(iter(recursive))[0]


def optimize(
    program: Program,
    goal: Literal,
    edb: Optional[Database] = None,
    simplify: bool = True,
    try_reduction: bool = True,
    force_factor: bool = False,
    use_uniform_equivalence: bool = True,
) -> OptimizationResult:
    """Optimize ``program`` for the query ``goal``.

    ``edb`` switches the factorability conditions to the instance-level
    (run-time) mode discussed after Example 4.3.  ``force_factor``
    factors even when no theorem certifies it — used to demonstrate the
    unsound results on Example 4.3's counterexample EDBs.
    """
    adorned = adorn(program, goal)
    magic = magic_sets(adorned)

    classification: Optional[ProgramClassification] = None
    report: Optional[FactorabilityReport] = None
    reduction: Optional[ReductionResult] = None

    recursive_predicate = _recursive_adorned_predicate(adorned)
    working = adorned
    if recursive_predicate is not None:
        base, adornment = split_adorned_name(recursive_predicate)
        classification = classify_program(
            adorned.program, recursive_predicate, adornment
        )
        if not classification.ok and try_reduction:
            positions = static_argument_positions(
                adorned.program, recursive_predicate, adornment
            )
            if positions and recursive_predicate == adorned.goal.predicate:
                reduction = reduce_static_arguments(
                    Program(adorned.program.rules_for(recursive_predicate)),
                    adorned.goal,
                    positions,
                )
                working = AdornedProgram(
                    program=reduction.program,
                    goal=reduction.goal,
                    original_goal=goal,
                    adornments={},
                )
                magic = magic_sets(working)
                classification = classify_program(
                    reduction.program,
                    reduction.reduced_predicate,
                    reduction.adornment,
                )
        if classification.ok:
            report = check_factorability(classification, edb)

    result = OptimizationResult(
        original=program,
        goal=goal,
        adorned=working,
        magic=magic,
        classification=classification,
        report=report,
        reduction=reduction,
    )

    goal_pred = magic.goal.predicate
    _, goal_adn = split_adorned_name(goal_pred)
    nontrivial = bool(goal_adn.bound_positions()) and bool(goal_adn.free_positions())
    should_factor = force_factor or (report is not None and report.factorable)
    if should_factor and nontrivial and goal_pred == (
        recursive_predicate if reduction is None else reduction.reduced_predicate
    ):
        factored = factor_magic(magic)
        result.factored = factored
        result.forced = force_factor and not (report and report.factorable)
        if simplify:
            simplified, trace = simplify_factored(
                factored, use_uniform_equivalence=use_uniform_equivalence
            )
            result.simplified = simplified
            result.trace = trace
    return result
