"""The factoring transformation (Section 3, Proposition 3.1).

Factoring ``p(X1..Xn)`` into ``p1(Xi..)`` / ``p2(Xj..)`` over disjoint
argument subsets rewrites the program so that ``p`` disappears:

* every body literal ``p(t̄)`` is replaced by the pair
  ``p1(t̄|₁), p2(t̄|₂)`` of projected literals;
* every rule with head ``p(t̄)`` is replaced by two rules with the same
  body and the projected heads.

When the factoring *property* holds (Section 3's semantic condition),
the rewritten program computes the same answers for all EDBs; checking
the property is undecidable in general (Theorem 3.1), which is why the
recognizers in :mod:`repro.core.theorems` certify sufficient classes.

The instantiation the paper applies throughout is factoring the
recursive predicate of a **Magic program** into its bound part ``bp``
and free part ``fp`` (Theorems 4.1-4.3); :func:`factor_magic` does
exactly that, including the paper's ``query`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.adornment import Adornment, split_adorned_name
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term
from repro.transforms.magic import MagicResult, magic_name


def bound_name(adorned_predicate: str) -> str:
    """The bound-part predicate (the paper's ``bp`` / ``bt``)."""
    return f"b_{adorned_predicate}"


def free_name(adorned_predicate: str) -> str:
    """The free-part predicate (the paper's ``fp`` / ``ft``)."""
    return f"f_{adorned_predicate}"


@dataclass
class FactoredProgram:
    """A factored program plus the metadata the simplifier relies on."""

    program: Program
    #: the predicate that was factored away
    predicate: str
    #: the two projection predicates and their argument positions
    first_name: str
    second_name: str
    first_positions: Tuple[int, ...]
    second_positions: Tuple[int, ...]
    #: for magic factoring: the magic predicate and seed constants
    magic_predicate: Optional[str] = None
    seed_args: Optional[Tuple[Term, ...]] = None
    query_head: Optional[Literal] = None

    def answers(self, db) -> Set[Tuple[Term, ...]]:
        if self.query_head is None:
            raise ValueError("this factored program has no query rule")
        return db.query(self.query_head)


def factor_predicate(
    program: Program,
    predicate: str,
    arity: int,
    first_positions: Sequence[int],
    second_positions: Sequence[int],
    first_name: Optional[str] = None,
    second_name: Optional[str] = None,
) -> FactoredProgram:
    """Apply the factoring transformation of Proposition 3.1.

    ``first_positions`` and ``second_positions`` must be disjoint and
    cover ``range(arity)``; nontrivial factoring (Section 3) requires
    both to be nonempty.
    """
    first_positions = tuple(first_positions)
    second_positions = tuple(second_positions)
    if set(first_positions) & set(second_positions):
        raise ValueError("factoring projections must be disjoint")
    if set(first_positions) | set(second_positions) != set(range(arity)):
        raise ValueError("factoring projections must cover every position")
    if not first_positions or not second_positions:
        raise ValueError("nontrivial factoring requires two nonempty projections")
    first_name = first_name or f"{predicate}:1"
    second_name = second_name or f"{predicate}:2"

    def project(literal: Literal) -> Tuple[Literal, Literal]:
        first = Literal(first_name, tuple(literal.args[i] for i in first_positions))
        second = Literal(
            second_name, tuple(literal.args[i] for i in second_positions)
        )
        return first, second

    new_rules: List[Rule] = []
    for rule in program.rules:
        body: List[Literal] = []
        for literal in rule.body:
            if literal.predicate == predicate and literal.arity == arity:
                first, second = project(literal)
                body.extend((first, second))
            else:
                body.append(literal)
        if rule.head.predicate == predicate and rule.head.arity == arity:
            first, second = project(rule.head)
            new_rules.append(Rule(first, body))
            new_rules.append(Rule(second, body))
        else:
            new_rules.append(Rule(rule.head, body))

    return FactoredProgram(
        program=Program(new_rules),
        predicate=predicate,
        first_name=first_name,
        second_name=second_name,
        first_positions=first_positions,
        second_positions=second_positions,
    )


def factor_magic(magic: MagicResult) -> FactoredProgram:
    """Factor the recursive predicate of a Magic program into bp / fp.

    The goal's adorned predicate ``p^a(X̄, Ȳ)`` is factored into
    ``bp(X̄)`` (bound positions) and ``fp(Ȳ)`` (free positions), as in
    Theorems 4.1-4.3.  The Magic program's ``query`` rule is rewritten
    along with everything else, yielding the paper's
    ``query(Ȳ) :- bp(x̄0), fp(Ȳ)`` form.
    """
    goal = magic.goal
    base, adornment = split_adorned_name(goal.predicate)
    if adornment is None:
        raise ValueError(f"goal {goal} is not adorned")
    bound = adornment.bound_positions()
    free = adornment.free_positions()
    factored = factor_predicate(
        magic.program,
        goal.predicate,
        goal.arity,
        bound,
        free,
        first_name=bound_name(goal.predicate),
        second_name=free_name(goal.predicate),
    )
    return FactoredProgram(
        program=factored.program,
        predicate=factored.predicate,
        first_name=factored.first_name,
        second_name=factored.second_name,
        first_positions=factored.first_positions,
        second_positions=factored.second_positions,
        magic_predicate=magic_name(goal.predicate),
        seed_args=magic.seed.args,
        query_head=magic.query_head,
    )
