"""The paper's primary contribution: factoring and its surroundings.

* :mod:`repro.core.factoring` — the factoring transformation
  (Proposition 3.1) and bound/free factoring of Magic programs;
* :mod:`repro.core.theorems` — the factorability recognizers
  (Theorems 4.1, 4.2, 4.3, 6.2, 6.3);
* :mod:`repro.core.simplify` — the Section 5 optimizations;
* :mod:`repro.core.reduction` — static-argument reduction
  (Definitions 5.1-5.2, Lemmas 5.1-5.2);
* :mod:`repro.core.undecidability` — the Theorem 3.1 gadget;
* :mod:`repro.core.pipeline` — ``optimize()``: Magic Sets followed by
  factoring and simplification, with full provenance.
"""

from repro.core.factoring import (
    FactoredProgram,
    factor_predicate,
    factor_magic,
    bound_name,
    free_name,
)
from repro.core.theorems import (
    FactorabilityReport,
    check_factorability,
    is_selection_pushing,
    is_symmetric,
    is_answer_propagating,
)
from repro.core.simplify import simplify_factored, SimplificationTrace
from repro.core.reduction import (
    static_argument_positions,
    reduce_static_arguments,
    ReductionResult,
)
from repro.core.undecidability import containment_gadget, GadgetPrograms
from repro.core.nonunit import (
    factor_inner,
    inner_factoring_valid_on,
    decouples_subgoals,
    InnerFactoring,
)
from repro.core.section63 import rewrite_linear, NotLinearError
from repro.core.pipeline import optimize, OptimizationResult

__all__ = [
    "FactoredProgram",
    "factor_predicate",
    "factor_magic",
    "bound_name",
    "free_name",
    "FactorabilityReport",
    "check_factorability",
    "is_selection_pushing",
    "is_symmetric",
    "is_answer_propagating",
    "simplify_factored",
    "SimplificationTrace",
    "static_argument_positions",
    "reduce_static_arguments",
    "ReductionResult",
    "containment_gadget",
    "GadgetPrograms",
    "factor_inner",
    "inner_factoring_valid_on",
    "decouples_subgoals",
    "InnerFactoring",
    "rewrite_linear",
    "NotLinearError",
    "optimize",
    "OptimizationResult",
]
