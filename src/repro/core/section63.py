"""The left/right-linear rewriting algorithms of [9] (Section 6.3).

Section 6.3 states that for the program classes of Naughton,
Ramakrishnan, Sagiv & Ullman, "Efficient evaluation of right-, left-,
and multi-linear rules" (SIGMOD 1989), Magic Sets followed by factoring
"produces the same final program as the rewriting algorithms from that
paper."  This module implements those special-purpose rewritings
*directly* — without going through Magic — so the claim is checkable as
a program isomorphism:

* **right-linear** rules ``p(X̄, Ȳ) :- first(X̄, V̄), p(V̄, Ȳ)`` with a
  bound-X̄ query become the goal-propagation program::

      goal(x̄0).
      goal(V̄) :- goal(X̄), first(X̄, V̄).
      answer(Ȳ) :- goal(X̄), exit(X̄, Ȳ).

* **left-linear** rules ``p(X̄, Ȳ) :- p(X̄, Ū), last(Ū, Ȳ)`` become the
  answer-accumulation program::

      goal(x̄0).
      answer(Ȳ) :- goal(X̄), exit(X̄, Ȳ).
      answer(Ȳ) :- answer(Ū), last(Ū, Ȳ).

* mixed programs (both kinds of rules, as in the two-rule TC fragment
  of the three-rule closure) compose both rule groups.

The generated predicate names reuse the pipeline's (``m_p@a`` for the
goal, ``f_p@a`` for the answer) so the isomorphism check needs no
renaming.  Combined rules are outside [9]'s classes and are rejected.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.adornment import AdornedProgram, Adornment, adorn, split_adorned_name
from repro.analysis.classify import (
    ProgramClassification,
    RuleClass,
    classify_program,
)
from repro.core.factoring import free_name
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term
from repro.transforms.magic import QUERY_PREDICATE, magic_name


class NotLinearError(ValueError):
    """The program is outside the left/right-linear classes of [9]."""


def rewrite_linear(program: Program, goal: Literal) -> Tuple[Program, Literal]:
    """Apply the [9] rewriting; returns the program and its query head.

    ``program`` is the original (unadorned) unit program; ``goal`` the
    query.  Raises :class:`NotLinearError` when any recursive rule is
    combined or unclassifiable.
    """
    adorned = adorn(program, goal)
    adorned_predicate = adorned.goal.predicate
    base, adornment = split_adorned_name(adorned_predicate)
    classification = classify_program(
        adorned.program, adorned_predicate, adornment
    )
    if not classification.ok:
        raise NotLinearError(classification.reason)

    bound_positions = adornment.bound_positions()
    free_positions = adornment.free_positions()
    goal_pred = magic_name(adorned_predicate)
    answer_pred = free_name(adorned_predicate)

    rules: List[Rule] = []
    seed_args = tuple(adorned.goal.args[i] for i in bound_positions)
    rules.append(Rule(Literal(goal_pred, seed_args), ()))

    for rc in classification.rules:
        rule = rc.rule
        head_bound = tuple(rule.head.args[i] for i in bound_positions)
        head_free = tuple(rule.head.args[i] for i in free_positions)
        if rc.rule_class is RuleClass.EXIT:
            rules.append(
                Rule(
                    Literal(answer_pred, head_free),
                    (Literal(goal_pred, head_bound), *rule.body),
                )
            )
        elif rc.rule_class is RuleClass.RIGHT_LINEAR:
            occurrence = rc.right_occurrence
            occ_bound = tuple(occurrence.args[i] for i in bound_positions)
            first_atoms = tuple(
                lit for lit in rule.body if lit.predicate != adorned_predicate
                and lit in rc.bound_first.body
            )
            rules.append(
                Rule(
                    Literal(goal_pred, occ_bound),
                    (Literal(goal_pred, head_bound), *first_atoms),
                )
            )
            # [9] requires empty "right" conjunctions for the pure
            # goal-propagation form; reject otherwise.
            if rc.free is not None and rc.free.body:
                raise NotLinearError(
                    "right-linear rule carries a right conjunction; "
                    "outside the pure [9] form"
                )
        elif rc.rule_class is RuleClass.LEFT_LINEAR:
            if rc.bound is not None and rc.bound.body:
                raise NotLinearError(
                    "left-linear rule carries a left conjunction; "
                    "outside the pure [9] form"
                )
            u_vectors = [
                tuple(occ.args[i] for i in free_positions)
                for occ in rc.left_occurrences
            ]
            last_atoms = tuple(rc.free_last.body)
            body: List[Literal] = [
                Literal(answer_pred, u) for u in u_vectors
            ]
            body.extend(last_atoms)
            rules.append(Rule(Literal(answer_pred, head_free), tuple(body)))
        else:
            raise NotLinearError(
                f"rule is {rc.rule_class.value}; [9] handles only "
                "left-/right-linear rules"
            )

    free_vars = [adorned.goal.args[i] for i in free_positions]
    query_head = Literal(QUERY_PREDICATE, tuple(free_vars))
    rules.append(Rule(query_head, (Literal(answer_pred, tuple(free_vars)),)))
    return Program(rules), query_head
