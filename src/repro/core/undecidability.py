"""The Theorem 3.1 reduction: factorability is undecidable.

The proof reduces Datalog query containment (undecidable, Shmueli) to
nontrivial factorability of the program

    t(X, Y, Z) :- a1(X), q1(Y, Z).
    t(X, Y, Z) :- a2(X), q2(Y, Z).

with the query ``t(X, Y, Z)?``: factoring ``t`` into ``t1(X)`` and
``t2(Y, Z)`` preserves the answers for every EDB iff ``q1`` and ``q2``
compute the same relation whenever ``a1`` and ``a2`` differ — i.e. iff
``q1 ≡ q2``.  This module builds the gadget for arbitrary ``q1``/``q2``
programs, plus the two concrete EDBs the proof text uses to refute the
*other* candidate factorings, so the construction can be demonstrated
end to end (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.factoring import factor_predicate
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine.database import Database
from repro.engine.seminaive import seminaive_eval


@dataclass
class GadgetPrograms:
    """The reduction gadget: original and candidate-factored programs."""

    original: Program
    #: t factored into t1(X) and t2(Y, Z) — valid iff q1 ≡ q2
    factored_1_23: Program
    #: t factored into t1'(X, Y) and t2'(Z) — never valid (proof, part 1)
    factored_12_3: Program
    goal: Literal


def containment_gadget(
    q1_rules: Optional[Program] = None, q2_rules: Optional[Program] = None
) -> GadgetPrograms:
    """Build the Theorem 3.1 program for the given ``q1``/``q2`` IDBs.

    ``q1_rules`` / ``q2_rules`` define binary predicates ``q1`` and
    ``q2`` (arbitrary Datalog).  When omitted, ``q1`` and ``q2`` are
    taken to be EDB relations — the configuration of the concrete
    counterexample in the proof.
    """
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    t_rules = [
        Rule(
            Literal("t", (x, y, z)),
            (Literal("a1", (x,)), Literal("q1", (y, z))),
        ),
        Rule(
            Literal("t", (x, y, z)),
            (Literal("a2", (x,)), Literal("q2", (y, z))),
        ),
    ]
    extra: List[Rule] = []
    if q1_rules is not None:
        extra.extend(q1_rules.rules)
    if q2_rules is not None:
        extra.extend(q2_rules.rules)
    original = Program((*t_rules, *extra))
    goal = Literal("t", (x, y, z))

    def section3_prime(
        first: Tuple[int, ...], second: Tuple[int, ...], n1: str, n2: str
    ) -> Program:
        """P' per Section 3: P plus the projection and recombination rules."""
        projections = [
            Rule(Literal(n1, tuple(goal.args[i] for i in first)), (goal,)),
            Rule(Literal(n2, tuple(goal.args[i] for i in second)), (goal,)),
            Rule(
                goal,
                (
                    Literal(n1, tuple(goal.args[i] for i in first)),
                    Literal(n2, tuple(goal.args[i] for i in second)),
                ),
            ),
        ]
        return original.add_rules(projections)

    factored_1_23 = section3_prime((0,), (1, 2), "t1", "t2")
    factored_12_3 = section3_prime((0, 1), (2,), "t1p", "t2p")
    return GadgetPrograms(
        original=original,
        factored_1_23=factored_1_23,
        factored_12_3=factored_12_3,
        goal=goal,
    )


def proof_counterexample_edb() -> Database:
    """The EDB from the proof refuting the ``t1'(X,Y), t2'(Z)`` factoring.

    ``a2`` empty, ``a1 = {1}``, ``q2`` empty, ``q1 = {(2,3), (4,5)}``:
    the original program computes only ``t(1,2,3)`` and ``t(1,4,5)``,
    the rewritten one also ``t(1,2,5)`` and ``t(1,4,3)``.
    """
    return Database.from_dict({"a1": [(1,)], "q1": [(2, 3), (4, 5)]})


def answers(program: Program, goal: Literal, edb: Database) -> Set[Tuple]:
    """Evaluate and read off the goal's bindings."""
    db, _ = seminaive_eval(program, edb)
    return db.query(goal)


def factoring_is_valid_on(
    gadget: GadgetPrograms, which: str, edb: Database
) -> bool:
    """Whether a candidate factoring preserves the answers on ``edb``.

    ``which`` is ``"1|23"`` (the containment-encoding split) or
    ``"12|3"`` (the always-refutable split).
    """
    factored = {
        "1|23": gadget.factored_1_23,
        "12|3": gadget.factored_12_3,
    }[which]
    return answers(gadget.original, gadget.goal, edb) == answers(
        factored, gadget.goal, edb
    )
