"""Factorability recognizers: Theorems 4.1, 4.2, 4.3, 6.2, 6.3.

Each theorem certifies that for a class of adorned unit programs the
Magic program factors into ``bp(X̄)`` / ``fp(Ȳ)``:

* **selection-pushing** (Definition 4.6, Theorem 4.1),
* **symmetric** (Definition 4.7, Theorem 4.2),
* **answer-propagating** (Definition 4.8, Theorem 4.3).

The class conditions are conjunctive-query containments; by default
they are decided *syntactically* (Chandra-Merlin homomorphisms over
uninterpreted EDB predicates — sound for every EDB).  The discussion
closing Example 4.3 observes that the conditions can instead be tested
against a *specific* EDB at run time; passing ``edb=...`` switches the
checks to that instance-level mode, which is how the Example 4.3/4.4/
4.5 programs (whose conditions relate distinct EDB predicates) are
certified in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.classify import (
    ProgramClassification,
    RuleClass,
    RuleClassification,
)
from repro.analysis.conjunctive import (
    ConjunctiveQuery,
    cq_contained_in,
    cq_equivalent,
    instance_contained_in,
)


def _containment_tests(edb):
    """The (contained_in, equivalent) pair for the chosen mode."""
    if edb is None:
        return cq_contained_in, cq_equivalent

    def contained(q1, q2):
        return instance_contained_in(q1, q2, edb)

    def equivalent(q1, q2):
        return contained(q1, q2) and contained(q2, q1)

    return contained, equivalent


@dataclass
class FactorabilityReport:
    """Outcome of the class checks on one classified program."""

    classification: ProgramClassification
    selection_pushing: bool = False
    symmetric: bool = False
    answer_propagating: bool = False
    reasons: List[str] = field(default_factory=list)

    @property
    def factorable(self) -> bool:
        return self.selection_pushing or self.symmetric or self.answer_propagating

    @property
    def certified_by(self) -> Optional[str]:
        if self.selection_pushing:
            return "Theorem 4.1 (selection-pushing)"
        if self.symmetric:
            return "Theorem 4.2 (symmetric)"
        if self.answer_propagating:
            return "Theorem 4.3 (answer-propagating)"
        return None


def _single_exit(classification: ProgramClassification) -> Optional[RuleClassification]:
    exits = classification.exit_rules
    if len(exits) != 1:
        return None
    return exits[0]


def is_selection_pushing(
    classification: ProgramClassification, edb=None, reasons: Optional[List[str]] = None
) -> bool:
    """Definition 4.6 on a classified RLC-stable program."""
    reasons = reasons if reasons is not None else []
    contained, equivalent = _containment_tests(edb)
    if not classification.is_rlc_stable():
        reasons.append("not RLC-stable")
        return False
    exit_rule = _single_exit(classification)
    assert exit_rule is not None
    free_exit = exit_rule.free_exit

    for rc in classification.recursive_rules:
        if rc.rule_class in (RuleClass.COMBINED, RuleClass.RIGHT_LINEAR):
            if not contained(free_exit, rc.free):
                reasons.append(
                    f"free_exit [{free_exit}] not contained in free [{rc.free}] of {rc.rule}"
                )
                return False

    with_left = [
        rc
        for rc in classification.recursive_rules
        if rc.rule_class in (RuleClass.LEFT_LINEAR, RuleClass.COMBINED)
    ]
    with_first = [
        rc
        for rc in classification.recursive_rules
        if rc.rule_class is RuleClass.RIGHT_LINEAR
    ]
    for i, a in enumerate(with_left):
        for b in with_left[i + 1 :]:
            if not equivalent(a.bound, b.bound):
                reasons.append(
                    f"left conjunctions differ: [{a.bound}] vs [{b.bound}]"
                )
                return False
    for rc_first in with_first:
        for rc_left in with_left:
            if not contained(rc_first.bound_first, rc_left.bound):
                reasons.append(
                    f"bound_first [{rc_first.bound_first}] not contained in "
                    f"bound [{rc_left.bound}]"
                )
                return False
    return True


def is_symmetric(
    classification: ProgramClassification, edb=None, reasons: Optional[List[str]] = None
) -> bool:
    """Definition 4.7: only combined recursive rules, shared middles."""
    reasons = reasons if reasons is not None else []
    contained, equivalent = _containment_tests(edb)
    if not classification.is_rlc_stable():
        reasons.append("not RLC-stable")
        return False
    recursive = classification.recursive_rules
    if not recursive or any(
        rc.rule_class is not RuleClass.COMBINED for rc in recursive
    ):
        reasons.append("not all recursive rules are combined rules")
        return False
    exit_rule = _single_exit(classification)
    assert exit_rule is not None
    for rc in recursive:
        if not contained(exit_rule.free_exit, rc.free):
            reasons.append(
                f"free_exit [{exit_rule.free_exit}] not contained in free [{rc.free}]"
            )
            return False
    for i, a in enumerate(recursive):
        for b in recursive[i + 1 :]:
            if a.middle.arity != b.middle.arity or not equivalent(a.middle, b.middle):
                reasons.append(
                    f"middle conjunctions not equivalent: [{a.middle}] vs [{b.middle}]"
                )
                return False
    return True


def is_answer_propagating(
    classification: ProgramClassification, edb=None, reasons: Optional[List[str]] = None
) -> bool:
    """Definition 4.8: the combination of both previous sets of conditions."""
    reasons = reasons if reasons is not None else []
    contained, equivalent = _containment_tests(edb)
    if not classification.is_rlc_stable():
        reasons.append("not RLC-stable")
        return False
    exit_rule = _single_exit(classification)
    assert exit_rule is not None
    free_exit = exit_rule.free_exit
    bound_exit = exit_rule.bound_exit

    lefts = [
        rc for rc in classification.recursive_rules
        if rc.rule_class is RuleClass.LEFT_LINEAR
    ]
    rights = [
        rc for rc in classification.recursive_rules
        if rc.rule_class is RuleClass.RIGHT_LINEAR
    ]
    combineds = [
        rc for rc in classification.recursive_rules
        if rc.rule_class is RuleClass.COMBINED
    ]

    for rc in lefts:
        if not contained(bound_exit, rc.bound):
            reasons.append(
                f"bound_exit [{bound_exit}] not contained in bound [{rc.bound}]"
            )
            return False
    for rc in rights:
        if not contained(free_exit, rc.free):
            reasons.append(
                f"free_exit [{free_exit}] not contained in free [{rc.free}]"
            )
            return False
    for rc in combineds:
        if not contained(free_exit, rc.free):
            reasons.append(
                f"free_exit [{free_exit}] not contained in free [{rc.free}]"
            )
            return False
    for i, a in enumerate(combineds):
        for b in combineds[i + 1 :]:
            if a.middle.arity != b.middle.arity or not equivalent(a.middle, b.middle):
                reasons.append("middle conjunctions of combined rules not equivalent")
                return False
    for left in lefts:
        for combined in combineds:
            if not contained(left.bound, combined.bound):
                reasons.append(
                    f"bound of left-linear [{left.bound}] not contained in "
                    f"bound of combined [{combined.bound}]"
                )
                return False
            if not contained(left.free_last, combined.free):
                reasons.append(
                    f"free_last [{left.free_last}] not contained in free "
                    f"[{combined.free}]"
                )
                return False
    for right in rights:
        for combined in combineds:
            if not contained(right.bound_first, combined.bound):
                reasons.append(
                    f"bound_first [{right.bound_first}] not contained in bound "
                    f"[{combined.bound}]"
                )
                return False
    for right in rights:
        for left in lefts:
            if not contained(right.bound_first, left.bound):
                reasons.append(
                    f"bound_first [{right.bound_first}] not contained in bound "
                    f"[{left.bound}]"
                )
                return False
            if not contained(left.free_last, right.free):
                reasons.append(
                    f"free_last [{left.free_last}] not contained in free "
                    f"[{right.free}]"
                )
                return False
    return True


def check_factorability(
    classification: ProgramClassification, edb=None
) -> FactorabilityReport:
    """Run all three recognizers and collect their diagnoses."""
    report = FactorabilityReport(classification=classification)
    report.selection_pushing = is_selection_pushing(
        classification, edb, report.reasons
    )
    report.symmetric = is_symmetric(classification, edb, report.reasons)
    report.answer_propagating = is_answer_propagating(
        classification, edb, report.reasons
    )
    return report
