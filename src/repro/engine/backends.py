"""Pluggable execution backends for the SCC scheduler's depth batches.

The scheduler (:mod:`repro.engine.scheduler`) decides *what* may run
concurrently — components of one topological depth batch are mutually
independent — but historically hard-wired *how*: a
``ThreadPoolExecutor``, which under CPython's GIL overlaps almost no
compute.  This module extracts the "how" into an
:class:`ExecutorBackend` with three implementations:

* ``serial`` — the reference schedule: batch components run in batch
  order on the calling thread, sharing the live database.
* ``thread`` — the default: components run on a thread pool against
  staged relation copies (:meth:`~repro.engine.database.Database.stage`)
  merged back at the batch barrier.  Cheap (no copies cross an address
  space) but GIL-bound; it wins only when compute releases the GIL
  (and on free-threaded builds).
* ``process`` — a ``ProcessPoolExecutor``: real wall-time parallelism
  on multi-core hardware.  Compiled :class:`~repro.engine.plan.RulePlan`
  objects hold closures and ``itemgetter``s and cannot be pickled, so
  nothing compiled ever crosses the boundary.  Instead the scheduler
  ships a declarative :class:`ComponentSpec` — the component's rules,
  evaluation knobs, and compact relation snapshots of exactly the
  signatures the component reads or writes — and the worker recompiles
  plans locally against a per-worker :class:`~repro.engine.plan.PlanCache`.
  Results return as :class:`ComponentResult` delta logs (the facts the
  component appended, in derivation order) plus a private
  :class:`~repro.engine.stats.EvalStats`, merged at the batch barrier
  in batch order.

Every backend derives the identical fixpoint with bit-identical
``facts``/``inferences``/``iterations`` counters for any job count —
the differential fuzz suite (``tests/test_fuzz.py``) enforces this.
Select a backend with the ``backend=`` parameter on the evaluators,
``--backend`` on the CLI, or the ``REPRO_BACKEND`` environment
variable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datalog.rules import Rule
from repro.engine import faults
from repro.engine.database import Database, FactTuple, Relation
from repro.engine.plan import PlanCache
from repro.engine.stats import EvalStats

Signature = Tuple[str, int]

#: Environment variable supplying the session-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Recognized backend names, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process")

#: The default when neither parameter nor environment chooses: threads,
#: the historical behaviour of ``jobs > 1``.
DEFAULT_BACKEND = "thread"

#: Environment variable supplying the process backend's retry budget.
RETRIES_ENV = "REPRO_RETRIES"

#: Batch retries after worker loss before degrading to serial.
DEFAULT_RETRIES = 2

#: First retry back-off in seconds; doubles per subsequent attempt.
RETRY_BACKOFF = 0.05

#: A component spec at or below this many snapshot facts counts as
#: "small" for process shipping: its per-future overhead (pickling,
#: dispatch, result transfer) rivals its evaluation time.
SMALL_COMPONENT_FACTS = 512

#: How many small specs ride in one grouped submission.
SCC_BATCH_GROUP = 8


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend choice, honouring ``REPRO_BACKEND``.

    ``None`` falls back to the environment (default ``"thread"``).
    Unknown names raise ``ValueError`` so typos fail loudly instead of
    silently running on the wrong executor — mirroring
    :func:`repro.engine.scheduler.resolve_jobs`.
    """
    source = "backend"
    if backend is None:
        raw = os.environ.get(BACKEND_ENV, "").strip()
        if not raw:
            return DEFAULT_BACKEND
        backend, source = raw, BACKEND_ENV
    name = str(backend).strip().lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"invalid {source}={backend!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    return name


def resolve_retries(retries: Optional[int] = None) -> int:
    """Normalize the worker-loss retry budget, honouring ``REPRO_RETRIES``.

    ``None`` falls back to the environment (default
    :data:`DEFAULT_RETRIES`).  Anything that is not a non-negative
    integer raises ``ValueError`` so typos fail loudly — the same
    contract as :func:`resolve_backend`.  Zero means "never retry:
    degrade to serial on the first worker loss".
    """
    source = "retries"
    if retries is None:
        raw = os.environ.get(RETRIES_ENV, "").strip()
        if not raw:
            return DEFAULT_RETRIES
        retries, source = raw, RETRIES_ENV
    try:
        value = int(retries)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid {source}={retries!r}; expected a non-negative integer"
        ) from None
    if value < 0:
        raise ValueError(
            f"invalid {source}={retries!r}; expected a non-negative integer"
        )
    return value


def make_backend(backend=None) -> "ExecutorBackend":
    """An :class:`ExecutorBackend` instance for ``backend``.

    Accepts a name (resolved through :func:`resolve_backend`, so
    ``None`` consults ``REPRO_BACKEND``) or an already-constructed
    backend instance, which is passed through — the hook tests use to
    inject a spawn-context :class:`ProcessBackend`.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    name = resolve_backend(backend)
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend()
    return ThreadBackend()


# ----------------------------------------------------------------------
# The shippable work unit
# ----------------------------------------------------------------------


@dataclass
class ComponentSpec:
    """One SCC's evaluation, as declarative (picklable) data.

    Compiled plans cannot cross a process boundary, so the spec carries
    what a worker needs to *recompile* them: the component's rules
    (structurally hashable, so a worker-side plan cache keyed on them
    still hits), the evaluation knobs, and compact
    :meth:`~repro.engine.database.Relation.snapshot` copies of exactly
    the signatures the component reads or writes — snapshots keep
    cardinality and distinct-key statistics, so a worker-side cost
    planner plans from the same estimates as an in-process one.
    """

    index: int
    sigs: frozenset
    rules: Tuple[Rule, ...]
    recursive: bool
    mode: str
    use_plans: bool
    planner: Optional[str]
    max_iterations: Optional[int]
    max_facts: Optional[int]
    max_seconds: Optional[float]
    fact_base: int
    record: bool
    relations: Dict[Signature, Relation]
    exec_mode: str = "tuple"
    partitions: int = 1

    @classmethod
    def from_task(cls, scheduler, task, db: Database, fact_base: int) -> "ComponentSpec":
        needed = set(task.sigs)
        for rule in task.rules:
            for literal in rule.body:
                needed.add(literal.signature)
        return cls(
            index=task.index,
            sigs=task.sigs,
            rules=tuple(task.rules),
            recursive=task.recursive,
            mode=scheduler.mode,
            use_plans=scheduler.use_plans,
            planner=scheduler.planner,
            max_iterations=scheduler.max_iterations,
            max_facts=scheduler.max_facts,
            max_seconds=scheduler.max_seconds,
            fact_base=fact_base,
            record=scheduler.recorder is not None,
            relations=db.snapshot(sorted(needed)).relations,
            exec_mode=scheduler.exec_mode,
            partitions=scheduler.partitions,
        )

    def fact_count(self) -> int:
        """Total facts across the spec's relation snapshots.

        The process backend's shipping-size heuristic: specs below
        :data:`SMALL_COMPONENT_FACTS` are grouped into one submission
        to amortize pickling and dispatch overhead.
        """
        return sum(len(rel) for rel in self.relations.values())


@dataclass
class ComponentResult:
    """What comes back across the boundary: deltas, stats, derivations.

    ``deltas`` maps each write-set signature to the facts the component
    appended, in derivation (log) order, so the parent merge reproduces
    the exact relation logs an in-process evaluation would have built.
    """

    deltas: Dict[Signature, Tuple[FactTuple, ...]]
    stats: EvalStats
    derivations: Optional[dict]


#: Worker-process plan caches, keyed by planner.  A worker evaluates
#: each component of a run at most once and components partition the
#: rules, so sharing a cache across components changes no counter —
#: but it is the hook that lets repeated shipments of the same rules
#: (structural equality survives pickling) reuse compilations.
_WORKER_CACHES: Dict[Optional[str], PlanCache] = {}


def _init_worker() -> None:
    """Pool initializer: cold plan cache, inherited heap frozen.

    Runs in the worker at startup (spawn-safe: it is a module-level
    function, importable without side effects).  Clearing the plan
    caches guarantees counter determinism even if a pool is ever
    reused across evaluations.  ``gc.freeze()`` matters under fork: a
    worker inherits the parent heap copy-on-write, and the first
    full cyclic-GC pass in the child would touch (and thus copy) every
    inherited page — freezing moves inherited objects to the permanent
    generation so child collections only ever scan what the worker
    itself allocates.
    """
    import gc

    _WORKER_CACHES.clear()
    gc.freeze()


def _worker_cache(planner: Optional[str]) -> PlanCache:
    cache = _WORKER_CACHES.get(planner)
    if cache is None:
        cache = _WORKER_CACHES[planner] = PlanCache(planner or "greedy")
    return cache


def evaluate_component(spec: ComponentSpec) -> ComponentResult:
    """Run one component spec to fixpoint (the process-worker entry).

    Module-level so it pickles by reference under any multiprocessing
    start method.  Builds a private database from the spec's relation
    snapshots, recompiles plans against the per-worker cache, and
    returns only the write-set delta logs — the parent already holds
    everything else.
    """
    from repro.engine.scheduler import ComponentRun, ComponentTask

    faults.fire("worker")
    db = Database()
    db.relations = dict(spec.relations)
    # len() (not the log) so a columns-only snapshot stays undecoded
    # until the component actually reads term tuples.
    baselines = {
        sig: len(db.relation(*sig)) for sig in sorted(spec.sigs)
    }
    recorder = None
    if spec.record:
        from repro.engine.provenance import DerivationRecorder

        recorder = DerivationRecorder({}, None)
    task = ComponentTask(
        spec.index, 0, spec.sigs, list(spec.rules), spec.recursive
    )
    stats = EvalStats()
    run = ComponentRun(
        task,
        mode=spec.mode,
        use_plans=spec.use_plans,
        planner=spec.planner,
        max_iterations=spec.max_iterations,
        max_facts=spec.max_facts,
        max_seconds=spec.max_seconds,
        recorder=recorder,
        fact_base=spec.fact_base,
        cache=_worker_cache(spec.planner) if spec.use_plans else None,
        exec_mode=spec.exec_mode,
        # Partitioning inside a pool worker stays serial: a daemonic
        # worker cannot spawn its own process group, and nested thread
        # pools per component would oversubscribe.  Counters (including
        # partition_rounds/partition_skew) are unchanged by mechanism.
        partitions=spec.partitions,
        partition_backend="serial",
    )
    run.execute(db, stats)
    deltas = {
        sig: tuple(db.relation(*sig)._log[base:])
        for sig, base in baselines.items()
    }
    return ComponentResult(
        deltas=deltas,
        stats=stats,
        derivations=recorder.derivations if recorder is not None else None,
    )


def evaluate_component_batch(specs: List[ComponentSpec]) -> List[ComponentResult]:
    """Run several small component specs in one worker round-trip.

    The process-worker entry for grouped shipments: semantically just
    :func:`evaluate_component` per spec, in order.  Grouping changes
    where the work runs, never what it computes — the parent re-indexes
    the returned results back to batch positions before merging, so
    facts and counters stay bit-identical to one-spec-per-future
    shipping.
    """
    return [evaluate_component(spec) for spec in specs]


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class ExecutorBackend:
    """How one depth batch's mutually independent components execute.

    ``run_batch`` receives the owning scheduler (for knobs, the shared
    recorder, and :meth:`~repro.engine.scheduler.SCCScheduler.component_run`),
    the batch, the live database, and the run-wide stats.  It must
    leave ``db``/``stats`` exactly as the sequential schedule would —
    wall time and scheduling are the only degrees of freedom.
    ``close`` releases pooled resources; the scheduler calls it when a
    run finishes (a backend must tolerate reuse after close).
    """

    name = "?"

    def run_batch(self, scheduler, batch, db: Database, stats: EvalStats) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutorBackend):
    """Batch components in batch order on the calling thread.

    The deterministic reference schedule — what ``jobs=1`` does on any
    backend — made selectable so a run can force sequential execution
    regardless of the session-wide ``REPRO_JOBS``.
    """

    name = "serial"

    def run_batch(self, scheduler, batch, db: Database, stats: EvalStats) -> None:
        for task in batch:
            scheduler.component_run(task, scheduler.recorder).execute(db, stats)


class ThreadBackend(ExecutorBackend):
    """Batch components on a ``ThreadPoolExecutor`` over staged relations.

    Each component works against a staged database (private copies of
    its own relations, shared references to everything else) and a
    private stats object; stages, stats, and forked provenance
    recorders merge back in batch order at the barrier, so the result —
    including every counter except wall time — is identical to the
    sequential schedule.  GIL-bound: overlaps little pure-Python
    compute, but costs no cross-process copies.

    Like the process backend, same-depth *small* components (measured
    by the live fact count over the component's signatures) are grouped
    into shared submissions — a future per tiny SCC buys no overlap but
    pays scheduling overhead per task.  Each task keeps its own stage,
    stats, and forked recorder, and the barrier still merges in batch
    order, so grouping changes dispatch only.  Multi-task submissions
    count in ``stats.scc_batches_shipped``.
    """

    name = "thread"

    def run_batch(self, scheduler, batch, db: Database, stats: EvalStats) -> None:
        fact_base = stats.facts
        stages = [db.stage(task.sigs) for task in batch]
        locals_ = [EvalStats() for _ in batch]
        recorder = scheduler.recorder
        recorders = [
            recorder.fork() if recorder is not None else None for _ in batch
        ]

        def task_size(task) -> int:
            total = 0
            for sig in task.sigs:
                rel = db.get(*sig)
                if rel is not None:
                    total += len(rel)
            return total

        submissions: List[List[int]] = []
        group: List[int] = []
        for i, task in enumerate(batch):
            if task_size(task) <= SMALL_COMPONENT_FACTS:
                group.append(i)
                if len(group) >= SCC_BATCH_GROUP:
                    submissions.append(group)
                    group = []
            else:
                submissions.append([i])
        if group:
            submissions.append(group)

        def work(i: int) -> None:
            run = scheduler.component_run(
                batch[i], recorders[i], fact_base=fact_base
            )
            run.execute(stages[i], locals_[i])

        def work_group(idxs: List[int]) -> None:
            for i in idxs:
                work(i)

        with ThreadPoolExecutor(
            max_workers=min(scheduler.jobs, len(submissions))
        ) as executor:
            futures = [
                executor.submit(work_group, idxs) for idxs in submissions
            ]
            errors = []
            for future in futures:  # submission order, deterministic
                try:
                    future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
        if errors:
            raise errors[0]
        stats.scc_batches_shipped += sum(
            1 for idxs in submissions if len(idxs) > 1
        )
        for task, stage, local, forked in zip(batch, stages, locals_, recorders):
            db.adopt_stage(stage, task.sigs)
            stats.absorb(local)
            if forked is not None:
                recorder.absorb(forked)


class ProcessBackend(ExecutorBackend):
    """Batch components on a ``ProcessPoolExecutor`` via component specs.

    The only backend with true compute parallelism under the GIL.  Per
    component it ships a :class:`ComponentSpec` (rules + knobs + compact
    relation snapshots of the component's read/write signatures) and
    merges the returned :class:`ComponentResult` delta logs, stats, and
    derivations at the barrier in batch order — so facts, counters, and
    provenance trees are bit-identical to every other backend.  The
    pool persists across batches of one run (workers keep their plan
    caches warm) and is shut down by the scheduler at the end of the
    run.

    ``start_method`` picks the multiprocessing context (``"fork"``,
    ``"spawn"``, ...); ``None`` uses the platform default.  Worker
    entry points are module-level, so any method is safe.

    **Fault tolerance**: a dying worker (OOM kill, segfault, injected
    ``kill``) breaks the whole pool — every pending future raises
    ``BrokenProcessPool``.  Nothing has merged at that point (results
    merge only after all futures succeed), so the batch is retried
    whole: the broken pool is discarded, the batch re-submitted after
    an exponential back-off, up to ``retries`` times
    (:func:`resolve_retries` / ``REPRO_RETRIES``).  A batch that
    exhausts its retries degrades gracefully to the serial backend —
    same results, no parallelism — so one flaky machine never fails an
    evaluation that can still run.  ``stats.backend_retries`` and
    ``stats.backend_fallbacks`` record both events.  Real evaluation
    errors raised *inside* a worker (``NonTerminationError``, a
    ``ComponentTimeout``) are not retried: they are deterministic and
    propagate immediately.
    """

    name = "process"

    def __init__(
        self,
        start_method: Optional[str] = None,
        retries: Optional[int] = None,
        backoff: float = RETRY_BACKOFF,
    ):
        self.start_method = start_method
        self.retries = resolve_retries(retries)
        self.backoff = backoff
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_workers == workers:
            return self._pool
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_init_worker,
        )
        self._pool_workers = workers
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next batch builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def run_batch(self, scheduler, batch, db: Database, stats: EvalStats) -> None:
        attempt = 0
        while True:
            try:
                self._run_batch_once(scheduler, batch, db, stats)
                return
            except BrokenExecutor:
                self._discard_pool()
                if attempt >= self.retries:
                    stats.backend_fallbacks += 1
                    SerialBackend().run_batch(scheduler, batch, db, stats)
                    return
                time.sleep(self.backoff * (2 ** attempt))
                attempt += 1
                stats.backend_retries += 1

    def _run_batch_once(
        self, scheduler, batch, db: Database, stats: EvalStats
    ) -> None:
        pool = self._ensure_pool(min(scheduler.jobs, 61))  # 61: executor cap
        fact_base = stats.facts
        specs = [
            ComponentSpec.from_task(scheduler, task, db, fact_base)
            for task in batch
        ]
        # Group small components into shared submissions: a batch of
        # tiny SCCs (the coarse-component workloads produce dozens)
        # would otherwise spend more wall time pickling futures than
        # evaluating.  Large specs keep a future each; grouping only
        # changes dispatch, results are re-indexed to batch order.
        submissions: List[List[int]] = []
        group: List[int] = []
        for i, spec in enumerate(specs):
            if spec.fact_count() <= SMALL_COMPONENT_FACTS:
                group.append(i)
                if len(group) >= SCC_BATCH_GROUP:
                    submissions.append(group)
                    group = []
            else:
                submissions.append([i])
        if group:
            submissions.append(group)
        futures = []
        for idxs in submissions:
            if len(idxs) == 1:
                futures.append((idxs, pool.submit(evaluate_component, specs[idxs[0]])))
            else:
                futures.append(
                    (idxs, pool.submit(evaluate_component_batch, [specs[i] for i in idxs]))
                )
        results: List[Optional[ComponentResult]] = [None] * len(specs)
        errors = []
        for idxs, future in futures:  # submission order, deterministic
            try:
                outcome = future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
                continue
            if len(idxs) == 1:
                results[idxs[0]] = outcome
            else:
                for i, res in zip(idxs, outcome):
                    results[i] = res
        if errors:
            # A real evaluation error beats a worker-loss symptom: when a
            # worker dies, *every* unfinished future reports the broken
            # pool, but a NonTerminationError that also surfaced is the
            # actual cause and retrying cannot fix it.
            for exc in errors:
                if not isinstance(exc, BrokenExecutor):
                    raise exc
            raise errors[0]
        stats.scc_batches_shipped += sum(
            1 for idxs, _ in futures if len(idxs) > 1
        )
        recorder = scheduler.recorder
        for result in results:
            for sig, facts in result.deltas.items():
                rel = db.relation(*sig)
                for fact in facts:
                    rel.add(fact)
            stats.absorb(result.stats)
            if recorder is not None and result.derivations is not None:
                recorder.absorb_derivations(result.derivations)

    def close(self) -> None:
        self._discard_pool()
