"""Deterministic fault injection for robustness testing.

The transaction layer's guarantees — atomic rollback, journaled
recovery, graceful backend degradation — are only as good as the
failures they have been exercised against.  This module provides the
failures: a :class:`FaultPlan` is a deterministic script of fault
*events* fired at instrumented boundaries, so a test (or a CI job, via
the ``REPRO_FAULTS`` environment variable) can make the engine raise,
die, or stall at an exactly reproducible point and then assert the
visible state equals a from-scratch evaluation of either the pre- or
post-batch EDB — never anything in between.

Instrumented sites
------------------

* ``component`` — fired by :class:`~repro.engine.scheduler.ComponentRun`
  at the start of every component fixpoint, in whichever process runs
  it (the parent for serial/maintenance work, a pool worker under the
  process backend).
* ``worker`` — fired by
  :func:`~repro.engine.backends.evaluate_component` on entry, i.e.
  only inside process-pool workers.  A ``kill`` here is how the test
  suite produces a real ``BrokenProcessPool``.
* ``journal`` — fired by :class:`~repro.engine.journal.Journal` before
  each record write.  The ``torn`` kind is specific to this site: the
  journal writes only a prefix of the record and raises, simulating a
  crash mid-write (the recovery path must treat the tail as
  uncommitted).

Kinds: ``raise`` (raise :class:`FaultInjected`), ``kill``
(``os._exit`` — no cleanup, equivalent to ``kill -9``), ``delay``
(sleep, for exercising the wall-clock watchdog), ``torn`` (journal
site only, see above).

Plans are scripted as ``site:kind:nth[:delay]`` events, comma
separated — ``"component:raise:2"`` raises at the second component
boundary, ``"journal:torn:3"`` tears the third journal write,
``"component:delay:1:0.2"`` sleeps 0.2 s at the first component.
Counters are per-process (workers count their own boundaries), which
is what makes plans deterministic under any start method.  Malformed
specs fail loudly with the accepted grammar, mirroring
:func:`repro.engine.backends.resolve_backend`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Environment variable supplying the session-wide fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Instrumented boundaries, in documentation order.
SITES = ("component", "worker", "journal")

#: Recognized fault kinds. ``torn`` is only valid at the journal site.
KINDS = ("raise", "kill", "delay", "torn")

#: Exit status used by ``kill`` faults — distinctive enough that a test
#: watching a subprocess can tell an injected death from a real crash.
KILL_STATUS = 137  # what the shell reports for SIGKILL


class FaultInjected(RuntimeError):
    """Raised by an armed fault plan at an instrumented boundary."""


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: fire ``kind`` at the ``nth`` hit of ``site``."""

    site: str
    kind: str
    nth: int
    delay: float = 0.0

    def __str__(self) -> str:
        suffix = f":{self.delay:g}" if self.kind == "delay" else ""
        return f"{self.site}:{self.kind}:{self.nth}{suffix}"


class FaultPlan:
    """A deterministic script of fault events with per-site counters.

    ``fire(site)`` increments the site's counter and executes every
    event scheduled for that hit.  Counters are per-plan (and therefore
    per-process: workers build their own plan from the inherited
    environment), so the same plan against the same workload fires at
    the same boundaries every run.
    """

    def __init__(self, events: List[FaultEvent]):
        self.events = tuple(events)
        self._counts: Dict[str, int] = {}

    def reset(self) -> None:
        """Zero the site counters (a fresh run of the same plan)."""
        self._counts.clear()

    def fire(self, site: str, torn_length: Optional[int] = None) -> Optional[int]:
        """Count one hit of ``site``; execute any events due at it.

        Returns the byte offset at which a ``torn`` event wants the
        caller (the journal) to cut its write, or ``None``.  ``delay``
        events sleep before any ``raise``/``kill`` at the same hit, so
        a plan can combine them.
        """
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        cut: Optional[int] = None
        due = [e for e in self.events if e.site == site and e.nth == count]
        for event in due:
            if event.kind == "delay":
                time.sleep(event.delay)
        for event in due:
            if event.kind == "torn" and torn_length is not None:
                cut = max(1, torn_length // 2)
        for event in due:
            if event.kind == "raise":
                raise FaultInjected(f"injected fault at {site} boundary #{count}")
            if event.kind == "kill":
                os._exit(KILL_STATUS)
        return cut

    def __repr__(self) -> str:
        return f"FaultPlan({','.join(str(e) for e in self.events)!r})"


def parse_faults(spec: str, source: str = "faults") -> FaultPlan:
    """Parse a ``site:kind:nth[:delay]`` event list into a plan.

    Raises ``ValueError`` naming the accepted sites and kinds on any
    malformed field — the same loud-failure contract as
    ``resolve_backend``/``resolve_jobs``.
    """

    def bad(reason: str) -> ValueError:
        return ValueError(
            f"invalid {source}={spec!r}: {reason}; expected comma-separated "
            f"site:kind:nth[:delay] events with site in "
            f"{{{', '.join(SITES)}}} and kind in {{{', '.join(KINDS)}}}"
        )

    events: List[FaultEvent] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise bad(f"event {chunk!r} has {len(parts)} fields")
        site, kind, nth_text = parts[0].strip(), parts[1].strip(), parts[2].strip()
        if site not in SITES:
            raise bad(f"unknown site {site!r}")
        if kind not in KINDS:
            raise bad(f"unknown kind {kind!r}")
        if kind == "torn" and site != "journal":
            raise bad(f"kind 'torn' is only valid at site 'journal', not {site!r}")
        try:
            nth = int(nth_text)
        except ValueError:
            raise bad(f"event {chunk!r} has non-integer position {nth_text!r}") from None
        if nth < 1:
            raise bad(f"event {chunk!r} has position {nth} < 1")
        delay = 0.0
        if len(parts) == 4:
            if kind != "delay":
                raise bad(f"only 'delay' events take a fourth field, got {chunk!r}")
            try:
                delay = float(parts[3])
            except ValueError:
                raise bad(f"event {chunk!r} has non-numeric delay {parts[3]!r}") from None
            if not delay > 0:
                raise bad(f"event {chunk!r} has non-positive delay")
        elif kind == "delay":
            raise bad(f"'delay' events need a seconds field, got {chunk!r}")
        events.append(FaultEvent(site, kind, nth, delay))
    if not events:
        raise bad("no events")
    return FaultPlan(events)


def resolve_faults(spec: Optional[str] = None) -> Optional[FaultPlan]:
    """Normalize a fault-plan choice, honouring ``REPRO_FAULTS``.

    ``None`` falls back to the environment; an empty/unset environment
    means no plan (the overwhelmingly common case).  Malformed specs
    raise ``ValueError`` with the accepted grammar so typos fail loudly
    instead of silently injecting nothing.
    """
    source = "faults"
    if spec is None:
        raw = os.environ.get(FAULTS_ENV, "").strip()
        if not raw:
            return None
        spec, source = raw, FAULTS_ENV
    return parse_faults(spec, source=source)


# ----------------------------------------------------------------------
# The process-wide active plan
# ----------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, lazily loading ``REPRO_FAULTS`` once."""
    global _PLAN, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        if _PLAN is None:
            _PLAN = resolve_faults()
    return _PLAN


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` (counters reset) as this process's fault plan."""
    global _PLAN, _ENV_CHECKED
    _ENV_CHECKED = True
    _PLAN = plan
    if plan is not None:
        plan.reset()


def clear() -> None:
    """Drop any installed plan and re-arm the environment lookup."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = False


def fire(site: str, torn_length: Optional[int] = None) -> Optional[int]:
    """Fire one boundary hit against the active plan (no-op without one)."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(site, torn_length)
