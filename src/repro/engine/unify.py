"""Substitutions, pattern matching, and unification.

Bottom-up evaluation only ever matches a rule literal (a pattern with
variables) against a *ground* fact, so the hot path is :func:`match`.
Full two-sided unification (:func:`unify`) is used by the tabled
top-down evaluator and by the conjunctive-query machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.datalog.literals import Literal
from repro.datalog.terms import Compound, Constant, Term, Variable


class Substitution:
    """A mapping from variables to terms.

    Substitutions are *applied* eagerly when built by :func:`match`
    (bindings are always ground there), and resolved transitively by
    :meth:`walk` when built by :func:`unify` (triangular form).
    """

    __slots__ = ("mapping",)

    def __init__(self, mapping: Optional[Dict[Variable, Term]] = None):
        self.mapping: Dict[Variable, Term] = mapping if mapping is not None else {}

    def copy(self) -> "Substitution":
        return Substitution(dict(self.mapping))

    def bind(self, var: Variable, term: Term) -> None:
        self.mapping[var] = term

    def lookup(self, var: Variable) -> Optional[Term]:
        return self.mapping.get(var)

    def walk(self, term: Term) -> Term:
        """Resolve ``term`` through variable chains (no recursion into compounds)."""
        while isinstance(term, Variable):
            bound = self.mapping.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def apply(self, term: Term) -> Term:
        """Fully resolve ``term``, including inside compound terms."""
        term = self.walk(term)
        if isinstance(term, Compound):
            args = tuple(self.apply(a) for a in term.args)
            if args == term.args:
                return term
            return Compound(term.functor, args)
        return term

    def apply_literal(self, literal: Literal) -> Literal:
        args = tuple(self.apply(a) for a in literal.args)
        if args == literal.args:
            return literal
        return Literal(literal.predicate, args)

    def apply_rule(self, rule) -> "Rule":  # noqa: F821 - avoid import cycle in hints
        from repro.datalog.rules import Rule

        return Rule(
            self.apply_literal(rule.head),
            tuple(self.apply_literal(lit) for lit in rule.body),
        )

    def __contains__(self, var: Variable) -> bool:
        return var in self.mapping

    def __len__(self) -> int:
        return len(self.mapping)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}={t}" for v, t in self.mapping.items())
        return f"Substitution({inner})"


def match_term(pattern: Term, fact: Term, bindings: Dict[Variable, Term]) -> bool:
    """One-sided matching: bind pattern variables so pattern == fact.

    ``fact`` must be ground.  Mutates ``bindings``; on failure the
    caller must discard them (the evaluators copy before matching).
    """
    if isinstance(pattern, Variable):
        bound = bindings.get(pattern)
        if bound is None:
            bindings[pattern] = fact
            return True
        return bound == fact
    if isinstance(pattern, Constant):
        return pattern == fact
    if isinstance(pattern, Compound):
        if (
            not isinstance(fact, Compound)
            or fact.functor != pattern.functor
            or len(fact.args) != len(pattern.args)
        ):
            return False
        for p_arg, f_arg in zip(pattern.args, fact.args):
            if not match_term(p_arg, f_arg, bindings):
                return False
        return True
    raise TypeError(f"not a term: {pattern!r}")


def match(
    pattern: Literal,
    fact_args: Sequence[Term],
    bindings: Dict[Variable, Term],
) -> Optional[Dict[Variable, Term]]:
    """Match a literal pattern against a ground fact's argument tuple.

    Returns an *extended copy* of ``bindings`` on success, ``None`` on
    failure; the input dict is never mutated.
    """
    new = dict(bindings)
    for p_arg, f_arg in zip(pattern.args, fact_args):
        if not match_term(p_arg, f_arg, new):
            return None
    return new


def _occurs(var: Variable, term: Term, subst: Substitution) -> bool:
    term = subst.walk(term)
    if term == var:
        return True
    if isinstance(term, Compound):
        return any(_occurs(var, a, subst) for a in term.args)
    return False


def unify_terms(a: Term, b: Term, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two terms; returns the extended substitution or ``None``.

    Performs the occurs check — the paper's programs never need
    rational trees, and silent cyclic bindings would corrupt the tabled
    evaluator.
    """
    if subst is None:
        subst = Substitution()
    a = subst.walk(a)
    b = subst.walk(b)
    if a == b:
        return subst
    if isinstance(a, Variable):
        if _occurs(a, b, subst):
            return None
        subst.bind(a, b)
        return subst
    if isinstance(b, Variable):
        if _occurs(b, a, subst):
            return None
        subst.bind(b, a)
        return subst
    if isinstance(a, Constant) or isinstance(b, Constant):
        return None  # distinct constants, or constant vs compound
    if (
        isinstance(a, Compound)
        and isinstance(b, Compound)
        and a.functor == b.functor
        and len(a.args) == len(b.args)
    ):
        for a_arg, b_arg in zip(a.args, b.args):
            if unify_terms(a_arg, b_arg, subst) is None:
                return None
        return subst
    return None


def unify(a: Literal, b: Literal, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two literals (same predicate and arity required)."""
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    if subst is None:
        subst = Substitution()
    else:
        subst = subst.copy()
    for a_arg, b_arg in zip(a.args, b.args):
        if unify_terms(a_arg, b_arg, subst) is None:
            return None
    return subst


def rename_apart(rule, suffix: str):
    """Return ``rule`` with every variable renamed with ``suffix``.

    Used by the top-down evaluator to standardize rules apart from the
    current goal before unification.
    """
    mapping = {v: Variable(f"{v.name}~{suffix}") for v in rule.variables()}
    return rule.rename_variables(mapping)
