"""A tabled top-down evaluator (the "Prolog" baseline).

Examples 1.2 and 4.6 compare factoring against top-down evaluation:
"Prolog will compute the O(n^2) facts pmem(xi, [xj, ..., xn])".  The
measurable content of that claim is the number of distinct
(subgoal, answer) table entries a goal-directed evaluation must
materialize, so this module implements goal-directed evaluation with
tabling and reports exactly those counts.

The algorithm is a fixpoint over a growing table of subgoals: for each
subgoal and each program rule whose head unifies with it, the body is
solved left to right; IDB body literals spawn (or reuse) subgoals and
consume their current answers; EDB literals match stored facts.  The
fixpoint, reached when no new subgoal or answer appears, computes the
same answers as SLD resolution with memoization (OLDT), and terminates
whenever the table is finite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.terms import Compound, Term, Variable
from repro.engine.database import Database
from repro.engine.stats import NonTerminationError
from repro.engine.unify import Substitution, rename_apart, unify, unify_terms


@dataclass
class TopDownResult:
    """Answers plus table-size statistics for one tabled evaluation."""

    answers: Set[Tuple[Term, ...]]
    subgoals: int
    table_entries: int
    resolution_steps: int
    seconds: float
    tables: Dict[Literal, Set[Tuple[Term, ...]]] = field(default_factory=dict)


def _canonicalize(goal: Literal) -> Tuple[Literal, List[Variable]]:
    """Rename the free variables of ``goal`` positionally.

    Two goals that differ only in free-variable names share one table
    entry.  Returns the canonical literal and its variable order.
    """
    mapping: Dict[Variable, Variable] = {}
    order: List[Variable] = []

    def rename(term: Term) -> Term:
        if isinstance(term, Variable):
            if term not in mapping:
                canon = Variable(f"G#{len(mapping)}")
                mapping[term] = canon
                order.append(canon)
            return mapping[term]
        if isinstance(term, Compound) and not term.is_ground():
            return Compound(term.functor, tuple(rename(a) for a in term.args))
        return term

    canonical = Literal(goal.predicate, tuple(rename(a) for a in goal.args))
    return canonical, order


class _Tabling:
    """Mutable state of one tabled evaluation."""

    def __init__(
        self,
        program: Program,
        edb: Database,
        max_table_entries: Optional[int],
        max_steps: Optional[int],
    ):
        self.program = program
        self.edb = edb
        self.idb = set(program.idb_signatures)
        self.max_table_entries = max_table_entries
        self.max_steps = max_steps
        self.tables: Dict[Literal, Set[Tuple[Term, ...]]] = {}
        self.var_orders: Dict[Literal, List[Variable]] = {}
        self.steps = 0
        # Compile once per evaluation: rules renamed apart from any goal
        # (the suffix is deterministic per rule, so renaming per fixpoint
        # pass was pure interpretation overhead), grouped by head
        # signature so each subgoal only visits its own rules.  The
        # original rule rides along for error messages.
        self._renamed_by_sig: Dict[Tuple[str, int], List] = {}
        for rule_index, rule in enumerate(program.rules):
            self._renamed_by_sig.setdefault(rule.head.signature, []).append(
                (rename_apart(rule, f"r{rule_index}"), rule)
            )

    # ------------------------------------------------------------------

    def table_for(self, goal: Literal) -> Literal:
        canonical, order = _canonicalize(goal)
        if canonical not in self.tables:
            self.tables[canonical] = set()
            self.var_orders[canonical] = order
            if (
                self.max_table_entries is not None
                and len(self.tables) > self.max_table_entries
            ):
                raise NonTerminationError(
                    f"top-down evaluation exceeded {self.max_table_entries} subgoals",
                    0,
                    len(self.tables),
                )
        return canonical

    def answer_instances(self, goal: Literal) -> List[Literal]:
        """Current answers of ``goal``'s table, as literal instances."""
        canonical = self.table_for(goal)
        order = self.var_orders[canonical]
        out = []
        for answer in self.tables[canonical]:
            subst = Substitution(dict(zip(order, answer)))
            out.append(subst.apply_literal(canonical))
        return out

    # ------------------------------------------------------------------

    def solve_body(
        self, body: Tuple[Literal, ...], index: int, subst: Substitution
    ) -> Iterator[Substitution]:
        """All solutions of ``body[index:]`` extending ``subst``."""
        if index == len(body):
            yield subst
            return
        literal = subst.apply_literal(body[index])
        if literal.signature in self.idb:
            for candidate in self.answer_instances(literal):
                extended = subst.copy()
                ok = True
                for pat, val in zip(literal.args, candidate.args):
                    if unify_terms(pat, val, extended) is None:
                        ok = False
                        break
                if ok:
                    yield from self.solve_body(body, index + 1, extended)
            return
        # EDB literal: probe through the relation's hash index on the
        # positions that are already ground instead of scanning and
        # unifying every stored fact.
        rel = self.edb.get(literal.predicate, literal.arity)
        if rel is None:
            return
        positions: List[int] = []
        key: List[Term] = []
        free: List[int] = []
        for i, arg in enumerate(literal.args):
            if arg.is_ground():
                positions.append(i)
                key.append(arg)
            else:
                free.append(i)
        if positions:
            candidates = rel.lookup(tuple(positions), tuple(key))
        else:
            candidates = rel.tuples
        args = literal.args
        for fact in candidates:
            extended = subst.copy()
            ok = True
            for i in free:
                if unify_terms(args[i], fact[i], extended) is None:
                    ok = False
                    break
            if ok:
                yield from self.solve_body(body, index + 1, extended)

    def run_to_fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            tables_before = len(self.tables)
            for canonical in list(self.tables):
                if canonical.signature not in self.idb:
                    continue
                order = self.var_orders[canonical]
                for renamed, rule in self._renamed_by_sig.get(canonical.signature, ()):
                    head_subst = unify(renamed.head, canonical)
                    if head_subst is None:
                        continue
                    self.steps += 1
                    if self.max_steps is not None and self.steps > self.max_steps:
                        raise NonTerminationError(
                            f"top-down evaluation exceeded {self.max_steps} steps",
                            0,
                            sum(len(t) for t in self.tables.values()),
                        )
                    for final in self.solve_body(renamed.body, 0, head_subst):
                        answer = tuple(final.apply(v) for v in order)
                        if not all(t.is_ground() for t in answer):
                            raise ValueError(
                                f"non-ground answer for {canonical} via {rule}; "
                                "the evaluator requires safe rules"
                            )
                        if answer not in self.tables[canonical]:
                            self.tables[canonical].add(answer)
                            changed = True
            if len(self.tables) > tables_before:
                # New subgoals appeared mid-pass; they need a pass of
                # their own even if no answer was produced yet.
                changed = True


def topdown_eval(
    program: Program,
    edb: Database,
    goal: Literal,
    max_table_entries: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> TopDownResult:
    """Solve ``goal`` top-down with tabling.

    Returns a :class:`TopDownResult`; ``answers`` holds one tuple per
    binding of the goal's free variables (first-occurrence order),
    matching :meth:`repro.engine.database.Database.query` conventions.
    """
    start = time.perf_counter()
    state = _Tabling(program, edb, max_table_entries, max_steps)
    top = state.table_for(goal)
    state.run_to_fixpoint()
    elapsed = time.perf_counter() - start
    return TopDownResult(
        answers=set(state.tables[top]),
        subgoals=len(state.tables),
        table_entries=sum(len(t) for t in state.tables.values()),
        resolution_steps=state.steps,
        seconds=elapsed,
        tables=state.tables,
    )
