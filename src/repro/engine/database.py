"""Relations and databases.

A :class:`Relation` is a set of ground argument tuples with lazily
built, incrementally maintained hash indexes over column subsets.  The
indexes are what make semi-naive joins cheap enough that the paper's
asymptotic separations (O(n) vs O(n^2) fact counts) show up as wall
time and not just as counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term

FactTuple = Tuple[Term, ...]
Signature = Tuple[str, int]


@dataclass(frozen=True)
class RelationStatistics:
    """A cheap snapshot of one relation's runtime statistics.

    ``cardinality`` is the tuple count; ``distinct_keys`` maps an index
    column subset to the number of distinct keys observed in that index
    (``len(index)`` — maintained for free by :meth:`Relation.add`).
    The cost model (:mod:`repro.engine.cost`) consumes these to
    estimate probe fanouts; positions with no index carry no entry and
    fall back to the estimator's default.
    """

    cardinality: int
    distinct_keys: Dict[Tuple[int, ...], int] = field(default_factory=dict)

    def distinct(self, positions: Tuple[int, ...]) -> Optional[int]:
        """Distinct-key count for an index on ``positions``, if known."""
        return self.distinct_keys.get(positions)


class Relation:
    """A set of ground tuples plus hash indexes on column subsets.

    Index keys are tuples of column positions (sorted); each index maps
    the projection of a tuple onto those columns to the list of tuples
    with that projection.  Indexes are created on first use and kept up
    to date by :meth:`add`; per-index hit counts record whether an
    index was ever *reused* after being built, so :meth:`copy` can
    carry hot indexes forward and drop cold ones.

    Insertions also append to an internal log, so a contiguous run of
    additions (a semi-naive delta) is addressable as a zero-copy
    :class:`RelationView` via :meth:`view`.
    """

    __slots__ = (
        "name",
        "arity",
        "tuples",
        "_log",
        "_indexes",
        "_index_hits",
        "_carried_distinct",
    )

    def __init__(self, name: str, arity: int):
        self.name = name
        self.arity = arity
        self.tuples: Set[FactTuple] = set()
        self._log: List[FactTuple] = []
        self._indexes: Dict[Tuple[int, ...], Dict[FactTuple, List[FactTuple]]] = {}
        self._index_hits: Dict[Tuple[int, ...], int] = {}
        # Distinct-key counts inherited through copy() for indexes the
        # copy chose not to materialize; live indexes take precedence.
        self._carried_distinct: Dict[Tuple[int, ...], int] = {}

    def add(self, fact: FactTuple) -> bool:
        """Insert ``fact``; returns True if it was new."""
        if len(fact) != self.arity:
            raise ValueError(
                f"arity mismatch for {self.name}: expected {self.arity}, got {len(fact)}"
            )
        if fact in self.tuples:
            return False
        self.tuples.add(fact)
        self._log.append(fact)
        for positions, index in self._indexes.items():
            key = tuple(fact[i] for i in positions)
            index.setdefault(key, []).append(fact)
        return True

    def __contains__(self, fact: FactTuple) -> bool:
        return fact in self.tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[FactTuple]:
        return iter(self.tuples)

    def lookup(self, positions: Tuple[int, ...], key: FactTuple) -> Sequence[FactTuple]:
        """All tuples whose projection on ``positions`` equals ``key``.

        With an empty ``positions`` this is a full scan.
        """
        if not positions:
            return tuple(self.tuples)
        return self.ensure_index(positions).get(key, ())

    def ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[FactTuple, List[FactTuple]]:
        """The hash index on ``positions``, building it on first use.

        The compiled-plan executor probes the returned dict directly,
        so the per-candidate cost is one C-level ``dict.get``.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for fact in self.tuples:
                k = tuple(fact[i] for i in positions)
                index.setdefault(k, []).append(fact)
            # Publish the hit counter before the index: a concurrent
            # reader (parallel SCC batch probing a shared lower-stratum
            # relation) that sees the index must also see its counter.
            self._index_hits.setdefault(positions, 0)
            self._indexes[positions] = index
        else:
            self._index_hits[positions] = self._index_hits.get(positions, 0) + 1
        return index

    def scan(self) -> Set[FactTuple]:
        """The tuples, for full-scan iteration (no copy)."""
        return self.tuples

    def fact_set(self) -> Set[FactTuple]:
        """The tuples as a set, for existence checks (no copy)."""
        return self.tuples

    def distinct_count(self, positions: Tuple[int, ...]) -> Optional[int]:
        """Distinct keys in the index on ``positions``, if one exists.

        Never builds an index: statistics stay free.  Falls back to
        counts carried over by :meth:`copy` when the live index was
        dropped; returns ``None`` when nothing is known.
        """
        index = self._indexes.get(positions)
        if index is not None:
            return len(index)
        return self._carried_distinct.get(positions)

    def statistics(self) -> RelationStatistics:
        """A snapshot of cardinality plus per-index distinct-key counts.

        Built on :meth:`_distinct_snapshot`, which iterates over a
        point-in-time copy of the index table: under parallel SCC
        evaluation another component may lazily build an index on a
        shared lower-stratum relation while this one reads statistics,
        and a live ``dict`` iteration would raise.
        """
        return RelationStatistics(len(self.tuples), self._distinct_snapshot())

    def snapshot(self) -> "Relation":
        """A compact, self-contained copy: facts plus statistics, no indexes.

        This is the wire form of a relation — what the process
        execution backend ships to a worker.  The log (and with it the
        tuple set and insertion order) is copied; every live index is
        reduced to its distinct-key count and carried as a statistic,
        so a cost planner on the far side plans from the same
        cardinality estimates without paying to rebuild (or transfer)
        any bucket table.
        """
        dup = Relation(self.name, self.arity)
        dup._log = list(self._log)
        dup.tuples = set(self._log)
        dup._carried_distinct = self._distinct_snapshot()
        return dup

    def _distinct_snapshot(self) -> Dict[Tuple[int, ...], int]:
        """Carried + live distinct-key counts (live indexes win)."""
        distinct = dict(self._carried_distinct)
        for positions, index in list(self._indexes.items()):
            distinct[positions] = len(index)
        return distinct

    def __getstate__(self):
        # Pickle the compact snapshot form: the log determines the tuple
        # set (add() appends only novel facts), and indexes travel as
        # distinct-key counts only.  Workers rebuild indexes lazily on
        # first probe, exactly like a fresh relation.
        return (self.name, self.arity, tuple(self._log), self._distinct_snapshot())

    def __setstate__(self, state) -> None:
        name, arity, log, distinct = state
        self.name = name
        self.arity = arity
        self._log = list(log)
        self.tuples = set(log)
        self._indexes = {}
        self._index_hits = {}
        self._carried_distinct = dict(distinct)

    def remove_facts(self, facts: Iterable[FactTuple]) -> int:
        """Remove ``facts``; returns how many were actually present.

        The deletion hook for incremental view maintenance (DRed's
        over-delete/prune step).  The insertion log is compacted to the
        survivors in their original order, so subsequent semi-naive
        maintenance passes keep slicing valid :meth:`view` windows.
        Live indexes are *repaired*, not dropped: only the buckets the
        doomed facts project into are filtered, so the per-deletion
        cost scales with the deletion (times the bucket sizes), never
        with the relation — churny maintenance keeps its hot indexes.

        Must not be called while an evaluation holds views over this
        relation: view bounds are log offsets and compaction moves them.
        """
        doomed = {fact for fact in facts if fact in self.tuples}
        if not doomed:
            return 0
        self.tuples -= doomed
        self._log = [fact for fact in self._log if fact not in doomed]
        for positions, index in self._indexes.items():
            touched = {tuple(fact[i] for i in positions) for fact in doomed}
            for key in touched:
                bucket = index.get(key)
                if bucket is None:
                    continue
                survivors = [fact for fact in bucket if fact not in doomed]
                if survivors:
                    index[key] = survivors
                else:
                    del index[key]
        return len(doomed)

    def view(self, start: int, stop: int) -> "RelationView":
        """A read-only view of insertions ``start:stop`` (log order).

        The semi-naive evaluator uses this for delta relations: the
        facts added during one round are a contiguous log slice, so no
        tuples are copied and no throwaway relation is built.
        """
        return RelationView(self, start, stop)

    def copy(self) -> "Relation":
        """An independent copy sharing no mutable state.

        Indexes that were reused at least once since being built are
        carried over (bucket lists are copied, the immutable tuples are
        shared); indexes built but never probed again are dropped, so a
        copy does not pay to maintain them on subsequent inserts.

        Statistics always survive the copy: distinct-key counts of
        dropped indexes are retained as carried estimates, so
        :meth:`Database.copy`-based pipelines plan from warm statistics
        instead of cold defaults.
        """
        dup = Relation(self.name, self.arity)
        dup.tuples = set(self.tuples)
        dup._log = list(self._log)
        dup._carried_distinct = dict(self._carried_distinct)
        for positions, hits in list(self._index_hits.items()):
            index = self._indexes.get(positions)
            if index is None:
                continue  # counter published ahead of a mid-build index
            if hits > 0:
                dup._indexes[positions] = {k: list(v) for k, v in index.items()}
                dup._index_hits[positions] = hits
            else:
                dup._carried_distinct[positions] = len(index)
        return dup


class RelationView:
    """A read-only window onto a contiguous slice of a relation's log.

    Supports the same probe interface as :class:`Relation` (``lookup``,
    iteration, membership, ``len``), building its own small hash
    indexes lazily over just the slice.  The view stays valid as the
    parent relation grows: the bounds are fixed at creation.
    """

    __slots__ = ("relation", "start", "stop", "_indexes", "_set")

    def __init__(self, relation: Relation, start: int, stop: int):
        self.relation = relation
        self.start = start
        self.stop = stop
        self._indexes: Optional[
            Dict[Tuple[int, ...], Dict[FactTuple, List[FactTuple]]]
        ] = None
        self._set: Optional[Set[FactTuple]] = None

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def arity(self) -> int:
        return self.relation.arity

    def __len__(self) -> int:
        return self.stop - self.start

    def __iter__(self) -> Iterator[FactTuple]:
        log = self.relation._log
        for i in range(self.start, self.stop):
            yield log[i]

    def __contains__(self, fact: FactTuple) -> bool:
        return fact in self.fact_set()

    def lookup(self, positions: Tuple[int, ...], key: FactTuple) -> Sequence[FactTuple]:
        """Slice-local analogue of :meth:`Relation.lookup`."""
        if not positions:
            return self.relation._log[self.start : self.stop]
        return self.ensure_index(positions).get(key, ())

    def ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[FactTuple, List[FactTuple]]:
        """The slice-local hash index on ``positions`` (built lazily)."""
        if self._indexes is None:
            self._indexes = {}
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            log = self.relation._log
            for i in range(self.start, self.stop):
                fact = log[i]
                k = tuple(fact[j] for j in positions)
                index.setdefault(k, []).append(fact)
            self._indexes[positions] = index
        return index

    def scan(self) -> List[FactTuple]:
        """The slice's tuples, for full-scan iteration."""
        return self.relation._log[self.start : self.stop]

    def fact_set(self) -> Set[FactTuple]:
        """The slice's tuples as a set, for existence checks."""
        if self._set is None:
            self._set = set(self.relation._log[self.start : self.stop])
        return self._set

    def distinct_count(self, positions: Tuple[int, ...]) -> Optional[int]:
        """Distinct keys in the slice-local index on ``positions``, if built."""
        if self._indexes is None:
            return None
        index = self._indexes.get(positions)
        return len(index) if index is not None else None

    def statistics(self) -> RelationStatistics:
        """Cardinality plus distinct-key counts of slice-local indexes."""
        distinct: Dict[Tuple[int, ...], int] = {}
        if self._indexes is not None:
            for positions, index in self._indexes.items():
                distinct[positions] = len(index)
        return RelationStatistics(self.stop - self.start, distinct)

    def __getstate__(self):
        # Compact wire form: the window bounds plus the parent relation
        # (which itself pickles compactly); slice-local indexes and the
        # memoized fact set are cheap to rebuild and never travel.
        return (self.relation, self.start, self.stop)

    def __setstate__(self, state) -> None:
        self.relation, self.start, self.stop = state
        self._indexes = None
        self._set = None

    def __repr__(self) -> str:
        return f"RelationView({self.name}/{self.arity}, [{self.start}:{self.stop}])"


class Database:
    """A mapping from predicate signatures to relations.

    Used both for the EDB (loaded from workloads) and for the IDB
    output of the evaluators.  Constants may be given as plain Python
    values; they are wrapped into :class:`Constant` on insertion.
    """

    def __init__(self):
        self.relations: Dict[Signature, Relation] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def relation(self, name: str, arity: int) -> Relation:
        """Get or create the relation for ``(name, arity)``."""
        sig = (name, arity)
        rel = self.relations.get(sig)
        if rel is None:
            rel = Relation(name, arity)
            self.relations[sig] = rel
        return rel

    def add_fact(self, predicate: str, args: Sequence) -> bool:
        """Insert one fact; plain Python values are wrapped as constants."""
        wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
        for term in wrapped:
            if not term.is_ground():
                raise ValueError(f"fact argument {term} is not ground")
        return self.relation(predicate, len(wrapped)).add(wrapped)

    def add_facts(self, predicate: str, tuples: Iterable[Sequence]) -> int:
        """Bulk insert; returns the number of new facts."""
        added = 0
        for args in tuples:
            if self.add_fact(predicate, args):
                added += 1
        return added

    @classmethod
    def from_dict(cls, facts: Dict[str, Iterable[Sequence]]) -> "Database":
        """Build a database from ``{predicate: [tuple, ...]}``."""
        db = cls()
        for predicate, tuples in facts.items():
            db.add_facts(predicate, tuples)
        return db

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, name: str, arity: int) -> Optional[Relation]:
        return self.relations.get((name, arity))

    def facts(self, name: str, arity: Optional[int] = None) -> Set[FactTuple]:
        """All tuples of a predicate (any arity if unspecified)."""
        result: Set[FactTuple] = set()
        for (rel_name, rel_arity), rel in self.relations.items():
            if rel_name == name and (arity is None or rel_arity == arity):
                result |= rel.tuples
        return result

    def remove_fact(self, predicate: str, args: Sequence) -> bool:
        """Remove one fact; returns True if it was present.

        Plain Python values are wrapped exactly like :meth:`add_fact`,
        so ``remove_fact("e", (1, 2))`` undoes ``add_fact("e", (1, 2))``.
        """
        wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
        rel = self.relations.get((predicate, len(wrapped)))
        if rel is None:
            return False
        return rel.remove_facts((wrapped,)) == 1

    def has_fact(self, predicate: str, args: Sequence) -> bool:
        wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
        rel = self.relations.get((predicate, len(wrapped)))
        return rel is not None and wrapped in rel

    def total_facts(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def signatures(self) -> List[Signature]:
        return list(self.relations)

    def query(self, goal: Literal) -> Set[Tuple[Term, ...]]:
        """All bindings of ``goal``'s variables against stored facts.

        Returns the set of tuples of values taken by the goal's
        variables, in first-occurrence order.  A ground goal returns
        ``{()}`` if it holds and ``set()`` otherwise.
        """
        from repro.engine.unify import match

        rel = self.relations.get(goal.signature)
        if rel is None:
            return set()
        goal_vars = goal.variables()
        answers: Set[Tuple[Term, ...]] = set()
        for fact in rel:
            bindings = match(goal, fact, {})
            if bindings is not None:
                answers.add(tuple(bindings[v] for v in goal_vars))
        return answers

    # ------------------------------------------------------------------
    # Combination and copying
    # ------------------------------------------------------------------

    def copy(self) -> "Database":
        """An independent copy; per-relation indexes that were reused
        at least once are carried over, never-reused ones are dropped
        (see :meth:`Relation.copy`)."""
        dup = Database()
        for sig, rel in self.relations.items():
            dup.relations[sig] = rel.copy()
        return dup

    def stage(self, signatures: Iterable[Signature]) -> "Database":
        """A write-isolated view for one evaluation component.

        The named ``signatures`` (the component's write set) are
        private copies; every other relation is shared **by
        reference** and must be treated as read-only for the stage's
        lifetime.  The parallel SCC scheduler gives each component in
        a depth batch its own stage so concurrent components never
        write the same relation, then folds the stages back with
        :meth:`adopt_stage` at the batch barrier.
        """
        out = Database()
        out.relations = dict(self.relations)
        for sig in signatures:
            rel = self.relations.get(sig)
            out.relations[sig] = (
                rel.copy() if rel is not None else Relation(*sig)
            )
        return out

    def snapshot(self, signatures: Iterable[Signature]) -> "Database":
        """A self-contained compact database of just ``signatures``.

        The process-backend counterpart of :meth:`stage`: where a stage
        shares non-written relations by reference (fine inside one
        address space), a snapshot holds compact
        :meth:`Relation.snapshot` copies of exactly the named
        signatures — a component's read and write sets — so only the
        facts that component can actually touch cross the process
        boundary.  Missing signatures snapshot as empty relations.
        """
        out = Database()
        for sig in signatures:
            rel = self.relations.get(sig)
            out.relations[sig] = (
                rel.snapshot() if rel is not None else Relation(*sig)
            )
        return out

    def restore(self, saved: "Database", signatures: Iterable[Signature]) -> None:
        """Roll the named relations back to their ``saved`` state.

        The undo half of :meth:`snapshot`: the transaction layer
        snapshots a batch's dirty closure before maintenance, and on
        failure restores exactly those signatures by pointer swap.
        Restoration mutates ``self.relations`` in place — the database
        object itself keeps its identity, so live wrappers over it
        (``EdbKeyView``, a session's ``database`` attribute) stay
        valid.  A signature absent from ``saved`` is dropped: it did
        not exist pre-batch.
        """
        for sig in signatures:
            rel = saved.relations.get(sig)
            if rel is not None:
                self.relations[sig] = rel
            else:
                self.relations.pop(sig, None)

    def adopt_stage(
        self, stage: "Database", signatures: Iterable[Signature]
    ) -> None:
        """Fold a component stage back in: adopt its staged relations.

        Only the ``signatures`` staged by :meth:`stage` are taken — the
        component was the sole writer of those relations, so adoption
        is a pointer swap, not a tuple-by-tuple merge.
        """
        for sig in signatures:
            rel = stage.relations.get(sig)
            if rel is not None:
                self.relations[sig] = rel

    def merge(self, other: "Database") -> "Database":
        """A new database holding the union of facts."""
        merged = self.copy()
        for (name, arity), rel in other.relations.items():
            target = merged.relation(name, arity)
            for fact in rel:
                target.add(fact)
        return merged

    def restrict(self, signatures: Iterable[Signature]) -> "Database":
        """A new database containing only the named relations."""
        keep = set(signatures)
        out = Database()
        for sig, rel in self.relations.items():
            if sig in keep:
                out.relations[sig] = rel.copy()
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {sig: rel.tuples for sig, rel in self.relations.items() if rel.tuples}
        theirs = {sig: rel.tuples for sig, rel in other.relations.items() if rel.tuples}
        return mine == theirs

    def __repr__(self) -> str:
        return f"Database({self.total_facts()} facts, {len(self.relations)} relations)"


def load_program_facts(program, db: Database) -> int:
    """Copy ground fact rules from a program into ``db``.

    The paper treats magic seeds (``m_tbf(5).``) as program rules; the
    evaluators call this so such rules participate as facts.
    Returns the number of facts added.
    """
    added = 0
    for rule in program.rules:
        if rule.is_fact():
            if db.relation(rule.head.predicate, rule.head.arity).add(rule.head.args):
                added += 1
    return added
