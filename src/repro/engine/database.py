"""Relations and databases.

A :class:`Relation` is a set of ground argument tuples with lazily
built, incrementally maintained hash indexes over column subsets.  The
indexes are what make semi-naive joins cheap enough that the paper's
asymptotic separations (O(n) vs O(n^2) fact counts) show up as wall
time and not just as counters.
"""

from __future__ import annotations

from array import array
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term
from repro.engine.intern import TermDictionary

FactTuple = Tuple[Term, ...]
Signature = Tuple[str, int]
#: A fact as interned column values (one id per attribute).
RowTuple = Tuple[int, ...]

#: Lock stand-in for relations without a dictionary: those never have
#: columnar structures, so there is no cross-thread drain to exclude.
_NO_LOCK = nullcontext()


@dataclass(frozen=True)
class RelationStatistics:
    """A cheap snapshot of one relation's runtime statistics.

    ``cardinality`` is the tuple count; ``distinct_keys`` maps an index
    column subset to the number of distinct keys observed in that index
    (``len(index)`` — maintained for free by :meth:`Relation.add`).
    The cost model (:mod:`repro.engine.cost`) consumes these to
    estimate probe fanouts; positions with no index carry no entry and
    fall back to the estimator's default.
    """

    cardinality: int
    distinct_keys: Dict[Tuple[int, ...], int] = field(default_factory=dict)

    def distinct(self, positions: Tuple[int, ...]) -> Optional[int]:
        """Distinct-key count for an index on ``positions``, if known."""
        return self.distinct_keys.get(positions)


class Relation:
    """A set of ground tuples plus hash indexes on column subsets.

    Index keys are tuples of column positions (sorted); each index maps
    the projection of a tuple onto those columns to the list of tuples
    with that projection.  Indexes are created on first use and kept up
    to date by :meth:`add`; per-index hit counts record whether an
    index was ever *reused* after being built, so :meth:`copy` can
    carry hot indexes forward and drop cold ones.

    Insertions also append to an internal log, so a contiguous run of
    additions (a semi-naive delta) is addressable as a zero-copy
    :class:`RelationView` via :meth:`view`.

    When a :class:`~repro.engine.intern.TermDictionary` is attached
    (``dictionary``), the relation additionally maintains a columnar
    image of the log: one ``array('q')`` of interned term ids per
    attribute, extended lazily from a watermark by
    :meth:`ensure_columns` so the tuple-side hot path (:meth:`add`)
    never pays for it.  The columnar executor
    (:mod:`repro.engine.columnar`) reads the columns plus the
    int-keyed :meth:`col_index`/:meth:`col_set` accessors; row ``i``
    of the columns always describes ``_log[i]``.
    """

    __slots__ = (
        "name",
        "arity",
        "_tuples",
        "_logrows",
        "_pending_n",
        "_indexes",
        "_index_hits",
        "_carried_distinct",
        "dictionary",
        "_cols",
        "_colset",
        "_colset_n",
        "_col_indexes",
        "_last_rows",
        "_pending_rows",
    )

    def __init__(
        self, name: str, arity: int, dictionary: Optional[TermDictionary] = None
    ):
        self.name = name
        self.arity = arity
        self._tuples: Set[FactTuple] = set()
        self._logrows: List[FactTuple] = []
        # Rows that exist only in the columnar image so far: the tail
        # of the columns past len(_logrows).  Decoded back into the
        # tuple world lazily by _flush() on first tuple-side access.
        self._pending_n = 0
        self._indexes: Dict[Tuple[int, ...], Dict[FactTuple, List[FactTuple]]] = {}
        self._index_hits: Dict[Tuple[int, ...], int] = {}
        # Distinct-key counts inherited through copy() for indexes the
        # copy chose not to materialize; live indexes take precedence.
        self._carried_distinct: Dict[Tuple[int, ...], int] = {}
        #: Shared term dictionary enabling the columnar image (or None).
        self.dictionary = dictionary
        self._cols: Optional[List[array]] = None
        self._colset: Optional[Set[RowTuple]] = None
        self._colset_n = 0
        # positions -> (int-keyed index of row positions, watermark).
        self._col_indexes: Dict[Tuple[int, ...], Tuple[Dict, int]] = {}
        # (lo, hi, rows): the row tuples of the most recent bulk append,
        # kept so the next round's delta scan over exactly that span can
        # reuse them instead of re-zipping column slices.  Columns are
        # append-only, so the cache stays valid until compaction.
        self._last_rows: Optional[Tuple[int, int, List[RowTuple]]] = None
        # Bulk-appended rows not yet transposed into the columns.  A
        # head relation whose deltas are served from _last_rows and
        # whose dedup runs against the row set never needs its columns
        # during the fixpoint; ensure_columns() drains this buffer in
        # one transpose the first time the columns are actually read.
        self._pending_rows: List[RowTuple] = []

    # ------------------------------------------------------------------
    # The tuple world: late materialization
    # ------------------------------------------------------------------
    #
    # The columnar fixpoint appends derived rows to the columns only
    # (:meth:`append_rows`); the term-tuple mirror — the ``tuples``
    # set, the insertion log, any live tuple indexes — is brought up
    # to date by :meth:`_flush` the first time something actually
    # reads it.  Both are exposed as properties so every consumer
    # (evaluators, backends, equality, pickling) transparently sees a
    # complete relation, while a run that stays columnar end-to-end
    # never pays for decoding at all.

    @property
    def tuples(self) -> Set[FactTuple]:
        if self._pending_n:
            self._flush()
        return self._tuples

    @property
    def _log(self) -> List[FactTuple]:
        if self._pending_n:
            self._flush()
        return self._logrows

    def _flush(self) -> None:
        """Decode columnar-only rows into the tuple-world mirror."""
        dictionary = self.dictionary
        with dictionary._lock:
            if not self._pending_n:
                return
            cols = self.ensure_columns()
            terms = dictionary.terms
            start = len(self._logrows)
            decoded = list(
                zip(*([terms[i] for i in col[start:]] for col in cols))
            )
            self._logrows.extend(decoded)
            self._tuples.update(decoded)
            for positions, index in self._indexes.items():
                for fact in decoded:
                    key = tuple(fact[i] for i in positions)
                    index.setdefault(key, []).append(fact)
            self._pending_n = 0

    def add(self, fact: FactTuple) -> bool:
        """Insert ``fact``; returns True if it was new."""
        if len(fact) != self.arity:
            raise ValueError(
                f"arity mismatch for {self.name}: expected {self.arity}, got {len(fact)}"
            )
        if fact in self.tuples:
            return False
        self._tuples.add(fact)
        self._logrows.append(fact)
        for positions, index in self._indexes.items():
            key = tuple(fact[i] for i in positions)
            index.setdefault(key, []).append(fact)
        return True

    def __contains__(self, fact: FactTuple) -> bool:
        return fact in self.tuples

    def __len__(self) -> int:
        return len(self._tuples) + self._pending_n

    def __iter__(self) -> Iterator[FactTuple]:
        return iter(self.tuples)

    def lookup(self, positions: Tuple[int, ...], key: FactTuple) -> Sequence[FactTuple]:
        """All tuples whose projection on ``positions`` equals ``key``.

        With an empty ``positions`` this is a full scan.
        """
        if not positions:
            return tuple(self.tuples)
        return self.ensure_index(positions).get(key, ())

    def ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[FactTuple, List[FactTuple]]:
        """The hash index on ``positions``, building it on first use.

        The compiled-plan executor probes the returned dict directly,
        so the per-candidate cost is one C-level ``dict.get``.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for fact in self.tuples:
                k = tuple(fact[i] for i in positions)
                index.setdefault(k, []).append(fact)
            # Publish the hit counter before the index: a concurrent
            # reader (parallel SCC batch probing a shared lower-stratum
            # relation) that sees the index must also see its counter.
            self._index_hits.setdefault(positions, 0)
            self._indexes[positions] = index
        else:
            self._index_hits[positions] = self._index_hits.get(positions, 0) + 1
        return index

    def scan(self) -> Set[FactTuple]:
        """The tuples, for full-scan iteration (no copy)."""
        return self.tuples

    def fact_set(self) -> Set[FactTuple]:
        """The tuples as a set, for existence checks (no copy)."""
        return self.tuples

    # ------------------------------------------------------------------
    # Columnar image (interned ids; see repro.engine.columnar)
    # ------------------------------------------------------------------

    def _sync_lock(self):
        """The lock excluding concurrent columnar drains, if any.

        Every mutation of the lazily-built columnar structures (the
        pending-row drain, watermark extension of columns, row set and
        int indexes, the tuple-side ``_flush``) runs under the shared
        dictionary's re-entrant lock.  Copy-like operations hold it too
        so they observe the structures at one pinned watermark instead
        of mid-drain.  Without a dictionary there are no columnar
        structures and nothing to exclude.
        """
        dictionary = self.dictionary
        return _NO_LOCK if dictionary is None else dictionary._lock

    def ensure_columns(self) -> Optional[List[array]]:
        """The per-attribute id columns, interned up to the current log.

        Returns ``None`` without an attached dictionary (or for a
        nullary relation, which has no columns to store) — the columnar
        executor treats that as "fall back to the tuple path".  The
        already-interned prefix is never re-read: extension starts at
        the column watermark, so a fixpoint that checks every round
        pays O(delta), not O(relation).  Extension runs under the
        dictionary's re-entrant lock: concurrent readers of a *shared*
        (non-growing) relation may race to columnize it first, and
        in-place array appends must not interleave.
        """
        dictionary = self.dictionary
        if dictionary is None or self.arity == 0:
            return None
        if self._pending_rows:
            # Drain the row buffer in one bulk transpose.  Under the
            # dictionary lock: a relation finished growing may be read
            # by concurrent higher-stratum components, and the first
            # reader must drain alone.
            with dictionary._lock:
                buffered = self._pending_rows
                if buffered:
                    cols = self._cols
                    for col, values in zip(cols, zip(*buffered)):
                        col.extend(values)
                    self._pending_rows = []
            return self._cols
        cols = self._cols
        if self._pending_n:
            # Pending rows exist only columnar-side: the columns are by
            # definition complete (and strictly ahead of the log).
            return cols
        n = len(self._logrows)
        if cols is not None and len(cols[0]) == n:
            return cols
        with dictionary._lock:
            cols = self._cols
            if cols is None:
                cols = [array("q") for _ in range(self.arity)]
            m = len(cols[0])
            if m < n:
                intern = dictionary.intern
                log = self._logrows
                for i in range(m, n):
                    for col, term in zip(cols, log[i]):
                        col.append(intern(term))
            if self._cols is None:
                self._cols = cols
        return cols

    def col_set(self) -> Optional[Set[RowTuple]]:
        """The facts as a set of interned rows (watermark-extended)."""
        rows = self._colset
        if rows is not None and self._colset_n == len(self._logrows) + self._pending_n:
            # Fully synced (append_rows keeps it so): no column read,
            # so a buffered head relation stays un-transposed.
            return rows
        cols = self.ensure_columns()
        if cols is None:
            return None
        n = len(cols[0])
        rows = self._colset
        if rows is None:
            rows = set(zip(*cols))
            self._colset = rows
            self._colset_n = n
        elif self._colset_n < n:
            # Extension mutates the published set in place; under the
            # sync lock (with a watermark re-check) so racing readers of
            # a shared relation never interleave their updates with a
            # third reader iterating the set.
            with self._sync_lock():
                if self._colset_n < n:
                    start = self._colset_n
                    rows.update(zip(*(col[start:] for col in cols)))
                    self._colset_n = n
        return rows

    def col_index(self, positions: Tuple[int, ...]) -> Optional[Dict]:
        """Int-keyed hash index on ``positions`` over the columns.

        Maps the interned projection — a bare id for a single-position
        index, an id tuple otherwise — to the list of row positions
        with that projection (``lookup`` by row keeps the probe loop on
        array indexing instead of materializing row tuples).  Persistent
        and watermark-extended like the tuple indexes, so repeated
        full-relation probes in a fixpoint stay O(delta) per round.
        A first build is published atomically (racing readers of a
        shared relation each build a private table and one wins);
        watermark extension mutates the published table in place, under
        the sync lock with a re-check so two racing readers of a shared
        relation cannot both append the same row positions.
        """
        cols = self.ensure_columns()
        if cols is None:
            return None
        n = len(cols[0])
        entry = self._col_indexes.get(positions)
        if entry is not None and entry[1] == n:
            return entry[0]
        if entry is None:
            index: Dict = {}
            self._fill_col_index(index, cols, positions, 0, n)
            self._col_indexes[positions] = (index, n)
            return index
        with self._sync_lock():
            index, m = self._col_indexes[positions]
            if m < n:
                self._fill_col_index(index, cols, positions, m, n)
                self._col_indexes[positions] = (index, n)
        return index

    @staticmethod
    def _fill_col_index(
        index: Dict, cols: List[array], positions: Tuple[int, ...], m: int, n: int
    ) -> None:
        """Append row positions ``m:n`` of ``cols`` into an int index."""
        if len(positions) == 1:
            col = cols[positions[0]]
            for i in range(m, n):
                bucket = index.get(col[i])
                if bucket is None:
                    index[col[i]] = [i]
                else:
                    bucket.append(i)
        else:
            pcols = [cols[p] for p in positions]
            for i in range(m, n):
                key = tuple(col[i] for col in pcols)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [i]
                else:
                    bucket.append(i)

    def add_row(self, fact: FactTuple, row: RowTuple) -> None:
        """Append a fact known to be novel, with its interned row.

        The columnar round-end add: the caller already deduplicated
        ``row`` against :meth:`col_set`, so this skips the membership
        test and keeps every synced columnar structure (columns, row
        set, int indexes) at their watermark without re-scanning.
        Columns are aligned first — interleaved plain :meth:`add`
        calls may have grown the log past them.
        """
        if self._pending_n:
            self._flush()
        cols = self.ensure_columns()
        position = len(self._logrows)
        self._tuples.add(fact)
        self._logrows.append(fact)
        for positions, index in self._indexes.items():
            key = tuple(fact[i] for i in positions)
            index.setdefault(key, []).append(fact)
        if cols is None:
            return
        for col, value in zip(cols, row):
            col.append(value)
        if self._colset is not None and self._colset_n == position:
            self._colset.add(row)
            self._colset_n = position + 1
        for positions, (index, watermark) in self._col_indexes.items():
            if watermark != position:
                continue
            key = row[positions[0]] if len(positions) == 1 else tuple(
                row[p] for p in positions
            )
            index.setdefault(key, []).append(position)
            self._col_indexes[positions] = (index, position + 1)

    def append_rows(
        self, rows: List[RowTuple], rowset: Optional[Set[RowTuple]] = None
    ) -> None:
        """Bulk-append novel interned rows, columnar-side only.

        The round-end absorption of the columnar fixpoint: the caller
        already deduplicated ``rows`` against :meth:`col_set`, so the
        columns, the row set, and synced int indexes advance in one
        pass — and **nothing is decoded**.  The term-tuple mirror is
        deferred: the rows are counted in ``_pending_n`` and
        materialized by :meth:`_flush` if and when the tuple world is
        next read.  Requires an attached dictionary and arity > 0 (the
        caller's capability check guarantees both).

        ``rowset``, when given, must hold exactly the same rows as a
        set; the row-set update then runs set-to-set and reuses the
        hashes already stored in its entries instead of rehashing
        every tuple.
        """
        if not rows:
            return
        buffered = self._pending_rows
        if not buffered and (
            self._cols is None
            or (not self._pending_n and len(self._cols[0]) != len(self._logrows))
        ):
            # First bulk append, or columns lagging the log: sync them
            # once so buffered rows always continue a complete prefix.
            self.ensure_columns()
        position = len(self._cols[0]) + len(buffered)
        if self._colset is not None and self._colset_n == position:
            self._colset.update(rows if rowset is None else rowset)
            self._colset_n = position + len(rows)
        for positions, (index, watermark) in self._col_indexes.items():
            if watermark != position:
                continue
            if len(positions) == 1:
                p = positions[0]
                for i, row in enumerate(rows, position):
                    index.setdefault(row[p], []).append(i)
            else:
                for i, row in enumerate(rows, position):
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(i)
            self._col_indexes[positions] = (index, position + len(rows))
        buffered.extend(rows)
        self._last_rows = (position, position + len(rows), rows)
        self._pending_n += len(rows)

    def distinct_count(self, positions: Tuple[int, ...]) -> Optional[int]:
        """Distinct keys in the index on ``positions``, if one exists.

        Never builds an index: statistics stay free.  Falls back to
        counts carried over by :meth:`copy` when the live index was
        dropped; returns ``None`` when nothing is known.
        """
        # Interning is a bijection, so an int-keyed index has exactly
        # as many distinct keys as the tuple index on the same
        # positions: the cost planner sees identical statistics in
        # both modes.  With pending (un-decoded) rows the col index is
        # the fresher of the two, so it takes precedence there.
        entry = self._col_indexes.get(positions)
        if self._pending_n and entry is not None:
            return len(entry[0])
        index = self._indexes.get(positions)
        if index is not None:
            return len(index)
        if entry is not None:
            return len(entry[0])
        return self._carried_distinct.get(positions)

    def statistics(self) -> RelationStatistics:
        """A snapshot of cardinality plus per-index distinct-key counts.

        Built on :meth:`_distinct_snapshot`, which iterates over a
        point-in-time copy of the index table: under parallel SCC
        evaluation another component may lazily build an index on a
        shared lower-stratum relation while this one reads statistics,
        and a live ``dict`` iteration would raise.
        """
        return RelationStatistics(len(self), self._distinct_snapshot())

    def snapshot(self) -> "Relation":
        """A compact, self-contained copy: facts plus statistics, no indexes.

        This is the wire form of a relation — what the process
        execution backend ships to a worker.  The log (and with it the
        tuple set and insertion order) is copied; every live index is
        reduced to its distinct-key count and carried as a statistic,
        so a cost planner on the far side plans from the same
        cardinality estimates without paying to rebuild (or transfer)
        any bucket table.

        The copy runs under the sync lock, which pins the row watermark
        for its duration: a concurrent reader may be draining the
        pending-row buffer or extending the columns in place
        (:meth:`ensure_columns`), and an unlocked copy could capture a
        partially-buffered slab — some columns already extended, others
        not, or a log inconsistent with ``_pending_n``.
        """
        with self._sync_lock():
            if self._pending_rows:
                self.ensure_columns()
            dup = Relation(self.name, self.arity, self.dictionary)
            dup._logrows = list(self._logrows)
            dup._tuples = set(self._logrows)
            dup._pending_n = self._pending_n
            dup._carried_distinct = self._distinct_snapshot()
            cols = self._cols
            if cols is not None:
                dup._cols = [col[:] for col in cols]
        return dup

    def _distinct_snapshot(self) -> Dict[Tuple[int, ...], int]:
        """Carried + live distinct-key counts (the fresher family wins).

        Synced tuple and col indexes report identical counts (interning
        is a bijection); while rows are pending the tuple indexes lag,
        so the col counts take precedence then.
        """
        distinct = dict(self._carried_distinct)
        col_entries = list(self._col_indexes.items())
        tuple_entries = list(self._indexes.items())
        if not self._pending_n:
            for positions, entry in col_entries:
                distinct[positions] = len(entry[0])
            for positions, index in tuple_entries:
                distinct[positions] = len(index)
        else:
            for positions, index in tuple_entries:
                distinct[positions] = len(index)
            for positions, entry in col_entries:
                distinct[positions] = len(entry[0])
        return distinct

    def __getstate__(self):
        # Pickle the compact snapshot form: the log determines the tuple
        # set (add() appends only novel facts), and indexes travel as
        # distinct-key counts only.  Workers rebuild indexes lazily on
        # first probe, exactly like a fresh relation.  A fully
        # columnized relation ships its id columns plus the dictionary
        # instead of the tuple log — the pickle memo serializes the
        # shared dictionary once per payload, and decoding shares one
        # term object per distinct value instead of one per occurrence.
        # Like snapshot(), the sync lock pins the watermark so a
        # concurrent columnar drain cannot tear the captured state.
        with self._sync_lock():
            if self._pending_rows:
                self.ensure_columns()
            cols = self._cols
            if (
                cols is not None
                and self.dictionary is not None
                and len(cols[0]) == len(self._logrows) + self._pending_n
            ):
                return (
                    self.name,
                    self.arity,
                    None,
                    self._distinct_snapshot(),
                    self.dictionary,
                    [col[:] for col in cols],
                )
            # No complete columnar image.  Pending rows only ever exist
            # columnar-side, so here the log is the complete story.
            return (
                self.name,
                self.arity,
                tuple(self._logrows),
                self._distinct_snapshot(),
                self.dictionary,
                None,
            )

    def __setstate__(self, state) -> None:
        name, arity, log, distinct, dictionary, cols = state
        self.name = name
        self.arity = arity
        self.dictionary = dictionary
        self._indexes = {}
        self._index_hits = {}
        self._carried_distinct = dict(distinct)
        self._colset = None
        self._colset_n = 0
        self._col_indexes = {}
        self._last_rows = None
        self._pending_rows = []
        if log is None:
            # Columns-only wire form: leave every row pending and let
            # the receiver decode lazily — a worker that stays columnar
            # never materializes a single term tuple.
            self._logrows = []
            self._tuples = set()
            self._pending_n = len(cols[0]) if cols else 0
            self._cols = list(cols)
        else:
            self._logrows = list(log)
            self._tuples = set(self._logrows)
            self._pending_n = 0
            self._cols = None

    def remove_facts(self, facts: Iterable[FactTuple]) -> int:
        """Remove ``facts``; returns how many were actually present.

        The deletion hook for incremental view maintenance (DRed's
        over-delete/prune step).  The insertion log is compacted to the
        survivors in their original order, so subsequent semi-naive
        maintenance passes keep slicing valid :meth:`view` windows.
        Live indexes are *repaired*, not dropped: only the buckets the
        doomed facts project into are filtered, so the per-deletion
        cost scales with the deletion (times the bucket sizes), never
        with the relation — churny maintenance keeps its hot indexes.

        Must not be called while an evaluation holds views over this
        relation: view bounds are log offsets and compaction moves them.
        """
        doomed = {fact for fact in facts if fact in self.tuples}
        if not doomed:
            return 0
        self._tuples -= doomed
        old_log = self._logrows
        self._logrows = [fact for fact in old_log if fact not in doomed]
        cols = self._cols
        if cols is not None:
            # Compact the columns in step with the log: the columnized
            # prefix keeps its surviving rows in order (they precede
            # any surviving un-columnized suffix), so row i of the new
            # columns still describes the new log's row i.  Row-position
            # structures are dropped wholesale — compaction shifts the
            # positions they point at.
            covered = len(cols[0])
            keep = [
                i for i in range(covered) if old_log[i] not in doomed
            ]
            self._cols = [
                array("q", (col[i] for i in keep)) for col in cols
            ]
        self._colset = None
        self._colset_n = 0
        self._col_indexes.clear()
        self._last_rows = None
        for positions, index in self._indexes.items():
            touched = {tuple(fact[i] for i in positions) for fact in doomed}
            for key in touched:
                bucket = index.get(key)
                if bucket is None:
                    continue
                survivors = [fact for fact in bucket if fact not in doomed]
                if survivors:
                    index[key] = survivors
                else:
                    del index[key]
        return len(doomed)

    def view(self, start: int, stop: int) -> "RelationView":
        """A read-only view of insertions ``start:stop`` (log order).

        The semi-naive evaluator uses this for delta relations: the
        facts added during one round are a contiguous log slice, so no
        tuples are copied and no throwaway relation is built.
        """
        return RelationView(self, start, stop)

    def copy(self) -> "Relation":
        """An independent copy sharing no mutable state.

        Indexes that were reused at least once since being built are
        carried over (bucket lists are copied, the immutable tuples are
        shared); indexes built but never probed again are dropped, so a
        copy does not pay to maintain them on subsequent inserts.

        Statistics always survive the copy: distinct-key counts of
        dropped indexes are retained as carried estimates, so
        :meth:`Database.copy`-based pipelines plan from warm statistics
        instead of cold defaults.

        Like :meth:`snapshot`, the copy runs under the sync lock so a
        concurrent reader's columnar drain or tuple-side ``_flush``
        cannot tear the captured state — the copy-on-write detach of a
        maintenance batch copies exactly the relations that published
        read views still reference.
        """
        with self._sync_lock():
            if self._pending_rows:
                self.ensure_columns()
            dup = Relation(self.name, self.arity, self.dictionary)
            dup._tuples = set(self._tuples)
            dup._logrows = list(self._logrows)
            dup._pending_n = self._pending_n
            dup._carried_distinct = dict(self._carried_distinct)
            cols = self._cols
            if cols is not None:
                dup._cols = [col[:] for col in cols]
            for positions, entry in list(self._col_indexes.items()):
                # Int indexes are rebuilt lazily on the copy; their
                # distinct-key counts survive as statistics (same counts a
                # tuple index on the same positions would report).
                dup._carried_distinct[positions] = len(entry[0])
            for positions, hits in list(self._index_hits.items()):
                index = self._indexes.get(positions)
                if index is None:
                    continue  # counter published ahead of a mid-build index
                if hits > 0:
                    dup._indexes[positions] = {k: list(v) for k, v in index.items()}
                    dup._index_hits[positions] = hits
                else:
                    dup._carried_distinct[positions] = len(index)
        return dup


class RelationView:
    """A read-only window onto a contiguous slice of a relation's log.

    Supports the same probe interface as :class:`Relation` (``lookup``,
    iteration, membership, ``len``), building its own small hash
    indexes lazily over just the slice.  The view stays valid as the
    parent relation grows: the bounds are fixed at creation.
    """

    __slots__ = (
        "relation",
        "start",
        "stop",
        "_indexes",
        "_set",
        "_col_indexes",
        "_colset",
    )

    def __init__(self, relation: Relation, start: int, stop: int):
        self.relation = relation
        self.start = start
        self.stop = stop
        self._indexes: Optional[
            Dict[Tuple[int, ...], Dict[FactTuple, List[FactTuple]]]
        ] = None
        self._set: Optional[Set[FactTuple]] = None
        self._col_indexes: Optional[Dict[Tuple[int, ...], Dict]] = None
        self._colset: Optional[Set[RowTuple]] = None

    @property
    def dictionary(self) -> Optional[TermDictionary]:
        return self.relation.dictionary

    @property
    def name(self) -> str:
        return self.relation.name

    @property
    def arity(self) -> int:
        return self.relation.arity

    def __len__(self) -> int:
        return self.stop - self.start

    def __iter__(self) -> Iterator[FactTuple]:
        log = self.relation._log
        for i in range(self.start, self.stop):
            yield log[i]

    def __contains__(self, fact: FactTuple) -> bool:
        return fact in self.fact_set()

    def lookup(self, positions: Tuple[int, ...], key: FactTuple) -> Sequence[FactTuple]:
        """Slice-local analogue of :meth:`Relation.lookup`."""
        if not positions:
            return self.relation._log[self.start : self.stop]
        return self.ensure_index(positions).get(key, ())

    def ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[FactTuple, List[FactTuple]]:
        """The slice-local hash index on ``positions`` (built lazily)."""
        if self._indexes is None:
            self._indexes = {}
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            log = self.relation._log
            for i in range(self.start, self.stop):
                fact = log[i]
                k = tuple(fact[j] for j in positions)
                index.setdefault(k, []).append(fact)
            self._indexes[positions] = index
        return index

    def scan(self) -> List[FactTuple]:
        """The slice's tuples, for full-scan iteration."""
        return self.relation._log[self.start : self.stop]

    def fact_set(self) -> Set[FactTuple]:
        """The slice's tuples as a set, for existence checks."""
        if self._set is None:
            self._set = set(self.relation._log[self.start : self.stop])
        return self._set

    def col_index(self, positions: Tuple[int, ...]) -> Optional[Dict]:
        """Slice-local int-keyed index: projection -> parent row positions.

        Row positions are *absolute* parent log offsets, so the probe
        loop reads payload values straight out of the parent columns.
        Per-view throwaway (views live for one fixpoint round), the
        columnar analogue of the slice-local tuple indexes.
        """
        cols = self.relation.ensure_columns()
        if cols is None:
            return None
        if self._col_indexes is None:
            self._col_indexes = {}
        index = self._col_indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                col = cols[positions[0]]
                for i in range(self.start, self.stop):
                    bucket = index.get(col[i])
                    if bucket is None:
                        index[col[i]] = [i]
                    else:
                        bucket.append(i)
            else:
                pcols = [cols[p] for p in positions]
                for i in range(self.start, self.stop):
                    key = tuple(col[i] for col in pcols)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [i]
                    else:
                        bucket.append(i)
            self._col_indexes[positions] = index
        return index

    def col_set(self) -> Optional[Set[RowTuple]]:
        """The slice's facts as a set of interned rows."""
        cols = self.relation.ensure_columns()
        if cols is None:
            return None
        if self._colset is None:
            self._colset = set(
                zip(*(col[self.start : self.stop] for col in cols))
            )
        return self._colset

    def distinct_count(self, positions: Tuple[int, ...]) -> Optional[int]:
        """Distinct keys in the slice-local index on ``positions``, if built."""
        if self._indexes is not None:
            index = self._indexes.get(positions)
            if index is not None:
                return len(index)
        if self._col_indexes is not None:
            index = self._col_indexes.get(positions)
            if index is not None:
                return len(index)
        return None

    def statistics(self) -> RelationStatistics:
        """Cardinality plus distinct-key counts of slice-local indexes.

        Int-keyed and tuple-keyed indexes report identical counts for
        the same positions (interning is a bijection), so the cost
        planner plans the same join orders whichever execution mode
        built them.
        """
        distinct: Dict[Tuple[int, ...], int] = {}
        if self._col_indexes is not None:
            for positions, index in self._col_indexes.items():
                distinct[positions] = len(index)
        if self._indexes is not None:
            for positions, index in self._indexes.items():
                distinct[positions] = len(index)
        return RelationStatistics(self.stop - self.start, distinct)

    def __getstate__(self):
        # Compact wire form: the window bounds plus the parent relation
        # (which itself pickles compactly); slice-local indexes and the
        # memoized fact set are cheap to rebuild and never travel.
        return (self.relation, self.start, self.stop)

    def __setstate__(self, state) -> None:
        self.relation, self.start, self.stop = state
        self._indexes = None
        self._set = None
        self._col_indexes = None
        self._colset = None

    def __repr__(self) -> str:
        return f"RelationView({self.name}/{self.arity}, [{self.start}:{self.stop}])"


class Database:
    """A mapping from predicate signatures to relations.

    Used both for the EDB (loaded from workloads) and for the IDB
    output of the evaluators.  Constants may be given as plain Python
    values; they are wrapped into :class:`Constant` on insertion.
    """

    def __init__(self, dictionary: Optional[TermDictionary] = None):
        self.relations: Dict[Signature, Relation] = {}
        #: Term dictionary shared by this database's relations (or
        #: None until :meth:`ensure_dictionary` — the tuple path never
        #: needs one).  Copies, stages, and snapshots share it **by
        #: reference**: ids are append-only, so an id minted before
        #: the share keeps meaning the same term in every descendant.
        self.dictionary = dictionary

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def ensure_dictionary(self) -> TermDictionary:
        """Attach a term dictionary to this database and its relations.

        Adopts a dictionary already carried by one of the relations
        (the process backend ships relations with their dictionary and
        the worker-side database starts without one) before minting a
        fresh one.  Relations attached to a *different* dictionary are
        left alone — the columnar executor notices the mismatch and
        falls back to the tuple path for plans touching them.
        """
        if self.dictionary is None:
            for rel in self.relations.values():
                if rel.dictionary is not None:
                    self.dictionary = rel.dictionary
                    break
            else:
                self.dictionary = TermDictionary()
        for rel in self.relations.values():
            if rel.dictionary is None:
                rel.dictionary = self.dictionary
        return self.dictionary

    def relation(self, name: str, arity: int) -> Relation:
        """Get or create the relation for ``(name, arity)``."""
        sig = (name, arity)
        rel = self.relations.get(sig)
        if rel is None:
            rel = Relation(name, arity, self.dictionary)
            self.relations[sig] = rel
        return rel

    def add_fact(self, predicate: str, args: Sequence) -> bool:
        """Insert one fact; plain Python values are wrapped as constants."""
        wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
        for term in wrapped:
            if not term.is_ground():
                raise ValueError(f"fact argument {term} is not ground")
        return self.relation(predicate, len(wrapped)).add(wrapped)

    def add_facts(self, predicate: str, tuples: Iterable[Sequence]) -> int:
        """Bulk insert; returns the number of new facts."""
        added = 0
        for args in tuples:
            if self.add_fact(predicate, args):
                added += 1
        return added

    @classmethod
    def from_dict(cls, facts: Dict[str, Iterable[Sequence]]) -> "Database":
        """Build a database from ``{predicate: [tuple, ...]}``."""
        db = cls()
        for predicate, tuples in facts.items():
            db.add_facts(predicate, tuples)
        return db

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, name: str, arity: int) -> Optional[Relation]:
        return self.relations.get((name, arity))

    def facts(self, name: str, arity: Optional[int] = None) -> Set[FactTuple]:
        """All tuples of a predicate (any arity if unspecified)."""
        result: Set[FactTuple] = set()
        for (rel_name, rel_arity), rel in self.relations.items():
            if rel_name == name and (arity is None or rel_arity == arity):
                result |= rel.tuples
        return result

    def remove_fact(self, predicate: str, args: Sequence) -> bool:
        """Remove one fact; returns True if it was present.

        Plain Python values are wrapped exactly like :meth:`add_fact`,
        so ``remove_fact("e", (1, 2))`` undoes ``add_fact("e", (1, 2))``.
        """
        wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
        rel = self.relations.get((predicate, len(wrapped)))
        if rel is None:
            return False
        return rel.remove_facts((wrapped,)) == 1

    def has_fact(self, predicate: str, args: Sequence) -> bool:
        wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
        rel = self.relations.get((predicate, len(wrapped)))
        return rel is not None and wrapped in rel

    def total_facts(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    def signatures(self) -> List[Signature]:
        return list(self.relations)

    def query(self, goal: Literal) -> Set[Tuple[Term, ...]]:
        """All bindings of ``goal``'s variables against stored facts.

        Returns the set of tuples of values taken by the goal's
        variables, in first-occurrence order.  A ground goal returns
        ``{()}`` if it holds and ``set()`` otherwise.
        """
        from repro.engine.unify import match

        rel = self.relations.get(goal.signature)
        if rel is None:
            return set()
        goal_vars = goal.variables()
        answers: Set[Tuple[Term, ...]] = set()
        for fact in rel:
            bindings = match(goal, fact, {})
            if bindings is not None:
                answers.add(tuple(bindings[v] for v in goal_vars))
        return answers

    # ------------------------------------------------------------------
    # Combination and copying
    # ------------------------------------------------------------------

    def copy(self) -> "Database":
        """An independent copy; per-relation indexes that were reused
        at least once are carried over, never-reused ones are dropped
        (see :meth:`Relation.copy`).  The term dictionary is shared by
        reference — carried exactly once, never re-interned."""
        dup = Database(self.dictionary)
        for sig, rel in self.relations.items():
            dup.relations[sig] = rel.copy()
        return dup

    def pin(self) -> "Database":
        """A frozen read view sharing every relation by reference.

        The MVCC publication step of the concurrent serving layer
        (:mod:`repro.engine.server`): maintenance batches *detach* the
        relations in their dirty closure (copy-on-write, see
        ``IncrementalSession._begin_undo``) instead of mutating them in
        place, so the relation objects a pin captures are never written
        again — pinning is one dict copy of pointers plus the shared
        term dictionary, not a copy of any facts or columns.  Readers
        holding a pinned database see exactly the committed state it
        was taken from; lazily built structures (indexes, column
        drains, tuple flushes) may still materialize under the pin, but
        only with content the pinned watermark already fixed.
        """
        out = Database(self.dictionary)
        out.relations = dict(self.relations)
        return out

    def stage(self, signatures: Iterable[Signature]) -> "Database":
        """A write-isolated view for one evaluation component.

        The named ``signatures`` (the component's write set) are
        private copies; every other relation is shared **by
        reference** and must be treated as read-only for the stage's
        lifetime.  The parallel SCC scheduler gives each component in
        a depth batch its own stage so concurrent components never
        write the same relation, then folds the stages back with
        :meth:`adopt_stage` at the batch barrier.
        """
        out = Database(self.dictionary)
        out.relations = dict(self.relations)
        for sig in signatures:
            rel = self.relations.get(sig)
            out.relations[sig] = (
                rel.copy()
                if rel is not None
                else Relation(*sig, dictionary=self.dictionary)
            )
        return out

    def snapshot(self, signatures: Iterable[Signature]) -> "Database":
        """A self-contained compact database of just ``signatures``.

        The process-backend counterpart of :meth:`stage`: where a stage
        shares non-written relations by reference (fine inside one
        address space), a snapshot holds compact
        :meth:`Relation.snapshot` copies of exactly the named
        signatures — a component's read and write sets — so only the
        facts that component can actually touch cross the process
        boundary.  Missing signatures snapshot as empty relations.
        """
        out = Database(self.dictionary)
        for sig in signatures:
            rel = self.relations.get(sig)
            out.relations[sig] = (
                rel.snapshot()
                if rel is not None
                else Relation(*sig, dictionary=self.dictionary)
            )
        return out

    def restore(self, saved: "Database", signatures: Iterable[Signature]) -> None:
        """Roll the named relations back to their ``saved`` state.

        The undo half of :meth:`snapshot`: the transaction layer
        snapshots a batch's dirty closure before maintenance, and on
        failure restores exactly those signatures by pointer swap.
        Restoration mutates ``self.relations`` in place — the database
        object itself keeps its identity, so live wrappers over it
        (``EdbKeyView``, a session's ``database`` attribute) stay
        valid.  A signature absent from ``saved`` is dropped: it did
        not exist pre-batch.
        """
        for sig in signatures:
            rel = saved.relations.get(sig)
            if rel is not None:
                self.relations[sig] = rel
            else:
                self.relations.pop(sig, None)

    def adopt_stage(
        self, stage: "Database", signatures: Iterable[Signature]
    ) -> None:
        """Fold a component stage back in: adopt its staged relations.

        Only the ``signatures`` staged by :meth:`stage` are taken — the
        component was the sole writer of those relations, so adoption
        is a pointer swap, not a tuple-by-tuple merge.
        """
        for sig in signatures:
            rel = stage.relations.get(sig)
            if rel is not None:
                self.relations[sig] = rel

    def merge(self, other: "Database") -> "Database":
        """A new database holding the union of facts."""
        merged = self.copy()
        for (name, arity), rel in other.relations.items():
            target = merged.relation(name, arity)
            for fact in rel:
                target.add(fact)
        return merged

    def restrict(self, signatures: Iterable[Signature]) -> "Database":
        """A new database containing only the named relations."""
        keep = set(signatures)
        out = Database(self.dictionary)
        for sig, rel in self.relations.items():
            if sig in keep:
                out.relations[sig] = rel.copy()
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {sig: rel.tuples for sig, rel in self.relations.items() if rel.tuples}
        theirs = {sig: rel.tuples for sig, rel in other.relations.items() if rel.tuples}
        return mine == theirs

    def __repr__(self) -> str:
        return f"Database({self.total_facts()} facts, {len(self.relations)} relations)"


def load_program_facts(program, db: Database) -> int:
    """Copy ground fact rules from a program into ``db``.

    The paper treats magic seeds (``m_tbf(5).``) as program rules; the
    evaluators call this so such rules participate as facts.
    Returns the number of facts added.
    """
    added = 0
    for rule in program.rules:
        if rule.is_fact():
            if db.relation(rule.head.predicate, rule.head.arity).add(rule.head.args):
                added += 1
    return added
