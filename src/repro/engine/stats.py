"""Evaluation statistics and engine errors.

Every evaluator returns an :class:`EvalStats` alongside its database.
The two quantities the paper reasons about are:

* ``facts`` — distinct derived facts; bounded by ``n**k`` where ``k``
  is the predicate arity, which is exactly the bound factoring improves
  by reducing ``k`` (Section 1);
* ``inferences`` — successful rule instantiations, including ones that
  rederive a known fact; the per-step cost of semi-naive evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


class NonTerminationError(RuntimeError):
    """Raised when a fixpoint exceeds its iteration or fact budget.

    The Counting transformation applied to programs with left-linear
    rules produces exactly this behaviour (Section 6.4); the error is
    how benchmarks observe "Counting diverges".
    """

    def __init__(self, message: str, iterations: int, facts: int):
        super().__init__(message)
        self.iterations = iterations
        self.facts = facts


@dataclass
class EvalStats:
    """Counters produced by one evaluator run."""

    facts: int = 0
    inferences: int = 0
    iterations: int = 0
    seconds: float = 0.0
    per_predicate: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def record_fact(self, signature: Tuple[str, int]) -> None:
        self.facts += 1
        self.per_predicate[signature] = self.per_predicate.get(signature, 0) + 1

    def merge(self, other: "EvalStats") -> "EvalStats":
        merged = EvalStats(
            facts=self.facts + other.facts,
            inferences=self.inferences + other.inferences,
            iterations=self.iterations + other.iterations,
            seconds=self.seconds + other.seconds,
            per_predicate=dict(self.per_predicate),
        )
        for sig, count in other.per_predicate.items():
            merged.per_predicate[sig] = merged.per_predicate.get(sig, 0) + count
        return merged

    def __str__(self) -> str:
        return (
            f"facts={self.facts} inferences={self.inferences} "
            f"iterations={self.iterations} seconds={self.seconds:.4f}"
        )
