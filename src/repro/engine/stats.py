"""Evaluation statistics and engine errors.

Every evaluator returns an :class:`EvalStats` alongside its database.
The two quantities the paper reasons about are:

* ``facts`` — distinct derived facts; bounded by ``n**k`` where ``k``
  is the predicate arity, which is exactly the bound factoring improves
  by reducing ``k`` (Section 1);
* ``inferences`` — successful rule instantiations, including ones that
  rederive a known fact; the per-step cost of semi-naive evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Cap on recorded (estimated, actual) pairs so long evaluations don't
#: grow the stats object without bound.
MAX_ESTIMATE_SAMPLES = 10_000


class NonTerminationError(RuntimeError):
    """Raised when a fixpoint exceeds its iteration or fact budget.

    The Counting transformation applied to programs with left-linear
    rules produces exactly this behaviour (Section 6.4); the error is
    how benchmarks observe "Counting diverges".
    """

    def __init__(self, message: str, iterations: int, facts: int):
        super().__init__(message)
        self.iterations = iterations
        self.facts = facts

    def __reduce__(self):
        # BaseException's default pickling replays only ``args`` (the
        # message), which would drop the counters and crash on the
        # three-argument constructor; the process execution backend
        # needs the full error to cross back from a worker.
        # ``type(self)`` keeps subclasses (ComponentTimeout) intact.
        return (type(self), (self.args[0], self.iterations, self.facts))


class ComponentTimeout(NonTerminationError):
    """Raised when a component fixpoint exceeds its wall-clock budget.

    The per-component watchdog (``max_seconds`` on the evaluators,
    ``--timeout`` on the CLI, ``REPRO_TIMEOUT`` in the environment)
    turns a runaway fixpoint into this error at the next round
    boundary — inside a maintenance pass that means a clean rollback
    instead of a hang.  Subclasses :class:`NonTerminationError` because
    it is the same phenomenon observed on a different axis: a budget
    (wall clock rather than rounds or facts) exceeded by a divergent
    or pathologically slow component.
    """


class MaintenanceError(RuntimeError):
    """A maintenance batch failed and the session was rolled back.

    Raised by :meth:`repro.engine.incremental.IncrementalSession.apply_batch`
    (and therefore ``insert``/``delete``) after the database, the EDB,
    and the provenance store have been restored to their pre-batch
    state — the session remains exactly a from-scratch evaluation of
    the pre-batch EDB.  ``phase`` names the half of the combined pass
    that failed (``"delete"`` or ``"insert"``); ``__cause__`` carries
    the original failure (:class:`NonTerminationError`,
    :class:`ComponentTimeout`, a worker loss, an injected fault, ...).
    """

    def __init__(self, message: str, phase: str = "?"):
        super().__init__(message)
        self.phase = phase

    def __reduce__(self):
        return (type(self), (self.args[0], self.phase))


@dataclass
class EvalStats:
    """Counters produced by one evaluator run.

    Beyond the paper's two quantities, the compiled-plan engine
    attributes its speedup through three more counters: ``probes``
    (candidate-fetch operations — index lookups, scans, and existence
    checks — the unit of join work), ``plans_compiled`` (distinct
    (rule, override-configuration) pairs compiled), and
    ``plan_cache_hits`` (plan reuses across delta rounds; high hit
    counts mean compilation cost is amortized away).

    The cost-based planner adds two accuracy counters: ``replans``
    (cached plans recompiled because observed cardinalities drifted
    past the invalidation threshold) and ``estimated_vs_actual``
    (per-execution pairs of predicted result rows vs. emissions
    actually observed; :meth:`planner_accuracy` summarizes them).

    The SCC scheduler adds ``scc_count`` (components with rules that
    were actually evaluated), ``scc_parallel_batches`` (topological
    depth batches holding two or more such components — the batches
    where ``jobs > 1`` can overlap work), and
    ``provenance_plan_ratio`` (fraction of inferences that ran through
    compiled plans during a provenance-recording evaluation: 1.0 on
    the plan path, 0.0 on the legacy interpreter path).

    Incremental view maintenance (:mod:`repro.engine.incremental`)
    adds ``incr_rounds`` (delta fixpoint rounds run by maintenance
    passes — insertion propagation, DRed over-deletion, and
    re-derivation all count their rounds here, never in
    ``iterations``) and ``rederived`` (facts DRed over-deleted and
    then restored because an alternate derivation survived).

    Backend fault tolerance adds ``backend_retries`` (depth batches
    re-submitted to the process pool after a
    ``BrokenProcessPool``/worker loss) and ``backend_fallbacks``
    (batches that exhausted their retries and degraded to the serial
    backend).  Both stay zero on healthy runs — the determinism fuzz
    suite relies on that.

    Intra-component partitioning (:mod:`repro.engine.partition`) adds
    ``partition_rounds`` (fixpoint rounds in which at least one delta
    variant actually executed partitioned) and ``partition_skew`` (the
    worst observed ``max/mean`` partition size over all splits — 1.0
    is a perfectly even hash, ``partitions`` means everything landed
    in one bucket).  Rounds sum across components; skew merges by
    maximum, so a barrier absorb reports the worst split anywhere in
    the evaluation.
    """

    facts: int = 0
    inferences: int = 0
    iterations: int = 0
    seconds: float = 0.0
    probes: int = 0
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    replans: int = 0
    scc_count: int = 0
    scc_parallel_batches: int = 0
    scc_batches_shipped: int = 0
    provenance_plan_ratio: float = 0.0
    incr_rounds: int = 0
    rederived: int = 0
    backend_retries: int = 0
    backend_fallbacks: int = 0
    partition_rounds: int = 0
    partition_skew: float = 0.0
    estimated_vs_actual: List[Tuple[float, int]] = field(default_factory=list)
    per_predicate: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def record_fact(self, signature: Tuple[str, int]) -> None:
        self.facts += 1
        self.per_predicate[signature] = self.per_predicate.get(signature, 0) + 1

    def record_facts(self, signature: Tuple[str, int], count: int) -> None:
        """Batched :meth:`record_fact` — one call per round-end fresh set."""
        self.facts += count
        self.per_predicate[signature] = (
            self.per_predicate.get(signature, 0) + count
        )

    def record_estimate(self, estimated: float, actual: int) -> None:
        """Log one (predicted rows, observed emissions) sample (capped)."""
        if len(self.estimated_vs_actual) < MAX_ESTIMATE_SAMPLES:
            self.estimated_vs_actual.append((estimated, actual))

    def planner_accuracy(self) -> float:
        """Mean relative error of the cost model, 0.0 when perfect.

        Each sample contributes ``|estimated - actual| / max(actual, 1)``;
        returns 0.0 when no samples were recorded (greedy planner).
        """
        if not self.estimated_vs_actual:
            return 0.0
        total = sum(
            abs(est - actual) / max(actual, 1)
            for est, actual in self.estimated_vs_actual
        )
        return total / len(self.estimated_vs_actual)

    @staticmethod
    def _blend_ratio(a: "EvalStats", b: "EvalStats") -> float:
        """``provenance_plan_ratio`` combined, weighted by inferences."""
        total = a.inferences + b.inferences
        if not total:
            return 0.0
        return (
            a.provenance_plan_ratio * a.inferences
            + b.provenance_plan_ratio * b.inferences
        ) / total

    def merge(self, other: "EvalStats") -> "EvalStats":
        """A new stats object accumulating ``self`` then ``other``.

        Defined through :meth:`absorb` so the two accumulation paths
        can never drift field-by-field — a counter added to the
        dataclass only needs :meth:`absorb` taught once.
        """
        merged = EvalStats()
        merged.absorb(self)
        merged.absorb(other)
        return merged

    def absorb(self, other: "EvalStats") -> None:
        """Accumulate ``other`` in place.

        The SCC scheduler gives every component in a parallel batch a
        private stats object and absorbs them at the batch barrier in
        batch order, so the totals are identical to the sequential
        schedule.
        """
        self.provenance_plan_ratio = EvalStats._blend_ratio(self, other)
        self.facts += other.facts
        self.inferences += other.inferences
        self.iterations += other.iterations
        self.seconds += other.seconds
        self.probes += other.probes
        self.plans_compiled += other.plans_compiled
        self.plan_cache_hits += other.plan_cache_hits
        self.replans += other.replans
        self.scc_count += other.scc_count
        self.scc_parallel_batches += other.scc_parallel_batches
        self.scc_batches_shipped += other.scc_batches_shipped
        self.incr_rounds += other.incr_rounds
        self.rederived += other.rederived
        self.backend_retries += other.backend_retries
        self.backend_fallbacks += other.backend_fallbacks
        self.partition_rounds += other.partition_rounds
        if other.partition_skew > self.partition_skew:
            self.partition_skew = other.partition_skew
        room = MAX_ESTIMATE_SAMPLES - len(self.estimated_vs_actual)
        if room > 0:
            self.estimated_vs_actual.extend(other.estimated_vs_actual[:room])
        for sig, count in other.per_predicate.items():
            self.per_predicate[sig] = self.per_predicate.get(sig, 0) + count

    def __str__(self) -> str:
        return (
            f"facts={self.facts} inferences={self.inferences} "
            f"iterations={self.iterations} seconds={self.seconds:.4f} "
            f"probes={self.probes} plans={self.plans_compiled} "
            f"(+{self.plan_cache_hits} cached, {self.replans} replans) "
            f"sccs={self.scc_count}"
        )
