"""Columnar batch execution: σ/π/⋈ over whole delta slices at once.

The compiled-plan executor (:meth:`repro.engine.plan.RulePlan.execute`)
is tuple-at-a-time: one recursive descent per partial binding, one
Python-level ``Term.__hash__`` per probe key, one slot list per call.
This module executes the *same* plan batch-at-a-time over the interned
columnar image (:meth:`~repro.engine.database.Relation.ensure_columns`):
the working set is a list of **rows** — tuples of interned ids, one
entry per bound slot, in slot order — and each step transforms the
whole list in one pass.  Scans zip column slices directly, probes are
int-keyed ``dict.get`` against persistent
:meth:`~repro.engine.database.Relation.col_index` tables, existence
checks are int-row membership in
:meth:`~repro.engine.database.Relation.col_set`, and the head projects
rows with an ``itemgetter``.  Nothing is decoded until a derived fact
turns out to be *new*.

**Counter parity is by construction.**  :func:`execute_columnar`
mirrors the tuple executor's per-call resolution loop exactly — the
same sequential constant-key probes, the same early returns on missing
or empty sources — and replaces each per-row ``run(i)`` entry with one
``stats.probes += len(rows)`` per resolved step (step 0's input is the
single virtual empty row, matching the single ``run(0)`` call).
Duplicate row multiplicity is preserved, so ``inferences`` agree; join
orders come from the same :class:`~repro.engine.plan.PlanCache`, and
the int-keyed indexes report the same distinct-key statistics as their
tuple twins, so the cost planner plans identically.  The tuple path
stays on as the differential-fuzz oracle (``exec="tuple"``).

**Fallback is always safe.**  A plan the kernel cannot run (compound
templates, unbound-head rules, provenance ``on_match``) or a call
whose sources are not columnar-capable returns ``None`` from a
zero-side-effect capability check *before any counting*, and the
caller runs the plan down the tuple path with identical statistics.
"""

from __future__ import annotations

import os
from operator import itemgetter
from typing import List, Mapping, Optional

from repro.engine.database import Database, RelationView, RowTuple
from repro.engine.plan import (
    H_SLOT,
    K_SLOT,
    K_TEMPLATE,
    O_MATCH,
    O_STORE,
    RulePlan,
)

#: Environment variable consulted when no explicit ``exec=`` is given.
EXEC_ENV = "REPRO_EXEC"
EXEC_MODES = ("tuple", "columnar")
DEFAULT_EXEC = "columnar"


def resolve_exec(exec: Optional[str] = None) -> str:
    """Resolve the execution mode: parameter, else $REPRO_EXEC, else default.

    ``"columnar"`` (the default) runs compiled plans through the batch
    kernel where possible; ``"tuple"`` forces the tuple-at-a-time
    oracle everywhere.  Raises ``ValueError`` on anything else.
    """
    source = "exec"
    value = exec
    if value is None:
        value = os.environ.get(EXEC_ENV)
        source = EXEC_ENV
        if value is None:
            return DEFAULT_EXEC
    if value not in EXEC_MODES:
        raise ValueError(
            f"invalid {source}={value!r}; expected one of {', '.join(EXEC_MODES)}"
        )
    return value


def decode_rows(terms, rows) -> List[tuple]:
    """Decode interned rows back to term tuples, column-wise.

    Transposing twice keeps the per-term work inside C-level ``zip``
    and a flat list comprehension instead of a nested generator per
    row — this sits on the round-end absorption path.
    """
    if not rows:
        return []
    return list(zip(*([terms[i] for i in col] for col in zip(*rows))))


#: Per-step spec kinds precompiled by :func:`_compile_kernel`.
S_SCAN, S_GROUND, S_EXISTS, S_BUCKET, S_PROBE = 0, 1, 2, 3, 4


def _compile_kernel(plan: RulePlan):
    """The static columnar spec for ``plan``, or ``False``.

    ``False`` marks a plan the kernel cannot run: a head that is not
    pure constants/slots (range-unrestricted or compound-building), a
    probe key built from a compound template, or a candidate matcher
    that decomposes compounds (``O_MATCH``).  Those shapes need real
    term structure, which interned ids deliberately erase — the opaque
    id of ``f(X)`` cannot be taken apart.  Everything else (scans,
    slot/constant probes, existence checks, slot stores and equality
    checks) works on ids alone.

    An eligible plan compiles to ``(shape, payload, specs)`` — the head
    emitter plus one static spec tuple per step, so the per-call
    resolution loop reads plain tuples instead of re-deriving step
    shape from attributes.  Key parts whose builders are all slots are
    baked in here; parts with constant components stay ``None`` and
    are interned per call (the dictionary is a call-time input).
    """
    if not plan.head_fast:
        return False
    for step in plan.steps:
        for tag, _ in step.key_builders or ():
            if tag == K_TEMPLATE:
                return False
        for _, tag, _ in step.post_ops:
            if tag == O_MATCH:
                return False
    specs = []
    for step in plan.steps:
        builders = step.key_builders
        if builders is None:
            post = step.post_ops
            # All positions fresh variables, stored in position order:
            # eligible for the vectorized batch-entry fast path.
            fresh_all = (
                bool(post)
                and len(post) == step.arity
                and all(tag == O_STORE for _, tag, _ in post)
            )
            specs.append((S_SCAN, post, fresh_all))
            continue
        parts = None
        if step.const_key is None and all(tag == K_SLOT for tag, _ in builders):
            parts = tuple((True, payload) for _, payload in builders)
        if step.all_bound:
            if step.const_key is not None:
                specs.append((S_GROUND, step.const_key))
            else:
                specs.append((S_EXISTS, parts, builders))
        elif step.const_key is not None:
            specs.append((S_BUCKET, step.key_positions, step.const_key, step.post_ops))
        else:
            specs.append(
                (
                    S_PROBE,
                    step.key_positions,
                    parts,
                    builders,
                    step.single_slot_key,
                    step.single_store,
                    step.post_ops,
                )
            )
    if plan._head_getter is not None:
        return ("getter", plan._head_getter, tuple(specs))
    # head_fast with no all-slot getter: a mix of constants and slots.
    return ("mixed", plan.head_ops, tuple(specs))


def execute_columnar(
    plan: RulePlan,
    db: Database,
    overrides: Optional[Mapping[int, object]],
    stats=None,
) -> Optional[List[RowTuple]]:
    """Run ``plan`` batch-at-a-time; the interned head rows, in order.

    Returns ``None`` — with **no** side effects, counters included —
    when this call cannot run columnar (ineligible plan, no database
    dictionary, a source on a different dictionary, a nullary source):
    the caller must then fall back to ``plan.execute``.  Otherwise
    returns the emitted head rows (duplicates preserved — the caller
    counts ``inferences`` from the length), updating ``stats.probes``
    exactly as the tuple executor would have.
    """
    kernel = plan._columnar
    if kernel is None:
        kernel = _compile_kernel(plan)
        plan._columnar = kernel
    if kernel is False:
        return None
    dictionary = db.dictionary
    if dictionary is None:
        return None

    steps = plan.steps
    # Pure capability pass: resolve every step's source exactly like the
    # executor will, but touch nothing.  A missing source is *capable*
    # (both paths early-return identically); an incompatible one is not.
    sources = []
    for step in steps:
        rel = None
        if step.role is not None and overrides is not None:
            rel = overrides.get(step.role)
        if rel is None:
            rel = db.get(step.name, step.arity)
        if rel is not None and (
            step.arity == 0
            or getattr(rel, "dictionary", None) is not dictionary
        ):
            return None
        sources.append(rel)

    intern = dictionary.intern
    counting = stats is not None
    specs = kernel[2]

    # Per-step resolution, mirroring RulePlan.execute:
    # (_SCAN, cols, lo, hi, post, fresh_all) | (_ROWS, row_tuples) |
    # (_BUCKET, cols, row_indexes, post) |
    # (_PROBE, cols, index, key_parts, single_slot, single_store, post) |
    # (_EXISTS, row_set, key_parts) | (_PASS,)
    _SCAN, _BUCKET, _PROBE, _EXISTS, _PASS, _ROWS = 0, 1, 2, 3, 4, 5
    resolved: List[tuple] = []
    virgin = True  # no step before this one narrowed the batch
    for spec, rel in zip(specs, sources):
        if rel is None:
            return []
        if len(rel) == 0:
            return []
        kind = spec[0]
        if kind == S_SCAN:
            _, post, fresh_all = spec
            if type(rel) is RelationView:
                parent = rel.relation
                lo, hi = rel.start, rel.stop
                if fresh_all and virgin:
                    last = parent._last_rows
                    if last is not None and last[0] == lo and last[1] == hi:
                        # Batch-entry delta scan over exactly the span
                        # of the last bulk append: reuse those row
                        # tuples verbatim, no column read at all.
                        resolved.append((_ROWS, last[2]))
                        virgin = False
                        continue
                cols = parent.ensure_columns()
            else:
                cols = rel.ensure_columns()
                lo, hi = 0, len(cols[0])
            resolved.append((_SCAN, cols, lo, hi, post, fresh_all))
            virgin = False
        elif kind == S_PROBE:
            _, key_positions, parts, builders, single_slot, single_store, post = spec
            if type(rel) is RelationView:
                cols = rel.relation.ensure_columns()
            else:
                cols = rel.ensure_columns()
            if parts is None:
                parts = tuple(
                    (tag == K_SLOT, payload if tag == K_SLOT else intern(payload))
                    for tag, payload in builders
                )
            resolved.append(
                (
                    _PROBE,
                    cols,
                    rel.col_index(key_positions),
                    parts,
                    single_slot,
                    single_store,
                    post,
                )
            )
            virgin = False
        elif kind == S_GROUND:
            # Ground literal: its truth is fixed for the whole run.
            if counting:
                stats.probes += 1
            key = tuple(intern(term) for term in spec[1])
            if key not in rel.col_set():
                return []
            resolved.append((_PASS,))
        elif kind == S_EXISTS:
            _, parts, builders = spec
            if parts is None:
                parts = tuple(
                    (tag == K_SLOT, payload if tag == K_SLOT else intern(payload))
                    for tag, payload in builders
                )
            resolved.append((_EXISTS, rel.col_set(), parts))
            virgin = False
        else:  # S_BUCKET: constant-only filter, one bucket for the run.
            _, key_positions, const_key, post = spec
            if counting:
                stats.probes += 1
            if len(key_positions) == 1:
                key = intern(const_key[0])
            else:
                key = tuple(intern(term) for term in const_key)
            bucket = rel.col_index(key_positions).get(key)
            if bucket is None:
                return []
            if type(rel) is RelationView:
                cols = rel.relation.ensure_columns()
            else:
                cols = rel.ensure_columns()
            resolved.append((_BUCKET, cols, bucket, post))
            virgin = False

    # The batch loop.  ``rows`` holds one tuple of interned slot values
    # per surviving partial binding; slot ids are allocated in step
    # order, so slot i is always index i of the row and appending a
    # store keeps the layout aligned.
    rows: List[RowTuple] = [()]
    for st in resolved:
        kind = st[0]
        if kind == _PASS:
            continue
        if counting:
            # One tuple-mode run(i) entry per partial row reaching the
            # step; an emptied batch adds 0, like the pruned recursion.
            stats.probes += len(rows)
        if not rows:
            continue
        if kind == _PROBE:
            _, cols, index, parts, single_slot, single_store, post = st
            get = index.get
            out: List[RowTuple] = []
            if single_slot is not None:
                if single_store is not None:
                    # The hot hash-join loop: one slot key, one stored
                    # column — a flat comprehension keeps every probe,
                    # concat, and append at C level.
                    col = cols[single_store[0]]
                    empty: tuple = ()
                    rows = [
                        row + (col[i],)
                        for row in rows
                        for i in get(row[single_slot], empty)
                    ]
                    continue
                for row in rows:
                    bucket = get(row[single_slot])
                    if bucket is None:
                        continue
                    _filter_bucket(cols, bucket, row, post, out)
                rows = out
                continue
            for row in rows:
                key = tuple(
                    row[payload] if is_slot else payload
                    for is_slot, payload in parts
                )
                bucket = get(key)
                if bucket is None:
                    continue
                if single_store is not None:
                    col = cols[single_store[0]]
                    for i in bucket:
                        out.append(row + (col[i],))
                else:
                    _filter_bucket(cols, bucket, row, post, out)
            rows = out
        elif kind == _ROWS:
            # Cached batch entry: by construction the working set is
            # still the single virtual empty row.
            rows = st[1]
        elif kind == _SCAN:
            _, cols, lo, hi, post, fresh_all = st
            if not post:
                # No free and no checked positions: pure multiplicity.
                rows = [row for row in rows for _ in range(lo, hi)]
                continue
            if fresh_all and len(rows) == 1 and not rows[0]:
                # Vectorized first step: all positions are fresh
                # variables, so the batch is the column slices zipped.
                ordered = [cols[pos] for pos, _, _ in post]
                if lo or hi != len(cols[0]):
                    rows = list(zip(*(col[lo:hi] for col in ordered)))
                else:
                    rows = list(zip(*ordered))
                continue
            out = []
            for row in rows:
                _filter_bucket(cols, range(lo, hi), row, post, out)
            rows = out
        elif kind == _BUCKET:
            _, cols, bucket, post = st
            if not post:
                rows = [row for row in rows for _ in bucket]
                continue
            out = []
            for row in rows:
                _filter_bucket(cols, bucket, row, post, out)
            rows = out
        else:  # _EXISTS
            _, row_set, parts = st
            rows = [
                row
                for row in rows
                if tuple(
                    row[payload] if is_slot else payload
                    for is_slot, payload in parts
                )
                in row_set
            ]

    if not rows:
        return rows
    shape, payload, _ = kernel
    if shape == "getter":
        return list(map(payload, rows))
    head_parts = tuple(
        (tag == H_SLOT, slot_or_term if tag == H_SLOT else intern(slot_or_term))
        for tag, slot_or_term in payload
    )
    return [
        tuple(row[p] if is_slot else p for is_slot, p in head_parts)
        for row in rows
    ]


def _filter_bucket(cols, indexes, row, post, out) -> None:
    """Extend ``out`` with ``row`` ⋈ each candidate row in ``indexes``.

    The general per-candidate path: apply the step's slot stores and
    equality checks position by position.  Slot ids equal row indexes
    (slots are allocated in step order), so a check against a slot
    stored earlier — in a previous step or earlier in this one — is a
    plain tuple read.
    """
    for i in indexes:
        vals = row
        ok = True
        for pos, tag, slot in post:
            value = cols[pos][i]
            if tag == O_STORE:
                vals = vals + (value,)
            elif vals[slot] != value:
                ok = False
                break
        if ok:
            out.append(vals)
