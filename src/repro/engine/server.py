"""Concurrent serving: snapshot-isolated readers under a single writer.

:class:`DatalogServer` turns an
:class:`~repro.engine.incremental.IncrementalSession` into a served
system: one writer at a time applies journaled ``apply_batch``
maintenance while any number of reader threads answer queries against
*pinned read views*.

The MVCC scheme rests on two properties of the layers below:

* **Copy-on-write batches.**  ``apply_batch`` detaches its dirty
  closure — every relation the batch could touch is swapped for a copy
  and only the copies are mutated (see
  ``IncrementalSession._begin_undo``).  The relation objects any
  already-published view references are therefore frozen forever.
* **Atomic publication.**  After a batch commits, the server pins the
  session's database and EDB (:meth:`~repro.engine.database.Database.pin`
  — a dict of relation pointers sharing the term dictionary and column
  slabs by reference, not a copy) into a fresh :class:`ReadView` and
  installs it with a single reference assignment.  Readers grab the
  current view once per query and answer entirely from it.

Together these give *prefix consistency*: every answer a reader ever
produces equals a from-scratch evaluation of some prefix of the
committed batch history — never a mid-batch state, and never a batch
that failed and rolled back (`MaintenanceError`, injected faults,
timeouts), because failed batches leave the previous view installed.

Writes follow the journal's write-ahead contract (normalize, then
append, then apply; a rolled-back batch appends a compensating abort
record), so a SIGKILL at any moment — including while readers are
mid-query — recovers via :func:`repro.engine.journal.recover_session`
to exactly the committed prefix.

:class:`SocketFront` exposes the server over a line-oriented TCP
protocol reusing the ``+``/``-``/``?``/``stats`` serve grammar; see
``docs/serve.md`` for the framing.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional, Set, Tuple, Union

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_query
from repro.datalog.terms import Constant
from repro.engine.database import Database
from repro.engine.stats import EvalStats


@dataclass
class ServerStats:
    """Serving-side counters, in the :class:`EvalStats` house style.

    * ``batches_committed`` / ``batches_aborted`` — maintenance batches
      that published a new view vs. batches that failed, rolled back,
      and left the previous view installed (their journal records are
      compensated by abort markers);
    * ``queries_served`` — reads answered from a pinned view
      (:meth:`DatalogServer.query` and :meth:`DatalogServer.query_goal`
      both count);
    * ``checkpoints`` — journal checkpoints appended by the
      ``checkpoint_every`` policy;
    * ``version`` — the current view's version: the number of
      committed batches since the server started (version 0 is the
      initial materialization).
    """

    batches_committed: int = 0
    batches_aborted: int = 0
    queries_served: int = 0
    checkpoints: int = 0
    version: int = 0

    def __str__(self) -> str:
        return (
            f"batches={self.batches_committed} committed "
            f"{self.batches_aborted} aborted, "
            f"queries={self.queries_served}, "
            f"checkpoints={self.checkpoints}, "
            f"version={self.version}"
        )


class ReadView:
    """One published, immutable snapshot of the served state.

    ``database`` is the pinned materialized database (EDB + IDB) and
    ``edb`` the pinned base facts, both sharing their relations by
    reference with the frozen pre-publication objects.  A view never
    changes once constructed; readers may keep one across many queries
    for a transaction-like consistent read sequence.
    """

    __slots__ = ("version", "database", "edb", "published_at")

    def __init__(
        self, version: int, database: Database, edb: Database, published_at: float
    ):
        self.version = version
        self.database = database
        self.edb = edb
        self.published_at = published_at

    def query(self, query: Union[str, Literal]) -> Set[Tuple]:
        """Bindings of the goal's variables against this view.

        The materialized read: answers come straight from the pinned
        database, unwrapped to plain Python values exactly like
        :meth:`IncrementalSession.query`.
        """
        goal = parse_query(query) if isinstance(query, str) else query
        return {
            tuple(t.value if isinstance(t, Constant) else t for t in row)
            for row in self.database.query(goal)
        }

    def holds(self, query: Union[str, Literal]) -> bool:
        """True when a ground query holds in this view."""
        return bool(self.query(query))

    def age(self) -> float:
        """Seconds since this view was published."""
        return time.monotonic() - self.published_at

    def __repr__(self) -> str:
        return f"ReadView(version={self.version}, age={self.age():.3f}s)"


class DatalogServer:
    """A concurrent front over one :class:`IncrementalSession`.

    Writes (:meth:`apply_batch`, :meth:`insert`, :meth:`delete`) are
    serialized by an internal lock — the session below is single-writer
    by design — and follow the write-ahead order when a journal is
    attached: normalize, append to the journal, apply, then atomically
    publish the new :class:`ReadView`; a failed batch appends a
    compensating abort record and publishes nothing.  Reads
    (:meth:`query`, :meth:`query_goal`, :meth:`view`) never block on
    the writer and never observe mid-batch state.

    ``checkpoint_every`` appends a journal checkpoint after every that
    many committed batches, exactly like the serve REPL's policy.
    """

    def __init__(
        self,
        session,
        *,
        journal=None,
        checkpoint_every: Optional[int] = None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"invalid checkpoint_every={checkpoint_every!r}; "
                f"expected a positive integer"
            )
        self.session = session
        self.journal = journal
        self.checkpoint_every = checkpoint_every
        self._since_checkpoint = 0
        self._write_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.stats = ServerStats()
        # Thread-local goal-directed compilers: each reader thread owns
        # one, so compiled-entry caches are mutated by a single thread
        # only; staleness is tracked against the view version.
        self._tls = threading.local()
        self._view = self._pin(0)

    # -- publication ---------------------------------------------------

    def _pin(self, version: int) -> ReadView:
        """Pin the session's current committed state as a view."""
        session = self.session
        return ReadView(
            version,
            session.database.pin(),
            session.edb.pin(),
            time.monotonic(),
        )

    def view(self) -> ReadView:
        """The currently published view (grab once, read many)."""
        return self._view

    def snapshot_age(self) -> float:
        """Seconds since the last view publication."""
        return self._view.age()

    # -- the write path ------------------------------------------------

    def insert(self, facts) -> EvalStats:
        """Insert EDB facts as one journaled, atomic batch."""
        return self.apply_batch(inserts=facts)

    def delete(self, facts) -> EvalStats:
        """Delete EDB facts as one journaled, atomic batch."""
        return self.apply_batch(deletes=facts)

    def apply_batch(self, inserts=None, deletes=None) -> EvalStats:
        """One atomic, journaled, published update batch.

        Input is normalized (parsed and arity-checked) *before* the
        journal append, so malformed requests never enter the log; the
        append happens *before* the apply (write-ahead order), so a
        crash mid-apply replays the batch on recovery.  On success the
        new state is published atomically; on failure the batch's
        journal record is compensated with an abort marker, the
        previous view stays installed, and the error propagates.
        """
        with self._write_lock:
            session = self.session
            ins = session._normalize(inserts) if inserts is not None else {}
            dels = session._normalize(deletes) if deletes is not None else {}
            ins_pairs = [
                (sig[0], row) for sig, rows in ins.items() for row in rows
            ]
            del_pairs = [
                (sig[0], row) for sig, rows in dels.items() for row in rows
            ]
            if self.journal is not None:
                self.journal.append_batch(ins_pairs, del_pairs)
            try:
                stats = session.apply_batch(
                    inserts=ins_pairs or None, deletes=del_pairs or None
                )
            except Exception:
                if self.journal is not None:
                    # The batch rolled back; compensate its journal
                    # record so recovery does not replay it.
                    self.journal.append_abort()
                with self._stats_lock:
                    self.stats.batches_aborted += 1
                raise
            version = self.stats.version + 1
            self._view = self._pin(version)
            with self._stats_lock:
                self.stats.batches_committed += 1
                self.stats.version = version
            if self.journal is not None and self.checkpoint_every:
                self._since_checkpoint += 1
                if self._since_checkpoint >= self.checkpoint_every:
                    self.journal.append_checkpoint(session.edb)
                    self._since_checkpoint = 0
                    with self._stats_lock:
                        self.stats.checkpoints += 1
            return stats

    # -- the read path -------------------------------------------------

    def _count_query(self) -> None:
        with self._stats_lock:
            self.stats.queries_served += 1

    def query(self, query: Union[str, Literal]) -> Set[Tuple]:
        """Materialized read against the current pinned view."""
        answers = self._view.query(query)
        self._count_query()
        return answers

    def holds(self, query: Union[str, Literal]) -> bool:
        """True when a ground query holds in the current pinned view."""
        return bool(self.query(query))

    def query_goal(self, query: Union[str, Literal], explain: bool = False):
        """Goal-directed read against the current pinned view's EDB.

        The compiled serving path of
        :meth:`IncrementalSession.query_goal`, made safe for N reader
        threads: each thread owns its own
        :class:`~repro.engine.query.QueryCompiler` (compiled entries
        cached per query form, invalidated when the published version
        moves), and evaluation runs against the pinned EDB — a query
        racing a maintenance batch answers from the last committed
        state, never a mid-batch one.
        """
        view = self._view
        state = self._tls
        compiler = getattr(state, "compiler", None)
        if compiler is None:
            compiler = self._make_compiler()
            state.compiler = compiler
            state.version = view.version
        elif state.version != view.version:
            compiler.note_edb_change()
            state.version = view.version
        goal = parse_query(query) if isinstance(query, str) else query
        answer = compiler.ask(goal, view.edb)
        self._count_query()
        if explain:
            return answer
        return answer.values()

    def _make_compiler(self):
        from repro.engine.query import QueryCompiler

        session = self.session
        return QueryCompiler(
            session.program,
            planner=session.planner,
            jobs=session.jobs,
            backend=session.backend,
            use_plans=session.use_plans,
            exec=session.exec_mode,
            partitions=session.partitions,
            max_iterations=session.max_iterations,
            max_facts=session.max_facts,
            max_seconds=session.max_seconds,
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the attached journal, if any."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "DatalogServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"DatalogServer({self.stats})"


# ----------------------------------------------------------------------
# The socket front
# ----------------------------------------------------------------------

def handle_line(server: DatalogServer, line: str, *, provenance: bool = False):
    """Execute one serve-grammar command against a server.

    Returns ``(payload_lines, status_line, quit)``.  The grammar is the
    serve REPL's: ``+ facts.`` insert, ``- facts.`` delete, ``? query``
    ask (goal-directed, against the pinned EDB), ``explain fact``,
    ``stats``, ``quit``/``exit``; blank lines and ``#`` comments are
    no-ops.  Errors — including a rolled-back batch — report as an
    ``error:`` status and leave the served state untouched.
    """
    line = line.strip()
    payload = []
    if not line or line.startswith("#"):
        return payload, "ok", False
    try:
        if line.startswith("+"):
            stats = server.insert(line[1:].strip())
            return payload, (
                f"ok +{stats.facts} facts ({stats.incr_rounds} rounds, "
                f"{stats.seconds * 1000:.1f} ms)"
            ), False
        if line.startswith("-"):
            stats = server.delete(line[1:].strip())
            return payload, (
                f"ok deleted ({stats.incr_rounds} rounds, "
                f"{stats.rederived} rederived, "
                f"{stats.seconds * 1000:.1f} ms)"
            ), False
        if line.startswith("?"):
            answers = server.query_goal(line[1:].strip())
            for row in sorted(answers, key=str):
                payload.append(
                    "\t".join(str(value) for value in row) if row else "true"
                )
            return payload, f"ok {len(answers)} answers", False
        if line.startswith("explain "):
            if not provenance:
                raise ValueError("explain needs --provenance")
            tree = server.session.explain(line[len("explain "):].strip())
            payload.extend(tree.render().splitlines())
            return payload, "ok", False
        if line == "stats":
            payload.append(str(server.session.stats))
            payload.append(
                f"{server.stats}, snapshot_age="
                f"{server.snapshot_age() * 1000:.1f} ms"
            )
            return payload, "ok", False
        if line in ("quit", "exit"):
            return payload, "ok bye", True
        raise ValueError(f"unknown command {line!r}")
    except (ValueError, KeyError, RuntimeError) as exc:
        return payload, f"error: {exc}", False


class SocketFront:
    """A line-oriented TCP front over a :class:`DatalogServer`.

    Protocol: the client sends one command per line (the serve
    grammar); the server responds with zero or more payload lines, each
    prefixed ``"= "``, followed by exactly one status line starting
    ``ok`` or ``error:``.  ``quit`` answers ``ok bye`` and closes that
    connection only.

    ``workers`` bounds the number of concurrently served connections —
    the reader pool.  Updates arriving on any connection funnel through
    the server's single-writer lock, so the journal order is the apply
    order regardless of how many clients race.
    """

    def __init__(
        self,
        server: DatalogServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        provenance: bool = False,
    ):
        if workers < 1:
            raise ValueError(
                f"invalid workers={workers!r}; expected a positive integer"
            )
        self.server = server
        self.host = host
        self.port = port
        self.workers = workers
        self.provenance = provenance
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._slots = threading.BoundedSemaphore(workers)
        self._shutdown = threading.Event()
        self._handlers = []

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting; returns ``(host, port)``.

        With ``port=0`` the OS picks a free port — the returned pair is
        the actual listening address.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen()
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                break  # listener closed by shutdown()
            self._slots.acquire()
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            self._handlers.append(handler)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("r", encoding="utf-8") as reader:
                for line in reader:
                    payload, status, quitting = handle_line(
                        self.server, line, provenance=self.provenance
                    )
                    out = "".join(f"= {p}\n" for p in payload) + status + "\n"
                    conn.sendall(out.encode("utf-8"))
                    if quitting:
                        break
        except (OSError, ValueError):
            pass  # client went away mid-write; nothing to clean up
        finally:
            self._slots.release()

    def wait(self) -> None:
        """Block until :meth:`shutdown` (the CLI's serve-forever)."""
        while not self._shutdown.wait(timeout=0.5):
            pass

    def shutdown(self) -> None:
        """Stop accepting and wake :meth:`wait`; live handlers drain."""
        self._shutdown.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "SocketFront":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
