"""A write-ahead journal for incremental maintenance batches.

:class:`~repro.engine.incremental.IncrementalSession` makes each batch
atomic in memory; this module makes the *sequence* of batches durable.
A :class:`Journal` is an append-only file of checksummed,
length-prefixed records.  ``repro serve --journal PATH`` appends every
batch (fsync'd) **before** applying it — classic write-ahead logging —
so a crash at any instant loses at most work the client was never told
succeeded, and :func:`recover_session` rebuilds the exact maintained
database (derivations included) by replaying the committed batches over
the last checkpoint.

File format
-----------

A four-byte magic header (``RJN1``), then records::

    kind (1 byte) | payload length (4 bytes, big-endian)
                  | CRC-32 of payload (4 bytes, big-endian) | payload

Kinds: ``B`` — a batch, payload pickles ``(inserts, deletes)`` as lists
of ``(predicate, args)`` pairs; ``A`` — an abort, empty payload,
compensating the immediately preceding batch (it was rolled back, do
not replay it); ``C`` — a checkpoint, payload pickles a compact
snapshot of the *EDB* at that point (the IDB is a deterministic
function of it, so checkpoints stay small and recovery re-derives).

Replay (:func:`replay_journal`) walks the records, starts from the last
checkpoint, drops aborted batches, and **stops at the first record that
fails validation** — a short header, a length running past the file, a
CRC mismatch — treating it as the torn tail of a crashed write.  The
torn tail is by construction uncommitted (the journal fsyncs before the
session applies, so an incomplete record means the apply never
started); :func:`recover_session` truncates it.  Recovery is therefore
deterministic: the fuzz suite holds recovered state bit-identical to a
run that never crashed.

A batch whose record *is* committed but whose apply failed pre-crash
(and whose abort record was lost with the crash) re-fails
deterministically during replay — :func:`recover_session` catches the
:class:`~repro.engine.stats.MaintenanceError` and moves on, matching
the rolled-back state the client observed.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine import faults
from repro.engine.database import Database
from repro.engine.faults import FaultInjected
from repro.engine.incremental import IncrementalSession
from repro.engine.stats import MaintenanceError

#: File magic: "Repro JourNal", format 1.
MAGIC = b"RJN1"

KIND_BATCH = b"B"
KIND_ABORT = b"A"
KIND_CHECKPOINT = b"C"
_KINDS = (KIND_BATCH, KIND_ABORT, KIND_CHECKPOINT)

_HEADER = struct.Struct(">II")  # payload length, CRC-32

#: One batch as journaled: (inserts, deletes), each a list of
#: (predicate, args) pairs in the session's ``Updates`` pair shape.
BatchPairs = Tuple[list, list]


class JournalError(RuntimeError):
    """The journal file is not usable (bad magic, unreadable, ...).

    Raised for damage that is *not* a torn tail: a torn tail is an
    expected crash artifact that replay handles by stopping early,
    while a wrong magic number or an unreadable file means this is not
    (or no longer is) a journal and continuing would corrupt data.
    """


@dataclass
class JournalReplay:
    """The committed content of a journal, ready to re-apply.

    ``checkpoint`` is the EDB snapshot of the last checkpoint record
    (``None`` when the journal has none); ``batches`` the committed,
    unaborted batches after it, in append order; ``torn`` whether the
    file ends in an invalid record; ``tail_offset`` the byte offset of
    that torn tail (== file size when the journal is clean), the safe
    truncation point.
    """

    checkpoint: Optional[Database] = None
    batches: List[BatchPairs] = field(default_factory=list)
    torn: bool = False
    tail_offset: int = 0


class Journal:
    """An append-only, fsync'd record log at ``path``.

    Appending validates an existing file's magic (creating the file
    writes it); each append goes through the ``journal`` fault site, so
    the fault harness can tear or kill a write at a deterministic
    point.  ``fsync=False`` trades durability for speed (used by the
    journal-overhead benchmark to separate buffering from disk cost).

    Appends are serialized by an internal lock: the concurrent serving
    layer funnels every write through one writer lock anyway, but the
    journal must not rely on its callers for record integrity — two
    racing appends interleaving their bytes would corrupt the log
    past any torn-tail repair.
    """

    def __init__(self, path, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self._append_lock = threading.Lock()
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        if not fresh:
            with open(self.path, "rb") as fh:
                magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise JournalError(
                    f"{self.path} is not a repro journal "
                    f"(bad magic {magic!r}, expected {MAGIC!r})"
                )
        self._fh = open(self.path, "ab")
        if fresh:
            self._fh.write(MAGIC)
            self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def _append(self, kind: bytes, payload: bytes) -> None:
        record = (
            kind
            + _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            + payload
        )
        with self._append_lock:
            cut = faults.fire("journal", torn_length=len(record))
            if cut is not None:
                # A torn write: persist only a prefix, then fail exactly
                # as a crash mid-write would have.
                self._fh.write(record[:cut])
                self._sync()
                raise FaultInjected(
                    f"injected torn journal write ({cut}/{len(record)} bytes)"
                )
            self._fh.write(record)
            self._sync()

    def append_batch(self, inserts: list, deletes: list) -> None:
        """Journal one batch (must precede applying it — WAL order)."""
        self._append(
            KIND_BATCH, pickle.dumps((list(inserts), list(deletes)))
        )

    def append_abort(self) -> None:
        """Compensate the preceding batch: it failed and rolled back."""
        self._append(KIND_ABORT, b"")

    def append_checkpoint(self, edb: Database) -> None:
        """Journal a compact EDB snapshot; replay restarts from here."""
        snap = edb.snapshot(sorted(edb.relations))
        self._append(KIND_CHECKPOINT, pickle.dumps(snap))

    def replay(self) -> JournalReplay:
        """Parse this journal's committed content (see module docs)."""
        self._fh.flush()
        return replay_journal(self.path)

    def truncate_tail(self, offset: int) -> None:
        """Drop a torn tail: cut the file to ``offset`` bytes.

        Safe alongside the append handle — it is opened with
        ``O_APPEND``, so later writes land at the (new) end regardless
        of any cached position.
        """
        with open(self.path, "r+b") as fh:
            fh.truncate(offset)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_journal(path) -> JournalReplay:
    """Walk a journal file; return its committed, unaborted content.

    Validation failures mid-file stop the walk and mark the replay
    ``torn`` at that record's offset — the torn-tail contract — while a
    missing or wrong magic header raises :class:`JournalError` (the
    file was never a journal, there is nothing safe to replay).
    """
    with open(str(path), "rb") as fh:
        data = fh.read()
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        raise JournalError(
            f"{path} is not a repro journal (missing {MAGIC!r} header)"
        )
    out = JournalReplay()
    pos = len(MAGIC)
    start = pos
    while pos < len(data):
        start = pos
        if pos + 1 + _HEADER.size > len(data):
            break  # torn: header itself is incomplete
        kind = data[pos : pos + 1]
        length, crc = _HEADER.unpack_from(data, pos + 1)
        pos += 1 + _HEADER.size
        if kind not in _KINDS or pos + length > len(data):
            pos = start
            break
        payload = data[pos : pos + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            pos = start
            break
        try:
            if kind == KIND_BATCH:
                inserts, deletes = pickle.loads(payload)
                out.batches.append((inserts, deletes))
            elif kind == KIND_ABORT:
                if out.batches:
                    out.batches.pop()
            else:
                out.checkpoint = pickle.loads(payload)
                out.batches.clear()
        except Exception:
            pos = start
            break
        pos += length
        start = pos
    out.torn = start < len(data)
    out.tail_offset = start
    return out


def recover_session(
    program,
    path,
    edb: Optional[Database] = None,
    *,
    fsync: bool = True,
    **session_kwargs,
) -> Tuple[IncrementalSession, Journal, int]:
    """Rebuild a session from a journal; return it ready to serve.

    The base EDB is the journal's last checkpoint when it has one,
    else ``edb`` (the same base facts the original run started from).
    Committed batches replay through :meth:`IncrementalSession.apply_batch`
    — a batch that deterministically re-fails (its abort record died
    with the crash) is skipped, reproducing the rollback the original
    run performed.  A torn tail is truncated, and the returned
    :class:`Journal` is open for appending, so the caller continues
    exactly where the crashed process left off.

    Returns ``(session, journal, replayed)`` with ``replayed`` the
    number of batches successfully re-applied.
    """
    replay = replay_journal(path)
    base = replay.checkpoint if replay.checkpoint is not None else edb
    session = IncrementalSession(program, base, **session_kwargs)
    replayed = 0
    for inserts, deletes in replay.batches:
        try:
            session.apply_batch(
                inserts=inserts or None, deletes=deletes or None
            )
            replayed += 1
        except MaintenanceError:
            pass  # the original run rolled this batch back too
    journal = Journal(path, fsync=fsync)
    if replay.torn:
        journal.truncate_tail(replay.tail_offset)
    return session, journal, replayed
