"""Incremental view maintenance: semi-naive deltas and DRed deletion.

The paper's transformations make a *single* fixpoint cheap; a system
serving queries against churning base data must also keep the
materialized IDB correct **without** re-running that fixpoint per
update.  :class:`IncrementalSession` owns a materialized
:class:`~repro.engine.database.Database` for one program and maintains
every IDB relation under EDB churn:

* **Insertion** reuses the compiled-plan semi-naive machinery: the new
  EDB facts seed the delta log of their relations, and the affected
  strongly connected components (in the same topological order the
  :class:`~repro.engine.scheduler.SCCScheduler` uses) continue their
  fixpoints *forward* from the current state.  The per-round delta
  decomposition generalizes the evaluator's: delta-capable positions
  include changed **external** relations (EDB and lower strata) in the
  first round, then only the component's own relations — each new
  instantiation is enumerated exactly once, at its last new body fact.
* **Deletion** is DRed (delete–rederive, Gupta/Mumick/Subrahmanian):
  first *over-delete* — everything with at least one derivation
  through a deleted fact, propagated component by component through
  the dependency graph against the pre-deletion database — then prune,
  then *re-derive*: facts with an alternate derivation among the
  survivors are restored by one filtered pass per component followed
  by the same forward delta fixpoint, seeded with the restorations.
  Facts still present in the EDB (or asserted as ground program rules)
  are never over-deleted — they carry their own support.

Both paths converge to exactly the least model of the program on the
final EDB — the same fact set ``seminaive_eval`` derives from scratch
— because the least fixpoint is unique; the randomized insert/delete
scripts in ``tests/test_fuzz.py`` hold this as a differential
property across planners, backends, and job counts.

**Provenance mode** (``record_provenance=True``) additionally keeps
one canonical derivation per derived fact, bit-identical to a
from-scratch :func:`~repro.engine.provenance.provenance_eval` on the
final EDB.  Canonical trees are round-structure-dependent (the
recorder keeps the per-first-round minimum), so fact-level deltas
cannot splice them; instead maintenance recomputes at **component
granularity** — a component's output (facts *and* recorded
derivations) is a deterministic function of its input facts alone, so
recomputing exactly the affected components reproduces the
from-scratch trees.  Deletion uses a *support-index fast path*: the
recorded derivations double as a reverse dependency index, and a
component none of whose facts transitively depend (through recorded
derivations) on a deleted fact provably keeps both its facts and its
trees, so it is skipped entirely.  See ``docs/incremental.md`` for
the worked example and the induction behind that skip.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_literal, parse_program, parse_query
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term
from repro.engine.columnar import decode_rows, execute_columnar, resolve_exec
from repro.engine.database import Database, FactTuple, Relation
from repro.engine.joins import (
    candidates,
    instantiate_head,
    join_rule,
    relation_from_tuples,
)
from repro.engine.unify import match, match_term
from repro.engine.partition import make_partition_executor, resolve_partitions
from repro.engine.plan import PlanCache
from repro.engine.provenance import (
    DerivationRecorder,
    DerivationTree,
    EdbKeyView,
    ProvenanceResult,
    provenance_eval,
)
from repro.engine import faults
from repro.engine.scheduler import (
    ComponentRun,
    ComponentTask,
    SCCScheduler,
    resolve_timeout,
)
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import (
    ComponentTimeout,
    EvalStats,
    MaintenanceError,
    NonTerminationError,
)

Signature = Tuple[str, int]
FactKey = Tuple[str, int, FactTuple]

#: Accepted update shapes: a mapping ``{predicate: rows}``, an iterable
#: of ``(predicate, args)`` pairs, or Datalog text of ground facts.
Updates = Union[str, Mapping[str, Iterable[Sequence]], Iterable[Tuple[str, Sequence]]]


def _wrap(args: Sequence) -> FactTuple:
    """Wrap plain Python values as ground constants (like ``add_fact``)."""
    wrapped = tuple(a if isinstance(a, Term) else Constant(a) for a in args)
    for term in wrapped:
        if not term.is_ground():
            raise ValueError(f"update argument {term} is not ground")
    return wrapped


class IncrementalSession:
    """A materialized database maintained under EDB churn.

    ::

        session = IncrementalSession(program, edb)
        session.insert([("e", (7, 8)), ("e", (8, 9))])
        session.delete("e(1, 2).")
        session.query("t(0, Y)")

    ``insert``/``delete`` accept a ``{predicate: rows}`` mapping, an
    iterable of ``(predicate, args)`` pairs, or Datalog text of ground
    facts; each returns the :class:`~repro.engine.stats.EvalStats` of
    that maintenance pass (``incr_rounds`` delta rounds, ``rederived``
    DRed restorations, ``facts`` added).  ``session.stats`` accumulates
    across the initial evaluation and every pass.

    ``planner``/``jobs``/``backend``/``use_plans``/``exec``/
    ``partitions`` mirror
    :func:`~repro.engine.seminaive.seminaive_eval`; the parallel knobs
    apply to the initial materialization (maintenance passes are
    sequential — affected components are usually few), and the planner
    and plan/interpreter choice govern every maintenance join.
    ``partitions > 1`` additionally hash-splits the forward delta of
    each insert-maintenance round through the serial partition
    executor — same emissions in partition order, counted in
    ``partition_rounds``/``partition_skew`` like the evaluators;
    running maintenance partitions in parallel is future work.  For
    any knob combination the maintained database is bit-identical to a
    from-scratch evaluation on the final EDB.

    ``record_provenance=True`` keeps one canonical derivation per
    derived fact (see :meth:`explain`), maintained to stay identical
    to a from-scratch provenance evaluation; it trades the fact-level
    delta paths for component-granular recomputation with a
    support-index fast path on deletion (see the module docstring).

    Every update is **atomic**: :meth:`apply_batch` (which
    ``insert``/``delete`` delegate to) snapshots the batch's dirty
    closure before mutating anything, and any maintenance failure —
    non-termination, a wall-clock timeout (``max_seconds`` /
    ``REPRO_TIMEOUT``), a lost worker, an injected fault — rolls the
    session back to its pre-batch state and raises
    :class:`~repro.engine.stats.MaintenanceError`.
    """

    def __init__(
        self,
        program: Program,
        edb: Optional[Database] = None,
        *,
        planner: Optional[str] = None,
        jobs: Optional[int] = None,
        backend=None,
        use_plans: bool = True,
        exec: Optional[str] = None,
        partitions: Optional[int] = None,
        record_provenance: bool = False,
        max_iterations: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ):
        self.program = program
        self.use_plans = use_plans
        #: Maintenance joins run through the columnar kernel when the
        #: mode (parameter, else ``$REPRO_EXEC``) says so and the plan
        #: is eligible; the tuple executor remains the per-call
        #: fallback, with identical counters either way.
        self.exec_mode = resolve_exec(exec)
        self.record_provenance = record_provenance
        self.max_iterations = max_iterations
        self.max_facts = max_facts
        self.max_seconds = resolve_timeout(max_seconds)
        #: Wall-clock deadline of the maintenance pass in flight (armed
        #: by :meth:`apply_batch`, checked at every delta-round
        #: boundary); ``None`` outside a pass or without a budget.
        self._deadline: Optional[float] = None
        self._edb = edb.copy() if edb is not None else Database()
        self._edb_keys = EdbKeyView(self._edb)
        self._cache: Optional[PlanCache] = None
        self.jobs = jobs
        self.backend = backend
        self.partitions = resolve_partitions(partitions)
        #: Maintenance partitioning stays serial regardless of the
        #: backend: affected deltas are usually small and the serial
        #: executor keeps the counters (and the parity argument)
        #: without any pool lifetime to manage per pass.
        self._partitioner = make_partition_executor(self.partitions, "serial")
        #: Set by :meth:`_run_rule` when a variant actually partitioned;
        #: the per-round loops fold it into ``partition_rounds``.
        self._round_partitioned = False
        self._query_compiler = None

        # Component structure (shared with the evaluators): tasks in
        # topological evaluation order, and the owning task per IDB sig.
        structure = SCCScheduler(
            program, mode="seminaive", use_plans=use_plans,
            planner=planner, jobs=1, backend="serial",
        )
        self.planner = structure.planner
        if use_plans:
            self._cache = PlanCache(self.planner or "greedy")
        self._tasks: List[ComponentTask] = structure.tasks
        self._sig_task: Dict[Signature, ComponentTask] = {
            sig: task for task in self._tasks for sig in task.sigs
        }
        #: Ground program rules are permanent support: their facts are
        #: present regardless of the EDB and are never over-deleted.
        self._program_fact_keys: Dict[FactKey, Rule] = {
            (r.head.predicate, r.head.arity, r.head.args): r
            for r in program.rules
            if r.is_fact()
        }

        self.stats = EvalStats()
        if record_provenance:
            result = provenance_eval(
                self.program, self._edb,
                max_iterations=max_iterations, max_facts=max_facts,
                max_seconds=self.max_seconds,
                use_plans=use_plans, planner=planner, jobs=jobs, backend=backend,
            )
            self.database = result.database
            self._edb_keys = result.edb_keys
            self._derivations: Optional[
                Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]]
            ] = result.derivations
            self.stats.absorb(result.stats)
            # Support indexes over the recorded derivations: keys per
            # head sig, and the reverse (fact -> recorded dependents).
            self._deriv_by_sig: Dict[Signature, Set[FactKey]] = {}
            self._rdeps: Dict[FactKey, Set[FactKey]] = {}
            for key, (_, body_keys) in self._derivations.items():
                self._deriv_by_sig.setdefault((key[0], key[1]), set()).add(key)
                for bk in body_keys:
                    self._rdeps.setdefault(bk, set()).add(key)
        else:
            self.database, init_stats = seminaive_eval(
                self.program, self._edb,
                max_iterations=max_iterations, max_facts=max_facts,
                max_seconds=self.max_seconds,
                use_plans=use_plans, planner=planner, jobs=jobs, backend=backend,
                exec=self.exec_mode, partitions=self.partitions,
            )
            self._derivations = None
            self.stats.absorb(init_stats)
        if self.exec_mode == "columnar" and not record_provenance:
            # Maintenance passes intern through the same dictionary the
            # initial evaluation used (minted here if the program was
            # trivial enough that no component ran).
            self.database.ensure_dictionary()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def edb(self) -> Database:
        """The maintained base facts (mutate only through the session)."""
        return self._edb

    def query(self, query: Union[str, Literal]) -> Set[Tuple]:
        """Bindings of the goal's variables against the materialized IDB.

        Answers come straight from the maintained database — no
        fixpoint runs.  Returns unwrapped Python values like
        :meth:`repro.session.DeductiveDatabase.ask`.
        """
        goal = parse_query(query) if isinstance(query, str) else query
        return {
            tuple(t.value if isinstance(t, Constant) else t for t in row)
            for row in self.database.query(goal)
        }

    def holds(self, query: Union[str, Literal]) -> bool:
        """True when a ground query holds in the materialized database."""
        return bool(self.query(query))

    @property
    def query_compiler(self):
        """The goal-directed compiler over this session's program.

        Built lazily on the first :meth:`query_goal`; compiled entries
        are cached per query form and invalidated by
        :meth:`apply_batch` (see
        :meth:`repro.engine.query.QueryCompiler.note_edb_change`).
        """
        if self._query_compiler is None:
            from repro.engine.query import QueryCompiler

            self._query_compiler = QueryCompiler(
                self.program,
                planner=self.planner,
                jobs=self.jobs,
                backend=self.backend,
                use_plans=self.use_plans,
                exec=self.exec_mode,
                partitions=self.partitions,
                max_iterations=self.max_iterations,
                max_facts=self.max_facts,
                max_seconds=self.max_seconds,
            )
        return self._query_compiler

    def query_goal(self, query: Union[str, Literal], explain: bool = False):
        """Goal-directed answers evaluated against the maintained EDB.

        Unlike :meth:`query` (a read of the materialized database),
        this compiles the goal through adornment + Magic Sets (or
        counting/factoring where certified) and evaluates the rewritten
        program with compiled plans against the *EDB only* — the
        serving path for point queries that must not depend on (or pay
        for) full materialization.  Read-only: neither the database nor
        the journal is touched.  Returns unwrapped value tuples like
        :meth:`query`; with ``explain=True`` returns the full
        :class:`~repro.engine.query.QueryAnswer` (strategy, certifying
        theorem, statistics, cache hit).
        """
        goal = parse_query(query) if isinstance(query, str) else query
        answer = self.query_compiler.ask(goal, self._edb)
        if explain:
            return answer
        return answer.values()

    def explain(self, fact: Union[str, Literal]) -> DerivationTree:
        """A derivation tree for a ground fact (provenance mode only)."""
        if self._derivations is None:
            raise RuntimeError(
                "explain() needs IncrementalSession(record_provenance=True)"
            )
        goal = parse_literal(fact) if isinstance(fact, str) else fact
        return ProvenanceResult(
            self.database, self.stats, self._derivations, self._edb_keys
        ).explain(goal)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _normalize(self, facts: Updates) -> Dict[Signature, List[FactTuple]]:
        if isinstance(facts, str):
            parsed = parse_program(facts)
            for rule in parsed.rules:
                if not rule.is_fact():
                    raise ValueError(f"updates must be ground facts, got {rule}")
            pairs: Iterable[Tuple[str, Sequence]] = [
                (r.head.predicate, r.head.args) for r in parsed.rules
            ]
        elif isinstance(facts, Mapping):
            pairs = [
                (pred, row) for pred, rows in facts.items() for row in rows
            ]
        else:
            pairs = list(facts)
        # Imported here: validate -> analysis -> engine at module scope.
        from repro.datalog.validate import reserved_name_reason

        out: Dict[Signature, List[FactTuple]] = {}
        for pred, args in pairs:
            reason = reserved_name_reason(pred)
            if reason is not None:
                raise ValueError(
                    f"cannot update predicate {pred!r}: it {reason}"
                )
            wrapped = _wrap(args)
            out.setdefault((pred, len(wrapped)), []).append(wrapped)
        return out

    def insert(self, facts: Updates) -> EvalStats:
        """Add EDB facts; maintain every affected IDB relation forward.

        Equivalent to ``apply_batch(inserts=facts)`` — one atomic
        maintenance pass.  Returns this pass's stats: ``facts`` counts
        everything the pass added to the materialized database (new EDB
        facts and the consequences derived from them), ``incr_rounds``
        the delta fixpoint rounds it took.  Facts already present are
        no-ops.
        """
        return self.apply_batch(inserts=facts)

    def delete(self, facts: Updates) -> EvalStats:
        """Retract EDB facts; maintain the IDB by delete–rederive.

        Equivalent to ``apply_batch(deletes=facts)`` — one atomic
        maintenance pass.  Facts not currently in the EDB are ignored.
        Returns this pass's stats: ``rederived`` counts over-deleted
        facts restored because an alternate derivation survived;
        ``facts`` counts the restorations added back during
        re-derivation.
        """
        return self.apply_batch(deletes=facts)

    def apply_batch(
        self,
        inserts: Optional[Updates] = None,
        deletes: Optional[Updates] = None,
    ) -> EvalStats:
        """One atomic maintenance pass applying deletes, then inserts.

        The batch is all-or-nothing.  Before any mutation, the batch's
        *dirty closure* — the updated EDB signatures plus every
        component transitively reachable from them — is *detached*:
        each relation in it is swapped for a copy-on-write
        :meth:`Relation.copy` and the batch mutates only the copies
        (the cost scales with the affected cone, not the database; the
        frozen originals are what concurrently pinned read views keep
        seeing), along with the provenance store in provenance mode.
        Any failure during
        maintenance — :class:`NonTerminationError`, a
        :class:`ComponentTimeout` from the wall-clock watchdog, a
        process-backend worker loss, an injected fault — rolls the
        database, the EDB, and the provenance store back to their
        pre-batch state and raises :class:`MaintenanceError` (with the
        original failure as ``__cause__`` and the failing half in
        ``.phase``); session statistics are untouched by a failed
        batch.  After a rollback the session remains exactly a
        from-scratch evaluation of the pre-batch EDB.

        Deletes run first (DRed), then inserts continue the semi-naive
        fixpoints forward, so one batch costs one combined pass instead
        of PR 5's one pass per call.  A fact named in both halves ends
        up present (delete-then-insert order).  Returns the combined
        pass statistics, which :attr:`stats` also absorbs on success.
        """
        ins = self._normalize(inserts) if inserts is not None else {}
        dels = self._normalize(deletes) if deletes is not None else {}
        start = time.perf_counter()
        pass_stats = EvalStats()
        undo = self._begin_undo(set(ins) | set(dels))
        if self.max_seconds is not None:
            self._deadline = time.monotonic() + self.max_seconds
        phase = "delete"
        try:
            self._apply_deletes(dels, pass_stats)
            phase = "insert"
            self._apply_inserts(ins, pass_stats)
        except BaseException as exc:
            self._rollback(undo)
            if isinstance(exc, Exception):
                raise MaintenanceError(
                    f"maintenance batch failed during its {phase} phase "
                    f"and was rolled back: {exc}",
                    phase=phase,
                ) from exc
            raise  # KeyboardInterrupt and friends propagate unwrapped
        finally:
            self._deadline = None
        pass_stats.seconds = time.perf_counter() - start
        self.stats.absorb(pass_stats)
        if self._query_compiler is not None:
            # A failed batch rolled back to the pre-batch EDB, so only a
            # successful one invalidates cached goal-directed compiles.
            self._query_compiler.note_edb_change()
        return pass_stats

    def _apply_deletes(
        self, updates: Dict[Signature, List[FactTuple]], pass_stats: EvalStats
    ) -> None:
        """The delete half of a batch (caller holds the undo snapshot)."""
        removed: Dict[Signature, List[FactTuple]] = {}
        for sig, rows in updates.items():
            base = self._edb.get(*sig)
            for fact in rows:
                if base is not None and base.remove_facts((fact,)):
                    removed.setdefault(sig, []).append(fact)
        if removed:
            if self._derivations is None:
                self._dred(removed, pass_stats)
            else:
                self._recompute_after_delete(removed, pass_stats)

    def _apply_inserts(
        self, updates: Dict[Signature, List[FactTuple]], pass_stats: EvalStats
    ) -> None:
        """The insert half of a batch (caller holds the undo snapshot)."""
        changed_start: Dict[Signature, int] = {}
        base_new_sigs: Set[Signature] = set()
        for sig, rows in updates.items():
            base = self._edb.relation(*sig)
            rel = self.database.relation(*sig)
            before = len(rel)
            for fact in rows:
                if base.add(fact) and self._derivations is not None:
                    # The fact is an EDB leaf now; a stale derivation
                    # entry would diverge from a from-scratch record.
                    base_new_sigs.add(sig)
                    self._drop_derivation((sig[0], sig[1], fact))
                if rel.add(fact):
                    pass_stats.record_fact(sig)
            if len(rel) > before:
                changed_start[sig] = before
        if not changed_start and not base_new_sigs:
            return
        if self._derivations is None:
            self._propagate_insertions(changed_start, pass_stats)
        else:
            self._recompute_affected(
                set(changed_start), base_new_sigs, pass_stats
            )

    # ------------------------------------------------------------------
    # Undo snapshots and rollback
    # ------------------------------------------------------------------

    def _dirty_closure(self, changed: Set[Signature]) -> Set[Signature]:
        """Every signature a batch over ``changed`` could mutate.

        The updated signatures themselves plus the signatures of every
        component that (transitively) reads one — a single pass over
        the tasks suffices because they are in topological order, so a
        downstream reader is visited after the component that dirtied
        its input.
        """
        dirty = set(changed)
        for task in self._tasks:
            if task.sigs & dirty or any(
                lit.signature in dirty
                for rule in task.rules
                for lit in rule.body
            ):
                dirty |= task.sigs
        return dirty

    def _begin_undo(self, changed: Set[Signature]):
        """Detach everything a batch over ``changed`` could touch.

        Copy-on-write: every relation in the dirty closure is replaced
        by an independent :meth:`Relation.copy` and the batch mutates
        only the copies, so the *original* objects stay frozen forever.
        That buys two things at the same cost the old compact undo
        snapshots paid:

        - rollback is a pointer swap back to the untouched originals
          (which keep their hot indexes — the old restore path lost
          them), and
        - a read view pinned before the batch (``Database.pin()`` in
          the concurrent server) never observes mid-batch or
          rolled-back state, because the relations it references are
          exactly the frozen originals.
        """
        dirty = self._dirty_closure(changed)
        db_saved = self._detach(self.database, dirty)
        edb_saved = self._detach(self._edb, changed)
        prov = None
        if self._derivations is not None:
            prov = (
                dict(self._derivations),
                {sig: set(keys) for sig, keys in self._deriv_by_sig.items()},
                {key: set(deps) for key, deps in self._rdeps.items()},
            )
        return (db_saved, edb_saved, prov)

    @staticmethod
    def _detach(db: Database, sigs: Set[Signature]):
        """Swap the named relations for copies; return the originals.

        A ``None`` value records *absence*: the signature did not exist
        pre-batch, so rollback drops whatever the batch created there.
        """
        saved = {}
        for sig in sigs:
            rel = db.relations.get(sig)
            saved[sig] = rel
            if rel is not None:
                db.relations[sig] = rel.copy()
        return saved

    def _rollback(self, undo) -> None:
        """Restore the pre-batch state captured by :meth:`_begin_undo`.

        The detached originals are swapped back in place on the *same*
        database objects, so live wrappers (``EdbKeyView``, external
        references to ``session.database``) keep working; the batch's
        mutated copies are simply dropped.
        """
        db_saved, edb_saved, prov = undo
        for db, saved in ((self.database, db_saved), (self._edb, edb_saved)):
            for sig, rel in saved.items():
                if rel is not None:
                    db.relations[sig] = rel
                else:
                    db.relations.pop(sig, None)
        if prov is not None:
            self._derivations, self._deriv_by_sig, self._rdeps = prov

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _is_protected(self, sig: Signature, fact: FactTuple) -> bool:
        """Facts with base support are never deleted: EDB or program fact."""
        if (sig[0], sig[1], fact) in self._program_fact_keys:
            return True
        rel = self._edb.get(*sig)
        return rel is not None and fact in rel.tuples

    def _run_rule(
        self,
        rule: Rule,
        roles: Tuple[Tuple[int, str], ...],
        overrides: Dict[int, object],
        emitted: List[FactTuple],
        stats: EvalStats,
        partition: bool = False,
    ) -> None:
        """One rule execution appending head tuples (plans or interpreter).

        This is the single maintenance chokepoint the columnar mode
        routes through: eligible plans run batch-at-a-time and their
        interned rows are decoded back to term tuples (the delta
        bookkeeping above works on terms), with a per-call fallback to
        the tuple executor — counters are identical either way.  With
        ``partition=True`` (the forward delta fixpoint) and
        ``partitions > 1``, the delta is hash-split through the serial
        partition executor first; a decline falls through to the
        single-call paths untouched.
        """
        if self._cache is not None:
            plan = self._cache.plan(
                rule, roles, stats, db=self.database, overrides=overrides
            )
            before = len(emitted)
            columnar = self.exec_mode == "columnar"
            parted = None
            if partition and self._partitioner is not None:
                parted = self._partitioner.run(
                    plan, self.database, overrides, roles[0][0], stats, columnar
                )
            rows = None
            if parted is not None:
                self._round_partitioned = True
                rows = parted
            elif columnar:
                rows = execute_columnar(
                    plan, self.database, overrides or None, stats
                )
            if rows is None:
                plan.execute(
                    self.database, overrides or None, emitted.append, stats
                )
            elif rows:
                if columnar:
                    emitted.extend(
                        decode_rows(self.database.dictionary.terms, rows)
                    )
                else:
                    emitted.extend(rows)
            if plan.estimated_rows is not None:
                stats.record_estimate(plan.estimated_rows, len(emitted) - before)
        else:
            join_rule(
                self.database,
                rule,
                lambda bindings: emitted.append(instantiate_head(rule, bindings)),
                dict(overrides) if overrides else None,
            )

    def _guard_rounds(self, task: ComponentTask, rounds: int) -> None:
        if self.max_iterations is not None and rounds > self.max_iterations:
            raise NonTerminationError(
                f"incremental maintenance of component {sorted(task.sigs)} "
                f"exceeded {self.max_iterations} rounds",
                rounds,
                self.database.total_facts(),
            )
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise ComponentTimeout(
                f"incremental maintenance of component {sorted(task.sigs)} "
                f"exceeded its {self.max_seconds:g}s wall-clock budget",
                rounds,
                self.database.total_facts(),
            )

    def _component_delta_fixpoint(
        self,
        task: ComponentTask,
        external: Dict[Signature, int],
        own_start: Dict[Signature, int],
        stats: EvalStats,
    ) -> None:
        """Continue ``task``'s semi-naive fixpoint from the current state.

        ``external`` maps changed non-component signatures to the log
        offset where their new facts begin (consumed in the first round
        only — external relations do not change while the component
        runs); ``own_start`` maps component signatures to the offset
        where *their* maintenance delta begins (facts appended since
        the last fixpoint — inserted EDB facts or DRed restorations).

        Per rule and per delta-capable body position (one whose
        relation changed), one variant runs with the delta window at
        that position and the **full** relations everywhere else.
        Unlike the evaluator's old/delta split, an instantiation with
        several new body facts is enumerated once per such position —
        but the derived *fact set* is identical (relations are sets),
        and the full relations keep their persistent hash indexes,
        where an ``old`` window would re-index almost the entire
        relation every round to dedupe a usually-tiny delta.
        """
        faults.fire("component")
        db = self.database
        scc_set = task.sigs
        rels = {sig: db.relation(*sig) for sig in scc_set}
        delta_start = {
            sig: own_start.get(sig, len(rels[sig])) for sig in scc_set
        }
        has_internal = any(
            lit.signature in scc_set
            for rule in task.rules
            for lit in rule.body
        )
        ext_views = {}
        for sig, offset in external.items():
            rel = db.relation(*sig)
            ext_views[sig] = rel.view(offset, len(rel))

        first_round = True
        rounds = 0
        while True:
            rounds += 1
            self._guard_rounds(task, rounds)
            stats.incr_rounds += 1
            self._round_partitioned = False
            stop = {sig: len(rels[sig]) for sig in scc_set}
            delta_views = {
                sig: rels[sig].view(delta_start[sig], stop[sig])
                for sig in scc_set
            }
            new: Dict[Signature, Set[FactTuple]] = {sig: set() for sig in scc_set}

            for rule in task.rules:
                head_sig = rule.head.signature
                positions: List[Tuple[int, Signature, bool]] = []
                for i, lit in enumerate(rule.body):
                    s = lit.signature
                    if s in scc_set:
                        positions.append((i, s, True))
                    elif first_round and s in ext_views:
                        positions.append((i, s, False))
                if not first_round:
                    positions = [p for p in positions if p[2]]
                if not positions:
                    continue
                emitted: List[FactTuple] = []
                for pos_j, sig_j, internal_j in positions:
                    delta = (
                        delta_views[sig_j] if internal_j else ext_views[sig_j]
                    )
                    if len(delta) == 0:
                        continue
                    self._run_rule(
                        rule, ((pos_j, "delta"),), {pos_j: delta},
                        emitted, stats, partition=True,
                    )
                if emitted:
                    stats.inferences += len(emitted)
                    new[head_sig] |= set(emitted) - rels[head_sig].tuples

            if self._round_partitioned:
                stats.partition_rounds += 1
            for sig in scc_set:
                delta_start[sig] = stop[sig]
            changed = False
            for sig in scc_set:
                fresh = new[sig]
                if fresh:
                    changed = True
                    rel = rels[sig]
                    for fact in fresh:
                        if rel.add(fact):
                            stats.record_fact(sig)
            first_round = False
            if not changed or not has_internal:
                break

    # ------------------------------------------------------------------
    # Insertion propagation (fact-level deltas)
    # ------------------------------------------------------------------

    def _propagate_insertions(
        self, changed_start: Dict[Signature, int], stats: EvalStats
    ) -> None:
        """Drive affected components forward from the inserted deltas.

        ``changed_start`` maps every changed signature to the log
        offset where its new facts begin; components are visited in
        topological order, and a component that derives nothing new
        adds no signatures, so propagation dies out as early as the
        data allows.
        """
        for task in self._tasks:
            own = {
                sig: changed_start[sig]
                for sig in task.sigs
                if sig in changed_start
            }
            external: Dict[Signature, int] = {}
            for rule in task.rules:
                for lit in rule.body:
                    s = lit.signature
                    if s not in task.sigs and s in changed_start:
                        external[s] = changed_start[s]
            if not own and not external:
                continue
            pre = {sig: len(self.database.relation(*sig)) for sig in task.sigs}
            self._component_delta_fixpoint(task, external, own, stats)
            for sig in task.sigs:
                if len(self.database.relation(*sig)) > pre[sig]:
                    changed_start.setdefault(sig, own.get(sig, pre[sig]))

    # ------------------------------------------------------------------
    # DRed deletion (fact-level deltas)
    # ------------------------------------------------------------------

    def _dred(
        self, removed: Dict[Signature, List[FactTuple]], stats: EvalStats
    ) -> None:
        """Delete–rederive: over-delete, prune, then restore survivors."""
        deleted = self._overdelete(removed, stats)
        if not deleted:
            return
        for sig, doomed in deleted.items():
            rel = self.database.get(*sig)
            if rel is not None:
                rel.remove_facts(doomed)
        self._rederive(deleted, stats)

    def _overdelete(
        self, removed: Dict[Signature, List[FactTuple]], stats: EvalStats
    ) -> Dict[Signature, Set[FactTuple]]:
        """Everything with a derivation through a deleted fact.

        Evaluated against the *pre-deletion* database (nothing is
        pruned yet), component by component in topological order; one
        deletion-delta variant per body occurrence of a deleted
        signature finds every rule instance that consumed at least one
        deleted fact — its head joins the over-estimate unless it has
        base support (still in the EDB, or a ground program rule).
        """
        deleted: Dict[Signature, Set[FactTuple]] = {}
        for sig, facts in removed.items():
            rel = self.database.get(*sig)
            for fact in facts:
                if rel is None or fact not in rel.tuples:
                    continue
                if self._is_protected(sig, fact):
                    continue
                deleted.setdefault(sig, set()).add(fact)
        for task in self._tasks:
            read = {
                lit.signature for rule in task.rules for lit in rule.body
            }
            frontier = {
                s: list(deleted[s]) for s in read if deleted.get(s)
            }
            own_total = sum(
                len(self.database.relation(*sig)) for sig in task.sigs
            )
            rounds = 0
            if frontier:
                faults.fire("component")
            while frontier:
                if self._overdelete_saturated(task, deleted, own_total):
                    break
                rounds += 1
                self._guard_rounds(task, rounds)
                stats.incr_rounds += 1
                delta_rels = {
                    s: relation_from_tuples(
                        s[0], s[1], facts, self.database.dictionary
                    )
                    for s, facts in frontier.items()
                }
                fresh: Dict[Signature, List[FactTuple]] = {}
                for rule in task.rules:
                    head_sig = rule.head.signature
                    head_rel = self.database.get(*head_sig)
                    if head_rel is None:
                        continue
                    doomed_here = deleted.setdefault(head_sig, set())
                    for i, lit in enumerate(rule.body):
                        s = lit.signature
                        if s not in delta_rels:
                            continue
                        emitted: List[FactTuple] = []
                        self._run_rule(
                            rule, ((i, "delta"),), {i: delta_rels[s]},
                            emitted, stats,
                        )
                        stats.inferences += len(emitted)
                        for fact in emitted:
                            if (
                                fact in head_rel.tuples
                                and fact not in doomed_here
                                and not self._is_protected(head_sig, fact)
                            ):
                                doomed_here.add(fact)
                                fresh.setdefault(head_sig, []).append(fact)
                frontier = {
                    s: facts for s, facts in fresh.items() if s in read
                }
        return {sig: facts for sig, facts in deleted.items() if facts}

    #: When more than this fraction of a component is over-deleted,
    #: stop propagating within it (mark everything deletable) and let
    #: re-derivation fall back to a component recompute — DRed's
    #: worst case then costs one affected-component fixpoint instead
    #: of cone-sized delta bookkeeping on top of one.
    SATURATION_RATIO = 0.5

    def _overdelete_saturated(
        self,
        task: ComponentTask,
        deleted: Dict[Signature, Set[FactTuple]],
        own_total: int,
    ) -> bool:
        """Saturate a mostly-deleted component's over-estimate.

        Returns True — and maximizes ``deleted`` for the component's
        signatures (every fact without base support) — once the
        over-estimate passes :data:`SATURATION_RATIO` of the
        component's facts.  The estimate stays a superset of the true
        deletions, so downstream propagation and re-derivation remain
        correct; it just stops being *tracked* fact by fact where a
        recompute is cheaper anyway.
        """
        own_deleted = sum(len(deleted.get(sig, ())) for sig in task.sigs)
        if own_deleted <= self.SATURATION_RATIO * own_total:
            return False
        for sig in task.sigs:
            rel = self.database.get(*sig)
            if rel is None:
                continue
            doomed = deleted.setdefault(sig, set())
            for fact in rel.tuples:
                if fact not in doomed and not self._is_protected(sig, fact):
                    doomed.add(fact)
        return True

    def _rederive(
        self, deleted: Dict[Signature, Set[FactTuple]], stats: EvalStats
    ) -> None:
        """Restore over-deleted facts with surviving alternate derivations.

        Topological again: one filtered pass per affected component —
        each rule runs against the pruned database and only heads from
        the over-estimate are re-admitted — then the forward delta
        fixpoint propagates the restorations (a restored fact may
        support further restorations, in this component and below the
        next ones).  Facts restored downstream need no delta of their
        own beyond this: derivations newly enabled by a restoration
        can only produce facts that were already present or also
        over-deleted, both handled here.
        """
        for task in self._tasks:
            own_deleted = {
                sig: deleted[sig]
                for sig in task.sigs
                if deleted.get(sig)
            }
            if not own_deleted:
                continue
            pre = {
                sig: len(self.database.relation(*sig)) for sig in own_deleted
            }
            candidates_count = sum(len(d) for d in own_deleted.values())
            survivors = sum(
                len(self.database.relation(*sig)) for sig in task.sigs
            )
            if candidates_count > survivors:
                # The majority of the component was over-deleted (the
                # saturation path, or simply heavy churn): a fixpoint
                # from base over the already-maintained lower strata is
                # cheaper than probing every candidate individually.
                self._recompute_component_facts(task, stats)
                for sig, before in pre.items():
                    stats.rederived += max(
                        0, len(self.database.relation(*sig)) - before
                    )
                continue
            stats.incr_rounds += 1
            for sig, doomed in own_deleted.items():
                head_rules = [
                    r for r in task.rules if r.head.signature == sig
                ]
                rel = self.database.relation(*sig)
                for fact in doomed:
                    for rule in head_rules:
                        if self._has_surviving_derivation(rule, fact, stats):
                            if rel.add(fact):
                                stats.record_fact(sig)
                            break
            self._component_delta_fixpoint(task, {}, dict(pre), stats)
            for sig, before in pre.items():
                stats.rederived += len(self.database.relation(*sig)) - before

    def _has_surviving_derivation(
        self, rule: Rule, fact: FactTuple, stats: EvalStats
    ) -> bool:
        """True when ``rule`` derives ``fact`` from the pruned database.

        The candidate's head binds the rule's head variables, so this
        is a *bounded* existence probe (early exit on the first
        witness), not a full rule evaluation — the standard DRed
        re-derivation step, one candidate at a time.
        """
        bindings = match(rule.head, fact, {})
        if bindings is None:
            return False
        body = rule.body

        def satisfiable(index: int, env) -> bool:
            if index == len(body):
                return True
            literal = body[index]
            stats.probes += 1
            for cand in candidates(self.database, literal, env, None):
                nested = dict(env)
                if all(
                    match_term(p, v, nested)
                    for p, v in zip(literal.args, cand)
                ) and satisfiable(index + 1, nested):
                    return True
            return False

        if satisfiable(0, bindings):
            stats.inferences += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Component recomputation (DRed fallback and provenance mode)
    # ------------------------------------------------------------------

    def _reset_component_to_base(self, task: ComponentTask) -> None:
        """Reset the component's relations to EDB + program-fact content."""
        db = self.database
        for sig in task.sigs:
            rel = Relation(*sig, dictionary=db.dictionary)
            base = self._edb.get(*sig)
            if base is not None:
                for fact in base.view(0, len(base)):
                    rel.add(fact)
            db.relations[sig] = rel
        for key, rule in self._program_fact_keys.items():
            sig = (key[0], key[1])
            if sig in task.sigs:
                db.relations[sig].add(key[2])

    def _recompute_component_facts(
        self, task: ComponentTask, stats: EvalStats, recorder=None
    ) -> None:
        """From-base fixpoint of one component over the current lower strata."""
        self._reset_component_to_base(task)
        run = ComponentRun(
            task,
            mode="seminaive",
            use_plans=self.use_plans,
            planner=self.planner,
            max_iterations=self.max_iterations,
            max_facts=self.max_facts,
            max_seconds=self.max_seconds,
            recorder=recorder,
            cache=self._cache,
            exec_mode=self.exec_mode,
            # Serial partitioning, like the pool workers: a maintenance
            # recompute is one component deep inside a maintenance pass.
            partitions=self.partitions,
            partition_backend="serial",
        )
        local = EvalStats()
        run.execute(self.database, local)
        # Maintenance rounds are incremental bookkeeping, not a full
        # evaluation's iteration count.
        local.incr_rounds = local.iterations
        local.iterations = 0
        stats.absorb(local)

    # ------------------------------------------------------------------
    # Provenance mode: component-granular recomputation
    # ------------------------------------------------------------------

    def _drop_derivation(self, key: FactKey) -> None:
        entry = self._derivations.pop(key, None)
        if entry is None:
            return
        keys = self._deriv_by_sig.get((key[0], key[1]))
        if keys is not None:
            keys.discard(key)
        for bk in entry[1]:
            deps = self._rdeps.get(bk)
            if deps is not None:
                deps.discard(key)
                if not deps:
                    del self._rdeps[bk]

    def _recompute_component(
        self, task: ComponentTask, stats: EvalStats
    ) -> Set[Signature]:
        """From-scratch fixpoint of one component; returns changed sigs.

        The component's relations reset to their base content (EDB plus
        ground program rules) and the standard
        :class:`~repro.engine.scheduler.ComponentRun` re-runs with a
        fresh recorder.  Because the lower strata are already correct
        (topological processing) and a component's rounds depend only
        on its input *facts*, the recomputed facts and canonical
        derivations are exactly what a from-scratch evaluation on the
        final EDB would produce for these signatures.
        """
        db = self.database
        old_facts = {sig: set(db.relation(*sig).tuples) for sig in task.sigs}
        for sig in task.sigs:
            for key in list(self._deriv_by_sig.get(sig, ())):
                self._drop_derivation(key)

        component_derivs: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]] = {}
        recorder = DerivationRecorder(component_derivs, self._edb_keys)
        self._recompute_component_facts(task, stats, recorder=recorder)

        for key, rule in self._program_fact_keys.items():
            sig = (key[0], key[1])
            if sig in task.sigs and key not in self._edb_keys:
                component_derivs.setdefault(key, (rule, ()))
        for key, entry in component_derivs.items():
            self._derivations[key] = entry
            self._deriv_by_sig.setdefault((key[0], key[1]), set()).add(key)
            for bk in entry[1]:
                self._rdeps.setdefault(bk, set()).add(key)
        return {
            sig
            for sig in task.sigs
            if set(db.relation(*sig).tuples) != old_facts[sig]
        }

    def _recompute_affected(
        self,
        fact_changed: Set[Signature],
        base_changed: Set[Signature],
        stats: EvalStats,
    ) -> None:
        """Insertion maintenance under provenance.

        Recompute a component when it reads a signature whose *facts*
        changed, or when its own signatures changed — including
        base-only changes (a fact newly asserted as EDB was perhaps
        already derived: the fact set is unchanged but its canonical
        tree becomes an EDB leaf, which only its own component's
        recompute can reflect).  Propagation follows fact changes only:
        downstream rounds depend on input facts, never on how (or when)
        the inputs were derived.
        """
        fact_changed = set(fact_changed)
        for task in self._tasks:
            reads_changed = any(
                lit.signature in fact_changed and lit.signature not in task.sigs
                for rule in task.rules
                for lit in rule.body
            )
            own = bool(task.sigs & (fact_changed | base_changed))
            if not (reads_changed or own):
                continue
            fact_changed |= self._recompute_component(task, stats)

    def _recompute_after_delete(
        self, removed: Dict[Signature, List[FactTuple]], stats: EvalStats
    ) -> None:
        """Deletion maintenance under provenance: the support-index path.

        The recorded derivations form a reverse dependency index; the
        transitive dependents of the deleted facts over-approximate
        everything whose fact *or* tree can change (a fact outside the
        closure has a recorded derivation built entirely from surviving
        facts whose first-derivation rounds are unchanged, so — by
        induction over the acyclic derivation record — both it and its
        canonical tree survive verbatim).  Only components owning a
        fact in the closure recompute; pure-EDB members of the closure
        are simply removed.
        """
        seeds: List[FactKey] = []
        for sig, facts in removed.items():
            for fact in facts:
                key = (sig[0], sig[1], fact)
                if key in self._program_fact_keys:
                    # Still present through the program rule; its tree
                    # becomes the (rule, ()) leaf a from-scratch run
                    # records for non-EDB program facts.
                    if key not in self._edb_keys:
                        entry = (self._program_fact_keys[key], ())
                        self._derivations.setdefault(key, entry)
                        self._deriv_by_sig.setdefault(sig, set()).add(key)
                    continue
                seeds.append(key)
        closure: Set[FactKey] = set()
        frontier = list(seeds)
        while frontier:
            key = frontier.pop()
            if key in closure:
                continue
            closure.add(key)
            frontier.extend(self._rdeps.get(key, ()))
        if not closure:
            return
        affected = {(key[0], key[1]) for key in closure}
        for key in closure:
            sig = (key[0], key[1])
            if sig not in self._sig_task:
                rel = self.database.get(*sig)
                if rel is not None and not self._is_protected(sig, key[2]):
                    rel.remove_facts((key[2],))
                self._drop_derivation(key)
        for task in self._tasks:
            if task.sigs & affected:
                self._recompute_component(task, stats)

    def __repr__(self) -> str:
        mode = "provenance" if self.record_provenance else "facts"
        return (
            f"IncrementalSession({self.database.total_facts()} facts, "
            f"{len(self._tasks)} components, {mode} mode)"
        )
