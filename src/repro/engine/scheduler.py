"""The shared SCC evaluation core behind every bottom-up evaluator.

The paper states its cost model in terms of semi-naive bottom-up
evaluation of the SCC-stratified program, but historically each driver
(`naive_eval`, `seminaive_eval`, `provenance_eval`) re-implemented its
own whole-program fixpoint loop.  This module extracts the shared
layer: :class:`SCCScheduler` owns the predicate dependency graph
traversal, groups strongly connected components into **topological
depth batches**, and runs one :class:`ComponentRun` — a per-component
fixpoint — for each component.  The evaluator frontends differ only in
the *mode* of that per-component fixpoint:

* ``mode="seminaive"`` — the delta-decomposed iteration (the paper's
  evaluator; also used by ``provenance_eval`` with a derivation
  recorder attached);
* ``mode="naive"`` — full re-evaluation of the component's rules every
  round (the trivially-correct oracle, now quadratic per component
  instead of per program).

Depth batches are the parallelism unit: depth 0 holds components with
no dependencies outside themselves, depth *d+1* holds components all
of whose dependencies live at depths ``<= d``.  Two components in the
same batch share no dependency edge in either direction, so their
**write sets are disjoint** (a component only writes head relations of
its own SCC) and neither reads what the other writes.  With
``jobs > 1`` (or ``REPRO_JOBS``) the scheduler hands a batch to its
:class:`~repro.engine.backends.ExecutorBackend` (``backend=`` /
``REPRO_BACKEND``): ``serial`` runs it in batch order, ``thread``
overlaps components on a thread pool over staged relations, and
``process`` ships declarative
:class:`~repro.engine.backends.ComponentSpec` work units to a process
pool for real compute parallelism.  Every backend merges component
results at the batch barrier in batch order, so
``facts``/``inferences``/``iterations`` are bit-identical for every
backend and every ``jobs`` value; only wall time and scheduling vary.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.dependency import DependencyGraph
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.engine import faults
from repro.engine.backends import make_backend
from repro.engine.columnar import execute_columnar, resolve_exec
from repro.engine.cost import resolve_planner
from repro.engine.database import Database, FactTuple, Relation, RowTuple
from repro.engine.joins import _resolve, instantiate_head, join_rule, relation_from_tuples
from repro.engine.partition import make_partition_executor, resolve_partitions
from repro.engine.plan import PlanCache, RoleSpec
from repro.engine.stats import ComponentTimeout, EvalStats, NonTerminationError

Signature = Tuple[str, int]
FactKey = Tuple[str, int, FactTuple]

#: Environment variable supplying the session-wide default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable supplying the session-wide watchdog budget.
TIMEOUT_ENV = "REPRO_TIMEOUT"

#: Fixpoint modes the scheduler knows how to drive.
MODES = ("seminaive", "naive")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalize a worker-count choice, honouring ``REPRO_JOBS``.

    ``None`` falls back to the environment (default 1 — fully
    sequential, the deterministic reference schedule).  Anything that
    is not a positive integer raises ``ValueError`` so typos fail
    loudly rather than silently running sequentially.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid {JOBS_ENV}={raw!r}; expected a positive integer"
            ) from None
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_timeout(max_seconds=None) -> Optional[float]:
    """Normalize a watchdog budget, honouring ``REPRO_TIMEOUT``.

    ``None`` falls back to the environment; an empty/unset environment
    means no watchdog (the default).  The budget is per *component*
    wall clock, checked at fixpoint round boundaries; a component that
    exceeds it raises :class:`~repro.engine.stats.ComponentTimeout`.
    Anything that is not a positive number of seconds raises
    ``ValueError`` so typos fail loudly — mirroring
    :func:`resolve_jobs`/:func:`repro.engine.backends.resolve_backend`.
    """
    source = "max_seconds"
    if max_seconds is None:
        raw = os.environ.get(TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        max_seconds, source = raw, TIMEOUT_ENV
    try:
        value = float(max_seconds)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid {source}={max_seconds!r}; expected a positive number "
            f"of seconds"
        ) from None
    if not value > 0:  # also rejects NaN
        raise ValueError(
            f"invalid {source}={max_seconds!r}; expected a positive number "
            f"of seconds"
        )
    return value


def component_depths(
    sccs: Sequence[Sequence[Signature]],
    predecessors: Mapping[Signature, Set[Signature]],
) -> List[int]:
    """Topological depth of each SCC, given SCCs in evaluation order.

    Depth 0 components depend on nothing outside themselves; a
    component's depth is otherwise one more than the deepest component
    it depends on.  Because every dependency edge crosses strictly
    increasing depth, components sharing a depth are mutually
    independent — the property the parallel batches rely on.

    ``sccs`` must be in evaluation order (dependencies before
    dependents, as :meth:`DependencyGraph.sccs` returns them) so each
    component's dependencies are assigned before it.
    """
    scc_of: Dict[Signature, int] = {}
    for i, scc in enumerate(sccs):
        for sig in scc:
            scc_of[sig] = i
    depths: List[int] = []
    for i, scc in enumerate(sccs):
        depth = 0
        for sig in scc:
            for dep in predecessors.get(sig, ()):
                j = scc_of[dep]
                if j != i:
                    depth = max(depth, depths[j] + 1)
        depths.append(depth)
    return depths


class ComponentTask:
    """One SCC of the dependency graph, ready to evaluate.

    ``sigs`` is the component's signature set (also its write set:
    every rule's head signature belongs to the SCC of that rule);
    ``recursive`` marks components needing fixpoint iteration.
    """

    __slots__ = ("index", "depth", "sigs", "rules", "recursive")

    def __init__(
        self,
        index: int,
        depth: int,
        sigs: frozenset,
        rules: List[Rule],
        recursive: bool,
    ):
        self.index = index
        self.depth = depth
        self.sigs = sigs
        self.rules = rules
        self.recursive = recursive

    def __repr__(self) -> str:
        kind = "recursive" if self.recursive else "single-pass"
        return (
            f"ComponentTask(depth={self.depth}, {kind}, "
            f"sigs={sorted(self.sigs)}, rules={len(self.rules)})"
        )


class SCCScheduler:
    """Shared driver: stratify a program and run per-component fixpoints.

    The frontends (:func:`~repro.engine.seminaive.seminaive_eval`,
    :func:`~repro.engine.naive.naive_eval`,
    :func:`~repro.engine.provenance.provenance_eval`) construct one of
    these per evaluation, then call :meth:`run` against a database that
    already holds the EDB and any program facts.

    ``recorder`` attaches plan-level provenance: a duck-typed object
    with ``start_round()`` / ``observe(sig, fact, rule_index, rule,
    body_keys)`` / ``commit(sig, fact)`` / ``fork()`` / ``absorb()``
    (see :class:`repro.engine.provenance.DerivationRecorder`).  It is
    only consulted on the semi-naive paths — provenance evaluation is
    SCC-stratified semi-naive.

    ``backend`` selects how parallel depth batches execute: a name
    (``"serial"``/``"thread"``/``"process"``; ``None`` reads
    ``REPRO_BACKEND``, defaulting to ``thread``) or a ready
    :class:`~repro.engine.backends.ExecutorBackend` instance.  With
    ``jobs == 1`` the backend is never consulted — every schedule is
    the sequential one.

    ``partitions`` adds data parallelism *inside* each recursive
    component's fixpoint (``None`` reads ``REPRO_PARTITIONS``,
    defaulting to 1): every round's delta is hash-partitioned and the
    same compiled plan runs per partition, on a mechanism matching the
    backend name (see :mod:`repro.engine.partition`).  Facts,
    inferences, and iterations stay bit-identical to ``partitions=1``;
    probes may differ.
    """

    def __init__(
        self,
        program: Program,
        mode: str = "seminaive",
        use_plans: bool = True,
        planner: Optional[str] = None,
        jobs: Optional[int] = None,
        backend=None,
        max_iterations: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        recorder=None,
        cache: Optional[PlanCache] = None,
        exec: Optional[str] = None,
        partitions: Optional[int] = None,
    ):
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        self.program = program
        self.mode = mode
        self.use_plans = use_plans
        self.planner = resolve_planner(planner) if use_plans else None
        self.jobs = resolve_jobs(jobs)
        self.backend = make_backend(backend)
        self.exec_mode = resolve_exec(exec)
        self.partitions = resolve_partitions(partitions)
        self.max_iterations = max_iterations
        self.max_facts = max_facts
        self.max_seconds = resolve_timeout(max_seconds)
        self.recorder = recorder
        #: Optional shared plan cache: when set, sequential component
        #: runs compile into it instead of one private cache per run,
        #: so repeated evaluations of the same program (the per-query
        #: serving path) reuse compiled plans across calls.
        self.cache = cache if use_plans else None

        self.graph = DependencyGraph(program)
        rules_by_head: Dict[Signature, List[Rule]] = {}
        for rule in program.proper_rules():
            rules_by_head.setdefault(rule.head.signature, []).append(rule)

        sccs = self.graph.sccs()
        depths = component_depths(sccs, self.graph.predecessors)
        self.tasks: List[ComponentTask] = []
        for i, scc in enumerate(sccs):
            scc_set = frozenset(scc)
            rules = [rule for sig in scc for rule in rules_by_head.get(sig, ())]
            if not rules:
                continue  # EDB-only component: nothing to evaluate
            recursive = any(
                lit.signature in scc_set for rule in rules for lit in rule.body
            )
            self.tasks.append(
                ComponentTask(i, depths[i], scc_set, rules, recursive)
            )
        batches: Dict[int, List[ComponentTask]] = {}
        for task in self.tasks:
            batches.setdefault(task.depth, []).append(task)
        #: Components grouped by topological depth, shallowest first;
        #: same-batch components are mutually independent.
        self.batches: List[List[ComponentTask]] = [
            batches[d] for d in sorted(batches)
        ]

    # ------------------------------------------------------------------

    def component_run(
        self, task: ComponentTask, recorder=None, fact_base: int = 0
    ) -> "ComponentRun":
        """A :class:`ComponentRun` for ``task`` with this run's knobs.

        The execution backends call this so every backend evaluates
        components with exactly the same configuration — they differ
        only in where the run executes and how results merge back.
        """
        return ComponentRun(
            task,
            mode=self.mode,
            use_plans=self.use_plans,
            planner=self.planner,
            max_iterations=self.max_iterations,
            max_facts=self.max_facts,
            max_seconds=self.max_seconds,
            recorder=recorder,
            fact_base=fact_base,
            cache=self.cache,
            exec_mode=self.exec_mode,
            partitions=self.partitions,
            partition_backend=self.backend.name,
        )

    def run(self, db: Database, stats: EvalStats) -> None:
        """Evaluate every component batch-by-batch into ``db``.

        ``stats`` accumulates across components.  Raises
        :class:`NonTerminationError` when a component exceeds the
        iteration or fact budget (budgets are whole-evaluation, shared
        across components).  Batches with parallelism to exploit go to
        the execution backend; its pooled resources are released when
        the run finishes.
        """
        if self.exec_mode == "columnar":
            # Mint the run's term dictionary up front, before any
            # parallel batch: stages inherit it by reference, so
            # concurrent components never race to attach competing
            # dictionaries to shared lower-stratum relations.
            db.ensure_dictionary()
        stats.scc_count += len(self.tasks)
        try:
            for batch in self.batches:
                if len(batch) > 1:
                    stats.scc_parallel_batches += 1
                if self.jobs == 1 or len(batch) == 1:
                    for task in batch:
                        self.component_run(task, self.recorder).execute(db, stats)
                else:
                    self.backend.run_batch(self, batch, db, stats)
                    self._recheck_fact_budget(stats)
        finally:
            self.backend.close()

    def _recheck_fact_budget(self, stats: EvalStats) -> None:
        """Re-check ``max_facts`` against a batch's absorbed totals.

        Parallel components check the budget against the batch-start
        baseline only; the barrier re-check makes a batch that
        *collectively* exceeds the budget raise exactly like the
        sequential schedule would (at most one batch later).
        """
        if self.max_facts is not None and stats.facts > self.max_facts:
            raise NonTerminationError(
                f"evaluation exceeded {self.max_facts} facts",
                stats.iterations,
                stats.facts,
            )


class ComponentRun:
    """The fixpoint of one SCC — the unit of work the scheduler schedules.

    Dispatches on the component shape and the scheduler's mode:

    * non-recursive component → one pass over its rules;
    * recursive, ``mode="seminaive"`` → delta-decomposed iteration
      (compiled plans by default, the legacy dict interpreter under
      ``use_plans=False``);
    * recursive, ``mode="naive"`` → full re-evaluation of the
      component's rules every round until no new facts.

    ``max_iterations`` bounds the fixpoint rounds of any *single*
    component (a divergence guard — a diverging component exceeds any
    cap by itself, and the bound does not shrink as programs gain more
    components); ``max_facts`` bounds the whole evaluation's derived
    facts, with ``fact_base`` carrying the budget context into
    parallel batches, where ``stats`` is component-local.

    Construction takes the evaluation knobs explicitly (rather than a
    scheduler) so the run is self-contained: the process execution
    backend rebuilds one inside a worker from a declarative
    :class:`~repro.engine.backends.ComponentSpec`, far from any
    scheduler object.  ``cache`` lets a worker supply its own
    :class:`~repro.engine.plan.PlanCache`; by default each run
    compiles into a private cache — rules belong to exactly one
    component (grouped by head SCC), so either way exactly the same
    (rule, roles) pairs compile, and the cache is free to use from a
    worker thread or process.
    """

    __slots__ = (
        "task",
        "mode",
        "use_plans",
        "cache",
        "recorder",
        "max_iterations",
        "max_facts",
        "max_seconds",
        "fact_base",
        "rounds",
        "_deadline",
        "exec_mode",
        "partitions",
        "partition_backend",
        "_partition_executor",
    )

    def __init__(
        self,
        task: ComponentTask,
        mode: str = "seminaive",
        use_plans: bool = True,
        planner: Optional[str] = None,
        max_iterations: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        recorder=None,
        fact_base: int = 0,
        cache: Optional[PlanCache] = None,
        exec_mode: str = "tuple",
        partitions: int = 1,
        partition_backend: str = "serial",
    ):
        self.task = task
        self.mode = mode
        self.use_plans = use_plans
        if cache is None and use_plans:
            cache = PlanCache(planner or "greedy")
        self.cache = cache if use_plans else None
        self.recorder = recorder
        self.max_iterations = max_iterations
        self.max_facts = max_facts
        self.max_seconds = max_seconds
        self.fact_base = fact_base
        self.rounds = 0
        self._deadline: Optional[float] = None
        #: "columnar" routes compiled-plan execution through the batch
        #: kernel (repro.engine.columnar); anything else — and every
        #: provenance or interpreter run — stays tuple-at-a-time.
        self.exec_mode = exec_mode
        #: Intra-component delta partitioning (repro.engine.partition):
        #: with partitions > 1 the semi-naive rounds hash-split their
        #: deltas and run each partition on the mechanism named by
        #: partition_backend.  Naive mode and provenance runs ignore it
        #: (naive has no delta to split; provenance needs the single
        #: sequential emission stream its recorder observes).
        self.partitions = partitions
        self.partition_backend = partition_backend
        self._partition_executor = None

    # -- budget guards --------------------------------------------------

    def _check_facts(self, stats: EvalStats) -> None:
        if (
            self.max_facts is not None
            and self.fact_base + stats.facts > self.max_facts
        ):
            raise NonTerminationError(
                f"evaluation exceeded {self.max_facts} facts",
                stats.iterations,
                self.fact_base + stats.facts,
            )

    def _begin_round(self, stats: EvalStats) -> None:
        """Count one fixpoint round, guarding this component's budget."""
        stats.iterations += 1
        self.rounds += 1
        if self.max_iterations is not None and self.rounds > self.max_iterations:
            raise NonTerminationError(
                f"component {sorted(self.task.sigs)} exceeded "
                f"{self.max_iterations} iterations",
                stats.iterations,
                self.fact_base + stats.facts,
            )
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise ComponentTimeout(
                f"component {sorted(self.task.sigs)} exceeded its "
                f"{self.max_seconds:g}s wall-clock budget",
                stats.iterations,
                self.fact_base + stats.facts,
            )

    # -- dispatch ---------------------------------------------------------

    def execute(self, db: Database, stats: EvalStats) -> None:
        faults.fire("component")
        if self.max_seconds is not None:
            # Per-component wall clock: the watchdog is armed at execute
            # time (not construction) so pool queueing doesn't count.
            self._deadline = time.monotonic() + self.max_seconds
        if self.recorder is not None:
            # Source the provenance backend ratio where the work runs:
            # every component of one evaluation uses the same backend,
            # so the stat barriers' inference-weighted blend reduces to
            # this value (and stays exact if the backends ever mix).
            stats.provenance_plan_ratio = 1.0 if self.cache is not None else 0.0
        if (
            self.partitions > 1
            and self.task.recursive
            and self.mode == "seminaive"
            and self.recorder is None
            and self.cache is not None
        ):
            # Partitioning engages only where a delta exists to split:
            # the semi-naive fixpoint of a recursive component, without
            # a provenance recorder (which needs the single sequential
            # emission stream) and with compiled plans (the partition
            # key comes from the compiled join order).
            self._partition_executor = make_partition_executor(
                self.partitions,
                self.partition_backend,
                self.exec_mode,
                self.cache.planner,
            )
        try:
            if (
                self.exec_mode == "columnar"
                and self.recorder is None
                and self.cache is not None
            ):
                # Adopt (or mint) the database's term dictionary lazily so
                # every caller that builds a ComponentRun directly — the
                # process-backend worker, incremental recomputes — gets the
                # columnar path without its own setup step.
                db.ensure_dictionary()
                if not self.task.recursive:
                    self._eval_once_columnar(db, stats)
                elif self.mode == "naive":
                    self._eval_naive(db, stats)
                else:
                    self._eval_seminaive_columnar(db, stats)
                return
            if not self.task.recursive:
                self._eval_once(db, stats)
            elif self.mode == "naive":
                self._eval_naive(db, stats)
            elif self.cache is not None:
                self._eval_seminaive_plans(db, stats)
            else:
                self._eval_seminaive_interpreted(db, stats)
        finally:
            if self._partition_executor is not None:
                self._partition_executor.close()
                self._partition_executor = None

    # -- provenance plumbing ----------------------------------------------

    def _interpreted_body_keys(self, rule: Rule, bindings) -> Tuple[FactKey, ...]:
        """Ground body fact keys under ``bindings`` (interpreter path)."""
        keys = []
        for literal in rule.body:
            args = tuple(_resolve(arg, bindings) for arg in literal.args)
            keys.append((literal.predicate, literal.arity, args))
        return tuple(keys)

    # -- non-recursive: one pass -------------------------------------------

    def _eval_once(self, db: Database, stats: EvalStats) -> None:
        """Single pass for a non-recursive component."""
        recorder = self.recorder
        self._begin_round(stats)
        if recorder is not None:
            recorder.start_round()
        for rule_index, rule in enumerate(self.task.rules):
            sig = rule.head.signature
            rel = db.relation(*sig)

            if self.cache is not None:
                emitted: List[FactTuple] = []
                plan = self.cache.plan(rule, (), stats, db=db)
                if recorder is not None:
                    def on_match(head, body_keys, sig=sig, rel=rel,
                                 rule=rule, idx=rule_index, emitted=emitted):
                        emitted.append(head)
                        if head not in rel.tuples:
                            recorder.observe(sig, head, idx, rule, body_keys)

                    plan.execute(db, None, None, stats, on_match=on_match)
                else:
                    plan.execute(db, None, emitted.append, stats)
                if plan.estimated_rows is not None:
                    stats.record_estimate(plan.estimated_rows, len(emitted))
                stats.inferences += len(emitted)
                for fact in emitted:
                    if rel.add(fact):
                        stats.record_fact(sig)
                        if recorder is not None:
                            recorder.commit(sig, fact)
                        self._check_facts(stats)
            else:
                emitted = []

                def on_match(bindings, rule=rule, idx=rule_index,
                             sig=sig, rel=rel, emitted=emitted):
                    stats.inferences += 1
                    fact = instantiate_head(rule, bindings)
                    emitted.append(fact)
                    if recorder is not None and fact not in rel.tuples:
                        recorder.observe(
                            sig, fact, idx, rule,
                            self._interpreted_body_keys(rule, bindings),
                        )

                join_rule(db, rule, on_match)
                for fact in emitted:
                    if rel.add(fact):
                        stats.record_fact(sig)
                        if recorder is not None:
                            recorder.commit(sig, fact)
                        self._check_facts(stats)

    # -- non-recursive: one pass, columnar ----------------------------------

    def _eval_once_columnar(self, db: Database, stats: EvalStats) -> None:
        """Single columnar pass for a non-recursive component.

        Per rule: run the batch kernel (falling back to the tuple
        executor for ineligible plans — counters are identical either
        way), then decode only the rows that are actually new.
        """
        dictionary = db.dictionary
        terms = dictionary.terms
        self._begin_round(stats)
        for rule in self.task.rules:
            sig = rule.head.signature
            rel = db.relation(*sig)
            plan = self.cache.plan(rule, (), stats, db=db)
            rows = execute_columnar(plan, db, None, stats)
            if rows is None:
                emitted: List[FactTuple] = []
                plan.execute(db, None, emitted.append, stats)
                if plan.estimated_rows is not None:
                    stats.record_estimate(plan.estimated_rows, len(emitted))
                stats.inferences += len(emitted)
                for fact in emitted:
                    if rel.add(fact):
                        stats.record_fact(sig)
                        self._check_facts(stats)
                continue
            if plan.estimated_rows is not None:
                stats.record_estimate(plan.estimated_rows, len(rows))
            stats.inferences += len(rows)
            if not rows:
                continue
            if rel.arity > 0 and rel.dictionary is dictionary:
                seen = rel.col_set()
                if self.max_facts is None:
                    # Bulk absorption (no limit to trip mid-batch).
                    novel: List[RowTuple] = []
                    pending: Set[RowTuple] = set()
                    for row in rows:
                        if row not in seen and row not in pending:
                            pending.add(row)
                            novel.append(row)
                    if novel:
                        rel.append_rows(novel)
                        stats.record_facts(sig, len(novel))
                else:
                    # Fact budget set: add one at a time so the limit
                    # trips on exactly the same fact as the tuple path.
                    for row in rows:
                        if row not in seen:
                            rel.add_row(tuple(terms[i] for i in row), row)
                            stats.record_fact(sig)
                            self._check_facts(stats)
            else:
                # Head relation outside this run's dictionary (or
                # nullary): decode and take the plain tuple adds.
                for row in rows:
                    fact = tuple(terms[i] for i in row)
                    if rel.add(fact):
                        stats.record_fact(sig)
                        self._check_facts(stats)

    # -- recursive: semi-naive on compiled plans ----------------------------

    def _eval_seminaive_plans(self, db: Database, stats: EvalStats) -> None:
        """Semi-naive iteration for one recursive component (compiled plans).

        Neither deltas nor "old" relations are ever materialized: at
        round ``t`` a component relation's append-only log holds the
        facts through ``t-1`` in derivation order, so *delta* (new at
        ``t-1``) is the log slice ``[delta_start:len]`` and *old*
        (through ``t-2``) is the prefix ``[0:delta_start]`` — both
        zero-copy :class:`~repro.engine.database.RelationView` windows.
        """
        rules = self.task.rules
        scc_set = self.task.sigs
        cache = self.cache
        recorder = self.recorder
        partitioner = self._partition_executor
        rels: Dict[Signature, Relation] = {
            sig: db.relation(*sig) for sig in scc_set
        }
        # Facts present before the first round seed the delta (magic
        # seeds and facts from earlier strata drive round one);
        # delta_start marks the log offset where the current delta begins.
        delta_start: Dict[Signature, int] = {sig: 0 for sig in scc_set}

        # One delta decomposition per recursive occurrence per rule; each
        # (rule, roles) pair is compiled once by the cache and fetched per
        # round (the refetch is what the plan_cache_hits counter measures).
        # Rules with no recursive body literal have no entry; they fire
        # only in the first round (see the dispatch below).
        variants: Dict[Rule, List[Tuple[RoleSpec, List[Tuple[int, str, Signature]]]]] = {}
        for rule in rules:
            positions = [
                i for i, lit in enumerate(rule.body) if lit.signature in scc_set
            ]
            if not positions:
                continue
            rule_variants = []
            for j, _ in enumerate(positions):
                roles = tuple(
                    (other, "delta" if k == j else "old")
                    for k, other in enumerate(positions)
                    if k >= j
                )
                binding = [
                    (pos, role, rule.body[pos].signature) for pos, role in roles
                ]
                rule_variants.append((roles, binding))
            variants[rule] = rule_variants

        first_round = True
        while True:
            self._begin_round(stats)
            round_partitioned = False
            if recorder is not None:
                recorder.start_round()
            # Log lengths at round start; nothing is appended mid-round, so
            # views and the full relations both expose exactly "through t-1".
            stop = {sig: len(rels[sig]) for sig in scc_set}
            delta_views = {
                sig: rels[sig].view(delta_start[sig], stop[sig]) for sig in scc_set
            }
            old_views = {
                sig: rels[sig].view(0, delta_start[sig]) for sig in scc_set
            }
            new: Dict[Signature, Set[FactTuple]] = {sig: set() for sig in scc_set}

            for rule_index, rule in enumerate(rules):
                sig = rule.head.signature
                emitted: List[FactTuple] = []
                if recorder is not None:
                    full = rels[sig].tuples
                    fresh = new[sig]

                    def emit(head, body_keys, sig=sig, rule=rule,
                             idx=rule_index, full=full, fresh=fresh,
                             emitted=emitted):
                        emitted.append(head)
                        if head not in full:
                            fresh.add(head)
                            recorder.observe(sig, head, idx, rule, body_keys)

                    run_plan = lambda plan, overrides: plan.execute(
                        db, overrides, None, stats, on_match=emit
                    )
                else:
                    run_plan = lambda plan, overrides, emit=emitted.append: (
                        plan.execute(db, overrides, emit, stats)
                    )

                rule_variants = variants.get(rule)
                if rule_variants is None:
                    # Rules with no recursive body literal fire only once, in
                    # the first round (their input never changes afterwards).
                    if first_round:
                        plan = cache.plan(rule, (), stats, db=db)
                        run_plan(plan, None)
                        if plan.estimated_rows is not None:
                            stats.record_estimate(plan.estimated_rows, len(emitted))
                else:
                    for roles, binding in rule_variants:
                        overrides = {
                            pos: delta_views[body_sig]
                            if role == "delta"
                            else old_views[body_sig]
                            for pos, role, body_sig in binding
                        }
                        # Re-fetching the plan every round is what lets the
                        # cost planner notice cardinality drift and re-plan.
                        plan = cache.plan(
                            rule, roles, stats, db=db, overrides=overrides
                        )
                        before = len(emitted)
                        parted = None
                        if partitioner is not None:
                            # roles[0] is the variant's delta occurrence.
                            # The plan was fetched (and its estimate is
                            # recorded) exactly once with the full-delta
                            # overrides, so plan-cache counters match
                            # partitions=1; the partitions' emissions
                            # concatenate in partition order below.
                            parted = partitioner.run(
                                plan, db, overrides, roles[0][0], stats, False
                            )
                        if parted is None:
                            run_plan(plan, overrides)
                        else:
                            emitted.extend(parted)
                            round_partitioned = True
                        if plan.estimated_rows is not None:
                            stats.record_estimate(
                                plan.estimated_rows, len(emitted) - before
                            )
                if emitted:
                    stats.inferences += len(emitted)
                    if recorder is None:
                        new[sig] |= set(emitted) - rels[sig].tuples

            changed = False
            if round_partitioned:
                stats.partition_rounds += 1
            # Advance: delta becomes old (a log-offset bump); full absorbs new.
            for sig in scc_set:
                delta_start[sig] = stop[sig]
            for sig in scc_set:
                fresh = new[sig]
                if fresh:
                    changed = True
                    rel = rels[sig]
                    for fact in fresh:
                        if rel.add(fact):
                            stats.record_fact(sig)
                            if recorder is not None:
                                recorder.commit(sig, fact)
                    self._check_facts(stats)
            first_round = False
            if not changed:
                break

    # -- recursive: semi-naive, columnar -------------------------------------

    def _eval_seminaive_columnar(self, db: Database, stats: EvalStats) -> None:
        """Semi-naive iteration with batch-at-a-time rule bodies.

        Structurally identical to :meth:`_eval_seminaive_plans` — same
        delta decomposition, same per-round plan refetch, same
        round-end absorption — but the working currency is interned
        rows: rule bodies run through
        :func:`~repro.engine.columnar.execute_columnar` (falling back
        per call to the tuple executor, whose emitted facts are then
        interned), dedup is int-row set difference against the head's
        column set, and only genuinely novel rows are decoded back to
        terms.  Counters match the tuple path bit for bit.
        """
        dictionary = db.dictionary
        rules = self.task.rules
        scc_set = self.task.sigs
        cache = self.cache
        partitioner = self._partition_executor
        rels: Dict[Signature, Relation] = {
            sig: db.relation(*sig) for sig in scc_set
        }
        if any(
            sig[1] == 0 or rels[sig].dictionary is not dictionary
            for sig in scc_set
        ):
            # A nullary or foreign-dictionary head cannot take row
            # appends; run the whole component down the tuple path.
            self._eval_seminaive_plans(db, stats)
            return
        intern = dictionary.intern
        delta_start: Dict[Signature, int] = {sig: 0 for sig in scc_set}

        variants: Dict[Rule, List[Tuple[RoleSpec, List[Tuple[int, str, Signature]]]]] = {}
        for rule in rules:
            positions = [
                i for i, lit in enumerate(rule.body) if lit.signature in scc_set
            ]
            if not positions:
                continue
            rule_variants = []
            for j, _ in enumerate(positions):
                roles = tuple(
                    (other, "delta" if k == j else "old")
                    for k, other in enumerate(positions)
                    if k >= j
                )
                binding = [
                    (pos, role, rule.body[pos].signature) for pos, role in roles
                ]
                rule_variants.append((roles, binding))
            variants[rule] = rule_variants

        first_round = True
        while True:
            self._begin_round(stats)
            round_partitioned = False
            stop = {sig: len(rels[sig]) for sig in scc_set}
            delta_views = {
                sig: rels[sig].view(delta_start[sig], stop[sig]) for sig in scc_set
            }
            old_views = {
                sig: rels[sig].view(0, delta_start[sig]) for sig in scc_set
            }
            new: Dict[Signature, Set[RowTuple]] = {sig: set() for sig in scc_set}

            for rule in rules:
                sig = rule.head.signature
                emitted: List[RowTuple] = []
                rule_variants = variants.get(rule)
                if rule_variants is None:
                    if first_round:
                        plan = cache.plan(rule, (), stats, db=db)
                        rows = execute_columnar(plan, db, None, stats)
                        if rows is None:
                            # Ineligible plan or source: tuple oracle,
                            # then intern its output into the row world.
                            facts: List[FactTuple] = []
                            plan.execute(db, None, facts.append, stats)
                            rows = [
                                tuple(intern(t) for t in fact) for fact in facts
                            ]
                        emitted = rows
                        if plan.estimated_rows is not None:
                            stats.record_estimate(plan.estimated_rows, len(emitted))
                else:
                    for roles, binding in rule_variants:
                        overrides = {
                            pos: delta_views[body_sig]
                            if role == "delta"
                            else old_views[body_sig]
                            for pos, role, body_sig in binding
                        }
                        plan = cache.plan(
                            rule, roles, stats, db=db, overrides=overrides
                        )
                        before = len(emitted)
                        rows = None
                        if partitioner is not None:
                            # roles[0] is the variant's delta occurrence;
                            # the executor pre-checks columnar capability
                            # so partitions never mix execution modes.
                            rows = partitioner.run(
                                plan, db, overrides, roles[0][0], stats, True
                            )
                            if rows is not None:
                                round_partitioned = True
                        if rows is None:
                            rows = execute_columnar(plan, db, overrides, stats)
                        if rows is None:
                            facts = []
                            plan.execute(db, overrides, facts.append, stats)
                            rows = [
                                tuple(intern(t) for t in fact) for fact in facts
                            ]
                        if emitted:
                            emitted.extend(rows)
                        else:
                            # The common single-variant case adopts the
                            # kernel's fresh list instead of copying it.
                            emitted = rows
                        if plan.estimated_rows is not None:
                            stats.record_estimate(
                                plan.estimated_rows, len(emitted) - before
                            )
                if emitted:
                    stats.inferences += len(emitted)
                    prev = new[sig]
                    if prev:
                        prev |= set(emitted) - rels[sig].col_set()
                    else:
                        new[sig] = set(emitted) - rels[sig].col_set()

            changed = False
            if round_partitioned:
                stats.partition_rounds += 1
            for sig in scc_set:
                delta_start[sig] = stop[sig]
            for sig in scc_set:
                fresh = new[sig]
                if fresh:
                    changed = True
                    rows_list = list(fresh)
                    rels[sig].append_rows(rows_list, fresh)
                    stats.record_facts(sig, len(rows_list))
                    self._check_facts(stats)
            first_round = False
            if not changed:
                break

    # -- recursive: semi-naive via the legacy interpreter --------------------

    def _eval_seminaive_interpreted(self, db: Database, stats: EvalStats) -> None:
        """Semi-naive iteration via the legacy dict-based interpreter.

        Reference implementation for the differential fuzz tests: same
        decomposition as :meth:`_eval_seminaive_plans`, executed through
        :func:`repro.engine.joins.join_rule` with per-round materialized
        delta relations.
        """
        rules = self.task.rules
        scc_set = self.task.sigs
        recorder = self.recorder
        old: Dict[Signature, Relation] = {
            sig: relation_from_tuples(sig[0], sig[1], ()) for sig in scc_set
        }
        # Facts of the component present before the first round seed the delta,
        # so magic seeds and facts from earlier strata drive round one.
        delta: Dict[Signature, Set[FactTuple]] = {
            sig: set(db.relation(*sig).tuples) for sig in scc_set
        }

        recursive_positions: Dict[Rule, List[int]] = {
            rule: [i for i, lit in enumerate(rule.body) if lit.signature in scc_set]
            for rule in rules
        }

        first_round = True
        while True:
            self._begin_round(stats)
            if recorder is not None:
                recorder.start_round()
            delta_rels = {
                sig: relation_from_tuples(sig[0], sig[1], facts)
                for sig, facts in delta.items()
            }
            new: Dict[Signature, Set[FactTuple]] = {sig: set() for sig in scc_set}

            for rule_index, rule in enumerate(rules):
                sig = rule.head.signature
                positions = recursive_positions[rule]

                def on_match(bindings, rule=rule, sig=sig, idx=rule_index):
                    stats.inferences += 1
                    fact = instantiate_head(rule, bindings)
                    if fact not in db.relation(*sig).tuples:
                        new[sig].add(fact)
                        if recorder is not None:
                            recorder.observe(
                                sig, fact, idx, rule,
                                self._interpreted_body_keys(rule, bindings),
                            )

                if not positions:
                    # Rules with no recursive body literal fire only once, in
                    # the first round (their input never changes afterwards).
                    if first_round:
                        join_rule(db, rule, on_match)
                    continue
                for j, pos in enumerate(positions):
                    overrides: Dict[int, Optional[Relation]] = {}
                    for k, other in enumerate(positions):
                        if k < j:
                            overrides[other] = None  # full relation via db
                        elif k == j:
                            overrides[other] = delta_rels[rule.body[other].signature]
                        else:
                            overrides[other] = old[rule.body[other].signature]
                    join_rule(db, rule, on_match, overrides)

            changed = False
            # Advance: old absorbs the previous delta; full absorbs the new facts.
            for sig in scc_set:
                for fact in delta[sig]:
                    old[sig].add(fact)
            for sig in scc_set:
                fresh = new[sig]
                delta[sig] = fresh
                if fresh:
                    changed = True
                    rel = db.relation(*sig)
                    for fact in fresh:
                        if rel.add(fact):
                            stats.record_fact(sig)
                            if recorder is not None:
                                recorder.commit(sig, fact)
                    self._check_facts(stats)
            first_round = False
            if not changed:
                break

    # -- recursive: per-component naive rounds --------------------------------

    def _eval_naive(self, db: Database, stats: EvalStats) -> None:
        """Naive fixpoint for one recursive component.

        Every component rule is re-evaluated over the full database each
        round until a round adds nothing — quadratically redundant, but
        trivially correct, which is exactly why ``naive_eval`` is the
        oracle the rest of the suite is checked against.  (Provenance
        runs on the semi-naive schedule; ``recorder`` is unused here.
        ``partitions`` is also ignored: naive rounds have no delta to
        split, and the oracle stays maximally simple.)
        """
        rules = self.task.rules
        cache = self.cache
        while True:
            self._begin_round(stats)
            new_facts: List[Tuple[Signature, FactTuple]] = []
            for rule in rules:
                sig = rule.head.signature
                if cache is not None:
                    emitted: List[FactTuple] = []
                    plan = cache.plan(rule, (), stats, db=db)
                    plan.execute(db, None, emitted.append, stats)
                    if plan.estimated_rows is not None:
                        stats.record_estimate(plan.estimated_rows, len(emitted))
                    stats.inferences += len(emitted)
                    new_facts.extend((sig, fact) for fact in emitted)
                else:
                    def on_match(bindings, rule=rule, sig=sig):
                        stats.inferences += 1
                        new_facts.append((sig, instantiate_head(rule, bindings)))

                    join_rule(db, rule, on_match)
            changed = False
            for sig, fact in new_facts:
                if db.relation(*sig).add(fact):
                    stats.record_fact(sig)
                    changed = True
                    self._check_facts(stats)
            if not changed:
                break
