"""Intra-component data parallelism: hash-partitioned delta execution.

All parallelism elsewhere in the engine is *across* SCCs — the
scheduler's depth batches overlap mutually independent components, so a
program that is one giant component (transitive closure, same
generation) gets no speedup from ``jobs``/``backend`` at all.  This
module parallelizes *inside* one :class:`~repro.engine.scheduler.ComponentRun`
fixpoint: each round's delta rows are hash-partitioned by the compiled
plan's first probe/join key (whole-row hashing when the plan is a
keyless scan), the same compiled :class:`~repro.engine.plan.RulePlan`
runs on every disjoint partition, and the per-partition emission logs
are concatenated in partition order at the round barrier, before the
usual dedup/statistics update.

**Why any disjoint split is correct.**  A semi-naive delta variant
enumerates the ground body instantiations whose designated occurrence
matches a delta fact; every other body occurrence reads a relation the
split does not touch.  Each delta fact lands in exactly one partition,
so the union of the per-partition emission multisets *is* the
unpartitioned emission multiset — ``inferences`` (emission counts),
``facts`` (the round-end set difference), and ``iterations`` (the round
structure, which only looks at whether the round produced anything new)
are bit-identical to ``partitions=1``.  Only ``probes`` may differ:
shared non-delta steps are resolved once per partition instead of once
per call, exactly like the DRed maintenance caveat documented for the
columnar kernel.

Three partition executors mirror the SCC-level backends and are chosen
by the owning scheduler's backend name:

* ``serial`` — partitions run in order on the calling thread (the
  reference interleaving; also what process-pool *workers* use, since a
  daemonic worker cannot spawn its own children);
* ``thread`` — partitions run on a per-component thread pool.  Shared
  lazy structures (column images, int indexes, fact sets) are
  pre-warmed on the calling thread first, because their in-place
  watermark extension is only safe with a single observer;
* ``process`` — partitions run on a persistent group of worker
  processes owned by the component run.  Read relations are shipped
  **once per round as append-only log suffixes** (a static relation
  like ``edge`` crosses the boundary exactly once per fixpoint), delta
  partitions travel as log positions into the already-synced copy, and
  workers return decoded facts plus their probe count.  Worker loss
  degrades the component to unpartitioned execution and counts a
  ``backend_fallbacks``.

Select a partition count with the ``partitions=`` parameter on the
evaluators, ``--partitions`` on the CLI, or the ``REPRO_PARTITIONS``
environment variable (default 1 — today's unpartitioned path).
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.engine.database import Database, FactTuple, Relation, RelationView, RowTuple
from repro.engine.plan import K_SLOT, O_STORE, RulePlan
from repro.engine.stats import EvalStats

Signature = Tuple[str, int]

#: Environment variable supplying the session-wide partition count.
PARTITIONS_ENV = "REPRO_PARTITIONS"


def resolve_partitions(partitions: Optional[int] = None) -> int:
    """Normalize a partition-count choice, honouring ``REPRO_PARTITIONS``.

    ``None`` falls back to the environment (default 1 — unpartitioned,
    the deterministic reference path).  Anything that is not a positive
    integer raises ``ValueError`` so typos fail loudly rather than
    silently running unpartitioned — mirroring
    :func:`repro.engine.scheduler.resolve_jobs` and
    :func:`repro.engine.backends.resolve_backend`.
    """
    if partitions is None:
        raw = os.environ.get(PARTITIONS_ENV, "").strip()
        if not raw:
            return 1
        try:
            partitions = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid {PARTITIONS_ENV}={raw!r}; expected a positive integer"
            ) from None
    partitions = int(partitions)
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    return partitions


# ----------------------------------------------------------------------
# Partition-key selection and splitting
# ----------------------------------------------------------------------


def partition_columns(
    plan: RulePlan, delta_pos: int
) -> Optional[Tuple[int, ...]]:
    """The delta columns to hash on, or ``None`` for whole-row hashing.

    Only meaningful when the delta literal *drives* the join
    (``plan.steps[0].role == delta_pos`` — the partition executors
    decline otherwise): the key is the delta columns whose stored slots
    feed the first subsequent probe, i.e. the join key the partitioned
    rows will actually be probed *from*.  Plans whose later steps read
    nothing from the delta (cross products, constant-only filters) fall
    back to whole-row hashing — any disjoint assignment is correct, the
    key choice only shapes locality.
    """
    first = plan.steps[0]
    slot_to_col: Dict[int, int] = {}
    for pos, tag, payload in first.post_ops:
        if tag == O_STORE:
            slot_to_col[payload] = pos
    if not slot_to_col:
        return None
    for step in plan.steps[1:]:
        builders = step.key_builders
        if not builders:
            continue
        cols = [
            slot_to_col[payload]
            for tag, payload in builders
            if tag == K_SLOT and payload in slot_to_col
        ]
        if cols:
            return tuple(cols)
    return None


def split_indices(
    items, cols: Optional[Tuple[int, ...]], nparts: int
) -> List[List[int]]:
    """Disjoint index buckets for ``items`` under the hash assignment.

    Returns ``nparts`` lists of positions into ``items``; every item
    lands in exactly one bucket.  ``cols`` selects the key columns
    (``None`` hashes the whole item).  Works identically on term facts
    and interned rows — the assignment is computed on the parent side
    only, so it never has to agree across processes, just be a
    function of the item.
    """
    buckets: List[List[int]] = [[] for _ in range(nparts)]
    if cols is None:
        for i, item in enumerate(items):
            buckets[hash(item) % nparts].append(i)
    elif len(cols) == 1:
        c = cols[0]
        for i, item in enumerate(items):
            buckets[hash(item[c]) % nparts].append(i)
    else:
        for i, item in enumerate(items):
            buckets[hash(tuple(item[j] for j in cols)) % nparts].append(i)
    return buckets


def _delta_facts(delta) -> List[FactTuple]:
    """The delta's facts in log order (term tuples)."""
    if type(delta) is RelationView:
        return delta.scan()
    return list(delta._log)


def _delta_rows(delta) -> Optional[List[RowTuple]]:
    """The delta's facts in log order as interned rows, or ``None``."""
    if type(delta) is RelationView:
        parent = delta.relation
        last = parent._last_rows
        if last is not None and last[0] == delta.start and last[1] == delta.stop:
            return last[2]
        cols = parent.ensure_columns()
        if cols is None:
            return None
        return list(zip(*(col[delta.start : delta.stop] for col in cols)))
    cols = delta.ensure_columns()
    if cols is None:
        return None
    return list(zip(*cols))


def _facts_partition(name: str, arity: int, facts: List[FactTuple]) -> Relation:
    """A throwaway relation holding one tuple-mode delta partition.

    The facts come from a relation log, so they are already distinct;
    the tuple set and log are populated directly.
    """
    rel = Relation(name, arity)
    rel._tuples = set(facts)
    rel._logrows = facts
    return rel


def _rows_partition(
    name: str, arity: int, rows: List[RowTuple], dictionary
) -> Relation:
    """A throwaway relation holding one columnar delta partition.

    Built columns-first: the rows are already-interned ids, so the
    partition shares the run's dictionary and the columnar executor
    reads it like any other source.  The term-tuple mirror stays
    pending and is only decoded if a tuple fallback actually reads it.
    """
    rel = Relation(name, arity, dictionary)
    rel._cols = [array("q", col) for col in zip(*rows)]
    rel._pending_n = len(rows)
    return rel


def columnar_capable(
    plan: RulePlan, db: Database, overrides
) -> bool:
    """Whether :func:`~repro.engine.columnar.execute_columnar` can run.

    Replays the kernel's zero-side-effect capability pass (eligible
    plan shape, a database dictionary, every present source columnar
    and on the *same* dictionary) without executing anything.  The
    partition executors check this once per variant on the calling
    thread: capability is identical for every partition (the partition
    relations share the run's dictionary by construction), so a
    partitioned columnar call can never be surprised by a tuple
    fallback mid-flight.
    """
    from repro.engine.columnar import _compile_kernel

    kernel = plan._columnar
    if kernel is None:
        kernel = _compile_kernel(plan)
        plan._columnar = kernel
    if kernel is False:
        return False
    dictionary = db.dictionary
    if dictionary is None:
        return False
    for step in plan.steps:
        rel = None
        if step.role is not None and overrides is not None:
            rel = overrides.get(step.role)
        if rel is None:
            rel = db.get(step.name, step.arity)
        if rel is not None and (
            step.arity == 0
            or getattr(rel, "dictionary", None) is not dictionary
        ):
            return False
    return True


def prewarm_sources(
    plan: RulePlan, db: Database, overrides, columnar: bool
) -> None:
    """Build every lazy structure the plan's steps will read, up front.

    The thread partition executor calls this on the calling thread
    before fanning out: :meth:`Relation.col_index` and
    :meth:`Relation.col_set` extend in place from a watermark, which is
    only safe with a single observer — two partitions racing the same
    stale watermark would double-append row positions.  Warming is
    pure caching (no counters move), so it cannot perturb parity.
    """
    for step in plan.steps:
        rel = None
        if step.role is not None and overrides is not None:
            rel = overrides.get(step.role)
        if rel is None:
            rel = db.get(step.name, step.arity)
        if rel is None or len(rel) == 0:
            continue
        if columnar:
            if step.arity == 0 or getattr(rel, "dictionary", None) is None:
                continue
            if step.key_builders is None or step.const_key is not None:
                parent = rel.relation if type(rel) is RelationView else rel
                parent.ensure_columns()
            if step.key_builders is not None:
                if step.all_bound:
                    rel.col_set()
                else:
                    rel.col_index(step.key_positions)
        else:
            if step.key_builders is None:
                rel.scan()
            elif step.all_bound:
                rel.fact_set()
            else:
                rel.ensure_index(step.key_positions)


# ----------------------------------------------------------------------
# Partition executors
# ----------------------------------------------------------------------


def make_partition_executor(
    partitions: int,
    backend_name: str,
    exec_mode: str = "tuple",
    planner: Optional[str] = None,
) -> Optional["PartitionExecutor"]:
    """The partition executor for a component run, or ``None``.

    ``None`` (``partitions <= 1``) means the run takes today's
    unpartitioned path with zero overhead.  The executor family
    follows the SCC-level backend name so one knob pair describes the
    whole execution: ``backend=process, partitions=4`` partitions with
    processes, everything else partitions with the cheaper mechanism.
    """
    if partitions <= 1:
        return None
    if backend_name == "process":
        return ProcessPartitionExecutor(partitions, exec_mode, planner)
    if backend_name == "thread":
        return ThreadPartitionExecutor(partitions)
    return SerialPartitionExecutor(partitions)


class PartitionExecutor:
    """Shared driver: split a variant's delta, run the plan per partition.

    :meth:`run` returns the concatenated emissions (term facts in tuple
    mode, interned rows in columnar mode) in partition order, or
    ``None`` when this call cannot (or should not) be partitioned —
    the caller then executes the variant exactly as ``partitions=1``
    would.  Decline conditions depend only on the plan, the delta, and
    the execution mode — never on the executor family — so the
    ``partition_rounds`` counter agrees across backends.
    """

    def __init__(self, partitions: int):
        self.nparts = partitions

    def run(
        self,
        plan: RulePlan,
        db: Database,
        overrides,
        delta_pos: int,
        stats: EvalStats,
        columnar: bool,
    ):
        steps = plan.steps
        if not steps or steps[0].role != delta_pos:
            # Partitioning only pays (and only prunes probes) when the
            # delta drives the join; a probed delta would make every
            # partition redo the full outer loop.
            return None
        delta = overrides.get(delta_pos)
        if delta is None or delta.arity == 0 or len(delta) < 2:
            return None
        if columnar:
            if not columnar_capable(plan, db, overrides):
                return None
            items = _delta_rows(delta)
            if items is None:
                return None
        else:
            items = _delta_facts(delta)
        if self._declines(db, overrides):
            return None
        cols = partition_columns(plan, delta_pos)
        # Hash on the term facts in BOTH modes: interned ids are
        # insertion-order artifacts, so hashing them would give the
        # columnar and tuple executors different bucket assignments —
        # and therefore different probe totals and skew — for the same
        # data.  The log's term tuples are position-aligned with the
        # rows, so the assignment carries over index for index.
        keys = _delta_facts(delta) if columnar else items
        buckets = split_indices(keys, cols, self.nparts)
        largest = max(len(b) for b in buckets)
        skew = largest * self.nparts / len(items)
        if skew > stats.partition_skew:
            stats.partition_skew = skew
        return self._execute(
            plan, db, overrides, delta_pos, delta, items, buckets, stats, columnar
        )

    def _declines(self, db: Database, overrides) -> bool:
        return False

    def _partition_override(
        self, overrides, delta_pos: int, delta, items, bucket, columnar: bool
    ):
        part_items = [items[i] for i in bucket]
        if columnar:
            part = _rows_partition(
                delta.name, delta.arity, part_items, delta.dictionary
            )
        else:
            part = _facts_partition(delta.name, delta.arity, part_items)
        out = dict(overrides)
        out[delta_pos] = part
        return out

    def _run_one(
        self, plan, db, overrides, delta_pos, delta, items, bucket, stats, columnar
    ) -> list:
        """One partition, on the current thread, counting into ``stats``."""
        from repro.engine.columnar import execute_columnar

        od = self._partition_override(
            overrides, delta_pos, delta, items, bucket, columnar
        )
        if columnar:
            rows = execute_columnar(plan, db, od, stats)
            if rows is None:  # unreachable after columnar_capable(); stay safe
                facts: List[FactTuple] = []
                plan.execute(db, od, facts.append, stats)
                intern = db.dictionary.intern
                rows = [tuple(intern(t) for t in fact) for fact in facts]
            return rows
        emitted: List[FactTuple] = []
        plan.execute(db, od, emitted.append, stats)
        return emitted

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class SerialPartitionExecutor(PartitionExecutor):
    """Partitions run in order on the calling thread.

    The reference interleaving: emissions and probe accounting are
    exactly what the parallel executors reproduce at their barriers.
    Also the executor forced inside process-pool workers, where
    spawning children is off the table.
    """

    def _execute(
        self, plan, db, overrides, delta_pos, delta, items, buckets, stats, columnar
    ) -> list:
        out: list = []
        for bucket in buckets:
            if not bucket:
                continue
            out.extend(
                self._run_one(
                    plan, db, overrides, delta_pos, delta, items, bucket,
                    stats, columnar,
                )
            )
        return out


class ThreadPartitionExecutor(PartitionExecutor):
    """Partitions run on a per-component thread pool.

    The pool is built lazily on the first partitioned variant and
    reused across rounds (the component run closes it).  Each
    partition counts probes into a private stats object, absorbed at
    the barrier in partition order; shared lazy structures are
    pre-warmed on the calling thread first (see
    :func:`prewarm_sources`).  GIL-bound like the thread backend, but
    free of cross-process copies.
    """

    def __init__(self, partitions: int):
        super().__init__(partitions)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _execute(
        self, plan, db, overrides, delta_pos, delta, items, buckets, stats, columnar
    ) -> list:
        prewarm_sources(plan, db, overrides, columnar)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.nparts)
        work = [bucket for bucket in buckets if bucket]
        locals_ = [EvalStats() for _ in work]
        futures = [
            self._pool.submit(
                self._run_one,
                plan, db, overrides, delta_pos, delta, items, bucket,
                locals_[i], columnar,
            )
            for i, bucket in enumerate(work)
        ]
        out: list = []
        for future, local in zip(futures, locals_):  # partition order
            out.extend(future.result())
            stats.probes += local.probes
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Process partition workers
# ----------------------------------------------------------------------


def _partition_worker(conn, exec_mode: str, planner: Optional[str]) -> None:
    """Worker-process loop for :class:`ProcessPartitionExecutor`.

    Module-level so it imports cleanly under any multiprocessing start
    method.  The worker keeps a private database mirroring the parent's
    read relations (grown by append-only ``sync`` suffixes, so log
    offsets agree with the parent's) and a private plan cache warm
    across rounds.  It may execute columnar internally, but results
    cross back as *decoded term facts* — worker-side intern ids mean
    nothing to the parent.  Probe counts ride along; every other
    counter is owned by the parent (which fetched the plan itself), so
    plan-cache statistics stay identical to ``partitions=1``.
    """
    from repro.engine.columnar import decode_rows, execute_columnar
    from repro.engine.plan import PlanCache

    db = Database()
    if exec_mode == "columnar":
        db.ensure_dictionary()
    cache = PlanCache(planner or "greedy")
    scratch = EvalStats()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "close":
            return
        try:
            if kind == "sync":
                for (name, arity), facts in msg[1].items():
                    rel = db.relation(name, arity)
                    for fact in facts:
                        rel.add(fact)
                continue
            _, rule, roles, encoded = msg
            overrides = {}
            for pos, spec in encoded:
                if spec[0] == "window":
                    _, name, arity, start, stop = spec
                    overrides[pos] = db.relation(name, arity).view(start, stop)
                else:  # ("rows", name, arity, positions)
                    _, name, arity, positions = spec
                    log = db.relation(name, arity)._log
                    part = _facts_partition(
                        name, arity, [log[i] for i in positions]
                    )
                    if exec_mode == "columnar":
                        part.dictionary = db.dictionary
                    overrides[pos] = part
            stats = EvalStats()
            plan = cache.plan(rule, roles, scratch, db=db, overrides=overrides)
            facts_out: Optional[List[FactTuple]] = None
            if exec_mode == "columnar":
                rows = execute_columnar(plan, db, overrides, stats)
                if rows is not None:
                    facts_out = decode_rows(db.dictionary.terms, rows)
            if facts_out is None:
                facts_out = []
                plan.execute(db, overrides, facts_out.append, stats)
            conn.send(("ok", facts_out, stats.probes))
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            try:
                conn.send(("err", repr(exc)))
            except (OSError, ValueError):
                return


class _PartitionGroupBroken(RuntimeError):
    """A partition worker died or misbehaved; the group is unusable."""


class ProcessPartitionExecutor(PartitionExecutor):
    """Partitions run on a persistent group of worker processes.

    One worker per partition, created lazily on the first partitioned
    variant and kept for the whole component fixpoint.  Read relations
    ship **once per round, as log suffixes**: the parent tracks how
    much of each relation every worker has seen and broadcasts only the
    append-only tail, so a static relation crosses the boundary exactly
    once and a growing head relation ships only its last round's delta.
    Delta partitions then travel as plain log positions into the
    already-synced copy — no fact is ever shipped twice.

    On any worker failure the group is terminated, ``backend_fallbacks``
    is counted, and the component degrades to unpartitioned execution
    for its remaining rounds — same results, no parallelism, mirroring
    the process backend's retry exhaustion story.
    """

    def __init__(
        self, partitions: int, exec_mode: str, planner: Optional[str]
    ):
        super().__init__(partitions)
        self.exec_mode = exec_mode
        self.planner = planner
        self._workers: Optional[List[tuple]] = None  # (Process, Connection)
        self._sent: Dict[Signature, int] = {}
        self._failed = False

    def _declines(self, db: Database, overrides) -> bool:
        if self._failed:
            return True
        for view in overrides.values():
            # Everything shipped is reconstructed from database logs on
            # the far side; an override that is not a window over a live
            # database relation (ad-hoc relations from maintenance
            # passes) has no wire form here.
            if type(view) is not RelationView:
                return True
            if db.get(view.name, view.arity) is not view.relation:
                return True
        return False

    def _ensure_workers(self) -> List[tuple]:
        if self._workers is None:
            ctx = multiprocessing.get_context()
            workers = []
            for _ in range(self.nparts):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_partition_worker,
                    args=(child_conn, self.exec_mode, self.planner),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                workers.append((proc, parent_conn))
            self._workers = workers
        return self._workers

    def _sync(self, plan, db: Database, overrides) -> None:
        """Broadcast un-shipped log suffixes of every step source."""
        needed: Dict[Signature, Relation] = {}
        for step in plan.steps:
            src = None
            if step.role is not None:
                src = overrides.get(step.role)
            if src is not None:
                rel = src.relation
            else:
                rel = db.get(step.name, step.arity)
                if rel is None:
                    continue
            needed[(rel.name, rel.arity)] = rel
        payload = {}
        for sig, rel in needed.items():
            log = rel._log
            sent = self._sent.get(sig, 0)
            if len(log) > sent:
                payload[sig] = log[sent:]
                self._sent[sig] = len(log)
        if payload:
            for _, conn in self._workers:
                conn.send(("sync", payload))

    def _execute(
        self, plan, db, overrides, delta_pos, delta, items, buckets, stats, columnar
    ):
        try:
            self._ensure_workers()
            self._sync(plan, db, overrides)
            window_spec = [
                (pos, ("window", v.name, v.arity, v.start, v.stop))
                for pos, v in overrides.items()
                if pos != delta_pos
            ]
            base = delta.start  # log offsets are absolute parent positions
            jobs = []
            for wi, bucket in enumerate(buckets):
                if not bucket:
                    continue
                encoded = window_spec + [
                    (
                        delta_pos,
                        ("rows", delta.name, delta.arity,
                         [base + i for i in bucket]),
                    )
                ]
                conn = self._workers[wi][1]
                conn.send(("exec", plan.rule, plan.roles, encoded))
                jobs.append(conn)
            out: list = []
            for conn in jobs:  # partition order, deterministic
                reply = conn.recv()
                if reply[0] != "ok":
                    raise _PartitionGroupBroken(reply[1])
                _, facts, probes = reply
                out.extend(facts)
                stats.probes += probes
        except (
            _PartitionGroupBroken, EOFError, OSError, BrokenPipeError
        ):
            self._abandon()
            self._failed = True
            stats.backend_fallbacks += 1
            return None  # caller re-runs the variant unpartitioned
        if columnar:
            intern = db.dictionary.intern
            return [tuple(intern(t) for t in fact) for fact in out]
        return out

    def _abandon(self) -> None:
        if self._workers is None:
            return
        for proc, conn in self._workers:
            try:
                conn.close()
            except OSError:
                pass
            proc.terminate()
        for proc, _ in self._workers:
            proc.join(timeout=1.0)
        self._workers = None

    def close(self) -> None:
        if self._workers is None:
            return
        for _, conn in self._workers:
            try:
                conn.send(("close",))
            except (OSError, BrokenPipeError):
                pass
        for proc, conn in self._workers:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            try:
                conn.close()
            except OSError:
                pass
        self._workers = None
        self._sent = {}
