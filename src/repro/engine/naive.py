"""Naive bottom-up fixpoint evaluation.

Re-evaluates every rule of a strongly connected component over the full
database until no new facts appear, component by component in
topological depth order.  Quadratically redundant within a component,
but trivially correct — it is the oracle the test suite checks every
other evaluator and every program transformation against.

The stratification and per-component driver live in the shared
:class:`~repro.engine.scheduler.SCCScheduler`; this module is the thin
frontend that selects ``mode="naive"``.  By default each rule is
compiled once into a slot-based :class:`~repro.engine.plan.RulePlan`
reused across all fixpoint rounds; ``use_plans=False`` selects the
legacy dict-based interpreter (same fixpoint, same counters), kept for
differential testing.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.datalog.program import Program
from repro.engine.database import Database, load_program_facts
from repro.engine.joins import instantiate_head, join_rule
from repro.engine.scheduler import SCCScheduler
from repro.engine.stats import EvalStats, NonTerminationError


def naive_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_plans: bool = True,
    planner: Optional[str] = None,
    jobs: Optional[int] = None,
    backend=None,
    max_seconds: Optional[float] = None,
    exec: Optional[str] = None,
    partitions: Optional[int] = None,
) -> Tuple[Database, EvalStats]:
    """Evaluate ``program`` over ``edb`` to fixpoint, naively.

    Returns ``(database, stats)`` where the database holds EDB and all
    derived facts.  ``max_iterations`` (per-SCC fixpoint rounds) and
    ``max_facts`` (total derived facts) guard against the genuinely
    diverging programs in the paper (Counting on left-linear rules) by
    raising :class:`~repro.engine.stats.NonTerminationError`.
    ``planner`` selects greedy or cost-based join ordering for compiled
    plans, ``jobs`` evaluates independent SCCs concurrently, and
    ``backend`` picks the executor those batches run on, and
    ``max_seconds`` arms the per-component wall-clock watchdog, and
    ``exec`` picks columnar or tuple plan execution (see
    :func:`repro.engine.seminaive.seminaive_eval` for all the knobs).
    Naive mode keeps tuple-at-a-time fixpoints internally (it is the
    oracle); ``exec`` still controls the non-recursive passes.
    ``partitions`` is accepted for interface parity but naive fixpoints
    ignore it — there is no delta to split, and the oracle stays
    maximally simple.
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    stats.facts += load_program_facts(program, db)

    scheduler = SCCScheduler(
        program,
        mode="naive",
        use_plans=use_plans,
        planner=planner,
        jobs=jobs,
        backend=backend,
        max_iterations=max_iterations,
        max_facts=max_facts,
        max_seconds=max_seconds,
        exec=exec,
        partitions=partitions,
    )
    scheduler.run(db, stats)

    stats.seconds = time.perf_counter() - start
    return db, stats


def naive_fixpoint_reference(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
) -> Tuple[Database, EvalStats]:
    """A scheduler-free whole-program naive fixpoint (the outer oracle).

    Since the unified evaluation core, :func:`naive_eval` — the
    differential-test oracle — runs through the same
    :class:`~repro.engine.scheduler.SCCScheduler` as the evaluators it
    checks, so a hypothetical stratification or batching bug would hit
    oracle and testee alike.  This function restores an independent
    reference: **no** dependency graph, **no** SCCs, **no** depth
    batches, **no** compiled plans — every proper rule is re-evaluated
    over the whole database through the legacy
    :func:`~repro.engine.joins.join_rule` interpreter until a full
    round derives nothing new.  Maximally redundant (the global
    quadratic loop the paper's Section 1 contrasts against), but its
    correctness rests only on ``join_rule`` and :class:`Relation.add`.

    Returns ``(database, stats)``.  The derived *database* must equal
    every other evaluator's; the *counters* intentionally do not —
    ``iterations`` counts global rounds, not per-component rounds, and
    ``inferences`` includes the cross-component rederivations the
    stratified schedule avoids.  The differential fuzz suite compares
    fixpoints, not counters, against this reference.
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    stats.facts += load_program_facts(program, db)
    rules = list(program.proper_rules())

    while True:
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise NonTerminationError(
                f"evaluation exceeded {max_iterations} iterations",
                stats.iterations,
                stats.facts,
            )
        derived: List[Tuple[Tuple[str, int], tuple]] = []
        for rule in rules:
            sig = rule.head.signature

            def on_match(bindings, rule=rule, sig=sig):
                stats.inferences += 1
                derived.append((sig, instantiate_head(rule, bindings)))

            join_rule(db, rule, on_match)
        changed = False
        for sig, fact in derived:
            if db.relation(*sig).add(fact):
                stats.record_fact(sig)
                changed = True
                if max_facts is not None and stats.facts > max_facts:
                    raise NonTerminationError(
                        f"evaluation exceeded {max_facts} facts",
                        stats.iterations,
                        stats.facts,
                    )
        if not changed:
            break

    stats.seconds = time.perf_counter() - start
    return db, stats
