"""Naive bottom-up fixpoint evaluation.

Re-evaluates every rule over the full database until no new facts
appear.  Quadratically redundant, but trivially correct — it is the
oracle the test suite checks every other evaluator and every program
transformation against.

By default each rule is compiled once into a slot-based
:class:`~repro.engine.plan.RulePlan` reused across all fixpoint
rounds; ``use_plans=False`` selects the legacy dict-based interpreter
(same fixpoint, same counters), kept for differential testing.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.datalog.program import Program
from repro.engine.cost import resolve_planner
from repro.engine.database import Database, load_program_facts
from repro.engine.joins import instantiate_head, join_rule
from repro.engine.plan import PlanCache
from repro.engine.stats import EvalStats, NonTerminationError


def naive_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_plans: bool = True,
    planner: Optional[str] = None,
) -> Tuple[Database, EvalStats]:
    """Evaluate ``program`` over ``edb`` to fixpoint, naively.

    Returns ``(database, stats)`` where the database holds EDB and all
    derived facts.  ``max_iterations``/``max_facts`` guard against the
    genuinely diverging programs in the paper (Counting on left-linear
    rules) by raising :class:`NonTerminationError`.  ``planner``
    selects greedy or cost-based join ordering for compiled plans (see
    :func:`repro.engine.seminaive.seminaive_eval`).
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    initial = load_program_facts(program, db)
    stats.facts += initial

    rules = program.proper_rules()
    cache = PlanCache(resolve_planner(planner)) if use_plans else None
    changed = True
    while changed:
        changed = False
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise NonTerminationError(
                f"naive evaluation exceeded {max_iterations} iterations",
                stats.iterations,
                stats.facts,
            )
        new_facts = []
        for rule in rules:
            head = rule.head

            if cache is not None:
                emitted = []
                plan = cache.plan(rule, (), stats, db=db)
                plan.execute(db, None, emitted.append, stats)
                if plan.estimated_rows is not None:
                    stats.record_estimate(plan.estimated_rows, len(emitted))
                stats.inferences += len(emitted)
                predicate, arity = head.predicate, head.arity
                new_facts.extend((predicate, arity, fact) for fact in emitted)
            else:
                def on_match(bindings, rule=rule, head=head):
                    stats.inferences += 1
                    fact = instantiate_head(rule, bindings)
                    new_facts.append((head.predicate, head.arity, fact))

                join_rule(db, rule, on_match)
        for predicate, arity, fact in new_facts:
            if db.relation(predicate, arity).add(fact):
                stats.record_fact((predicate, arity))
                changed = True
                if max_facts is not None and stats.facts > max_facts:
                    raise NonTerminationError(
                        f"naive evaluation exceeded {max_facts} facts",
                        stats.iterations,
                        stats.facts,
                    )
    stats.seconds = time.perf_counter() - start
    return db, stats
