"""Naive bottom-up fixpoint evaluation.

Re-evaluates every rule of a strongly connected component over the full
database until no new facts appear, component by component in
topological depth order.  Quadratically redundant within a component,
but trivially correct — it is the oracle the test suite checks every
other evaluator and every program transformation against.

The stratification and per-component driver live in the shared
:class:`~repro.engine.scheduler.SCCScheduler`; this module is the thin
frontend that selects ``mode="naive"``.  By default each rule is
compiled once into a slot-based :class:`~repro.engine.plan.RulePlan`
reused across all fixpoint rounds; ``use_plans=False`` selects the
legacy dict-based interpreter (same fixpoint, same counters), kept for
differential testing.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.datalog.program import Program
from repro.engine.database import Database, load_program_facts
from repro.engine.scheduler import SCCScheduler
from repro.engine.stats import EvalStats


def naive_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_plans: bool = True,
    planner: Optional[str] = None,
    jobs: Optional[int] = None,
) -> Tuple[Database, EvalStats]:
    """Evaluate ``program`` over ``edb`` to fixpoint, naively.

    Returns ``(database, stats)`` where the database holds EDB and all
    derived facts.  ``max_iterations`` (per-SCC fixpoint rounds) and
    ``max_facts`` (total derived facts) guard against the genuinely
    diverging programs in the paper (Counting on left-linear rules) by
    raising :class:`~repro.engine.stats.NonTerminationError`.
    ``planner`` selects greedy or cost-based join ordering for compiled
    plans and ``jobs`` evaluates independent SCCs concurrently (see
    :func:`repro.engine.seminaive.seminaive_eval` for both knobs).
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    stats.facts += load_program_facts(program, db)

    scheduler = SCCScheduler(
        program,
        mode="naive",
        use_plans=use_plans,
        planner=planner,
        jobs=jobs,
        max_iterations=max_iterations,
        max_facts=max_facts,
    )
    scheduler.run(db, stats)

    stats.seconds = time.perf_counter() - start
    return db, stats
