"""Semi-naive bottom-up evaluation with SCC stratification.

This is the evaluator the paper's cost claims refer to ("the semi-naive
bottom-up evaluation of the new program", Section 1).  The program's
predicate dependency graph is split into strongly connected components;
components are evaluated in topological order, and recursive components
iterate with delta relations so each rule instantiation uses at least
one fact that is new in the current round.

For a rule with recursive body occurrences at positions ``i1 < ... < im``
and iteration ``t``, the standard duplicate-free decomposition is used:
one delta rule per occurrence ``ij``, reading

* the *full* relation (through ``t-1``) at positions before ``ij``,
* the *delta* (new at ``t-1``) at ``ij``,
* the *old* relation (through ``t-2``) at positions after ``ij``.

Two execution backends share that decomposition.  The default compiles
each (rule, delta-configuration) pair once into a slot-based
:class:`~repro.engine.plan.RulePlan` (cached across rounds) and reads
deltas as zero-copy :class:`~repro.engine.database.RelationView` slices
of each relation's append-only log.  ``use_plans=False`` selects the
legacy dict-based interpreter from :mod:`repro.engine.joins`, kept as
the reference implementation for differential testing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dependency import DependencyGraph
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.engine.cost import resolve_planner
from repro.engine.database import Database, FactTuple, Relation, load_program_facts
from repro.engine.joins import instantiate_head, join_rule, relation_from_tuples
from repro.engine.plan import PlanCache, RoleSpec
from repro.engine.stats import EvalStats, NonTerminationError

Signature = Tuple[str, int]


def seminaive_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_plans: bool = True,
    planner: Optional[str] = None,
) -> Tuple[Database, EvalStats]:
    """Evaluate ``program`` over ``edb`` to fixpoint, semi-naively.

    Returns ``(database, stats)``.  The guards raise
    :class:`NonTerminationError` for diverging programs (used by the
    Counting experiments in Section 6.4).  ``use_plans=False`` runs the
    legacy interpreter instead of compiled plans (same fixpoint, same
    counters; used by the differential fuzz tests).

    ``planner`` selects the join-order strategy for compiled plans:
    ``"greedy"`` (the deterministic syntactic heuristic) or ``"cost"``
    (statistics-driven ordering with drift-triggered re-planning
    between delta rounds).  ``None`` reads the ``REPRO_PLANNER``
    environment variable, defaulting to greedy.  Either planner
    derives the identical fixpoint with identical ``facts``/
    ``inferences`` counters; only join order and probe counts differ.
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    stats.facts += load_program_facts(program, db)

    graph = DependencyGraph(program)
    rules_by_head: Dict[Signature, List[Rule]] = {}
    for rule in program.proper_rules():
        rules_by_head.setdefault(rule.head.signature, []).append(rule)

    cache = PlanCache(resolve_planner(planner)) if use_plans else None

    for scc in graph.sccs():
        scc_set = set(scc)
        scc_rules = [
            rule for sig in scc for rule in rules_by_head.get(sig, ())
        ]
        if not scc_rules:
            continue
        recursive = any(
            any(lit.signature in scc_set for lit in rule.body) for rule in scc_rules
        )
        if not recursive:
            _eval_once(db, scc_rules, stats, max_facts, cache)
        elif cache is not None:
            _eval_recursive(
                db, scc_rules, scc_set, stats, max_iterations, max_facts, cache
            )
        else:
            _eval_recursive_interpreted(
                db, scc_rules, scc_set, stats, max_iterations, max_facts
            )

    stats.seconds = time.perf_counter() - start
    return db, stats


def _check_fact_budget(stats: EvalStats, max_facts: Optional[int]) -> None:
    if max_facts is not None and stats.facts > max_facts:
        raise NonTerminationError(
            f"semi-naive evaluation exceeded {max_facts} facts",
            stats.iterations,
            stats.facts,
        )


def _eval_once(
    db: Database,
    rules: List[Rule],
    stats: EvalStats,
    max_facts: Optional[int],
    cache: Optional[PlanCache],
) -> None:
    """Single pass for a non-recursive component."""
    stats.iterations += 1
    for rule in rules:
        sig = rule.head.signature
        rel = db.relation(*sig)

        if cache is not None:
            emitted: List[FactTuple] = []
            plan = cache.plan(rule, (), stats, db=db)
            plan.execute(db, None, emitted.append, stats)
            if plan.estimated_rows is not None:
                stats.record_estimate(plan.estimated_rows, len(emitted))
            stats.inferences += len(emitted)
            for fact in emitted:
                if rel.add(fact):
                    stats.record_fact(sig)
                    _check_fact_budget(stats, max_facts)
        else:
            def on_match(bindings, rule=rule, rel=rel, sig=sig):
                stats.inferences += 1
                fact = instantiate_head(rule, bindings)
                if rel.add(fact):
                    stats.record_fact(sig)
                    _check_fact_budget(stats, max_facts)

            join_rule(db, rule, on_match)


def _eval_recursive(
    db: Database,
    rules: List[Rule],
    scc_set: Set[Signature],
    stats: EvalStats,
    max_iterations: Optional[int],
    max_facts: Optional[int],
    cache: PlanCache,
) -> None:
    """Semi-naive iteration for one recursive component (compiled plans).

    Neither deltas nor "old" relations are ever materialized: at round
    ``t`` a component relation's append-only log holds the facts
    through ``t-1`` in derivation order, so *delta* (new at ``t-1``)
    is the log slice ``[delta_start:len]`` and *old* (through ``t-2``)
    is the prefix ``[0:delta_start]`` — both zero-copy
    :class:`RelationView` windows.
    """
    rels: Dict[Signature, Relation] = {sig: db.relation(*sig) for sig in scc_set}
    # Facts present before the first round seed the delta (magic seeds
    # and facts from earlier strata drive round one); delta_start marks
    # the log offset where the current delta begins.
    delta_start: Dict[Signature, int] = {sig: 0 for sig in scc_set}

    # One delta decomposition per recursive occurrence per rule; each
    # (rule, roles) pair is compiled once by the cache and fetched per
    # round (the refetch is what the plan_cache_hits counter measures).
    # Rules with no recursive body literal have no entry; they fire
    # only in the first round (see the dispatch below).
    variants: Dict[Rule, List[Tuple[RoleSpec, List[Tuple[int, str, Signature]]]]] = {}
    for rule in rules:
        positions = [
            i for i, lit in enumerate(rule.body) if lit.signature in scc_set
        ]
        if not positions:
            continue
        rule_variants = []
        for j, _ in enumerate(positions):
            roles = tuple(
                (other, "delta" if k == j else "old")
                for k, other in enumerate(positions)
                if k >= j
            )
            binding = [
                (pos, role, rule.body[pos].signature) for pos, role in roles
            ]
            rule_variants.append((roles, binding))
        variants[rule] = rule_variants

    first_round = True
    while True:
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise NonTerminationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations",
                stats.iterations,
                stats.facts,
            )
        # Log lengths at round start; nothing is appended mid-round, so
        # views and the full relations both expose exactly "through t-1".
        stop = {sig: len(rels[sig]) for sig in scc_set}
        delta_views = {
            sig: rels[sig].view(delta_start[sig], stop[sig]) for sig in scc_set
        }
        old_views = {
            sig: rels[sig].view(0, delta_start[sig]) for sig in scc_set
        }
        new: Dict[Signature, Set[FactTuple]] = {sig: set() for sig in scc_set}

        for rule in rules:
            sig = rule.head.signature
            emitted: List[FactTuple] = []
            emit = emitted.append

            rule_variants = variants.get(rule)
            if rule_variants is None:
                # Rules with no recursive body literal fire only once, in
                # the first round (their input never changes afterwards).
                if first_round:
                    plan = cache.plan(rule, (), stats, db=db)
                    plan.execute(db, None, emit, stats)
                    if plan.estimated_rows is not None:
                        stats.record_estimate(plan.estimated_rows, len(emitted))
            else:
                for roles, binding in rule_variants:
                    overrides = {
                        pos: delta_views[body_sig]
                        if role == "delta"
                        else old_views[body_sig]
                        for pos, role, body_sig in binding
                    }
                    # Re-fetching the plan every round is what lets the
                    # cost planner notice cardinality drift and re-plan.
                    plan = cache.plan(
                        rule, roles, stats, db=db, overrides=overrides
                    )
                    before = len(emitted)
                    plan.execute(db, overrides, emit, stats)
                    if plan.estimated_rows is not None:
                        stats.record_estimate(
                            plan.estimated_rows, len(emitted) - before
                        )
            if emitted:
                stats.inferences += len(emitted)
                new[sig] |= set(emitted) - rels[sig].tuples

        changed = False
        # Advance: delta becomes old (a log-offset bump); full absorbs new.
        for sig in scc_set:
            delta_start[sig] = stop[sig]
        for sig in scc_set:
            fresh = new[sig]
            if fresh:
                changed = True
                rel = rels[sig]
                for fact in fresh:
                    if rel.add(fact):
                        stats.record_fact(sig)
                _check_fact_budget(stats, max_facts)
        first_round = False
        if not changed:
            break


def _eval_recursive_interpreted(
    db: Database,
    rules: List[Rule],
    scc_set: Set[Signature],
    stats: EvalStats,
    max_iterations: Optional[int],
    max_facts: Optional[int],
) -> None:
    """Semi-naive iteration via the legacy dict-based interpreter.

    Reference implementation for the differential fuzz tests: same
    decomposition as :func:`_eval_recursive`, executed through
    :func:`repro.engine.joins.join_rule` with per-round materialized
    delta relations.
    """
    old: Dict[Signature, Relation] = {
        sig: relation_from_tuples(sig[0], sig[1], ()) for sig in scc_set
    }
    # Facts of the component present before the first round seed the delta,
    # so magic seeds and facts from earlier strata drive round one.
    delta: Dict[Signature, Set[FactTuple]] = {
        sig: set(db.relation(*sig).tuples) for sig in scc_set
    }

    recursive_positions: Dict[Rule, List[int]] = {
        rule: [i for i, lit in enumerate(rule.body) if lit.signature in scc_set]
        for rule in rules
    }

    first_round = True
    while True:
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise NonTerminationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations",
                stats.iterations,
                stats.facts,
            )
        delta_rels = {
            sig: relation_from_tuples(sig[0], sig[1], facts)
            for sig, facts in delta.items()
        }
        new: Dict[Signature, Set[FactTuple]] = {sig: set() for sig in scc_set}

        for rule in rules:
            sig = rule.head.signature
            positions = recursive_positions[rule]

            def on_match(bindings, rule=rule, sig=sig):
                stats.inferences += 1
                fact = instantiate_head(rule, bindings)
                if fact not in db.relation(*sig).tuples:
                    new[sig].add(fact)

            if not positions:
                # Rules with no recursive body literal fire only once, in
                # the first round (their input never changes afterwards).
                if first_round:
                    join_rule(db, rule, on_match)
                continue
            for j, pos in enumerate(positions):
                overrides: Dict[int, Optional[Relation]] = {}
                for k, other in enumerate(positions):
                    if k < j:
                        overrides[other] = None  # full relation via db
                    elif k == j:
                        overrides[other] = delta_rels[rule.body[other].signature]
                    else:
                        overrides[other] = old[rule.body[other].signature]
                join_rule(db, rule, on_match, overrides)

        changed = False
        # Advance: old absorbs the previous delta; full absorbs the new facts.
        for sig in scc_set:
            for fact in delta[sig]:
                old[sig].add(fact)
        for sig in scc_set:
            fresh = new[sig]
            delta[sig] = fresh
            if fresh:
                changed = True
                rel = db.relation(*sig)
                for fact in fresh:
                    if rel.add(fact):
                        stats.record_fact(sig)
                _check_fact_budget(stats, max_facts)
        first_round = False
        if not changed:
            break
