"""Semi-naive bottom-up evaluation with SCC stratification.

This is the evaluator the paper's cost claims refer to ("the semi-naive
bottom-up evaluation of the new program", Section 1).  The program's
predicate dependency graph is split into strongly connected components;
components are evaluated in topological depth order, and recursive
components iterate with delta relations so each rule instantiation uses
at least one fact that is new in the current round.

For a rule with recursive body occurrences at positions ``i1 < ... < im``
and iteration ``t``, the standard duplicate-free decomposition is used:
one delta rule per occurrence ``ij``, reading

* the *full* relation (through ``t-1``) at positions before ``ij``,
* the *delta* (new at ``t-1``) at ``ij``,
* the *old* relation (through ``t-2``) at positions after ``ij``.

The traversal, batching, and per-component fixpoints all live in the
shared :class:`~repro.engine.scheduler.SCCScheduler`; this module is
the thin frontend that selects ``mode="seminaive"``.  Two execution
backends share the decomposition: compiled slot-based
:class:`~repro.engine.plan.RulePlan`\\ s (the default) and the legacy
dict-based interpreter from :mod:`repro.engine.joins`
(``use_plans=False``), kept as the reference implementation for
differential testing.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.datalog.program import Program
from repro.engine.database import Database, load_program_facts
from repro.engine.scheduler import SCCScheduler
from repro.engine.stats import EvalStats


def seminaive_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_plans: bool = True,
    planner: Optional[str] = None,
    jobs: Optional[int] = None,
    backend=None,
    max_seconds: Optional[float] = None,
    exec: Optional[str] = None,
    partitions: Optional[int] = None,
) -> Tuple[Database, EvalStats]:
    """Evaluate ``program`` over ``edb`` to fixpoint, semi-naively.

    Returns ``(database, stats)``.  The guards raise
    :class:`~repro.engine.stats.NonTerminationError` for diverging
    programs (used by the Counting experiments in Section 6.4):
    ``max_iterations`` caps the fixpoint rounds of any single SCC and
    ``max_facts`` caps total derived facts.
    ``use_plans=False`` runs the legacy interpreter instead of compiled
    plans (same fixpoint, same counters; used by the differential fuzz
    tests).

    ``planner`` selects the join-order strategy for compiled plans:
    ``"greedy"`` (the deterministic syntactic heuristic) or ``"cost"``
    (statistics-driven ordering with drift-triggered re-planning
    between delta rounds).  ``None`` reads the ``REPRO_PLANNER``
    environment variable, defaulting to greedy.

    ``jobs`` sets how many mutually independent SCCs (same topological
    depth batch) evaluate concurrently; ``None`` reads ``REPRO_JOBS``,
    defaulting to 1.  ``backend`` selects the executor those batches
    run on — ``"serial"``, ``"thread"`` (the default), or
    ``"process"`` (:class:`~repro.engine.backends.ProcessBackend`,
    real multi-core parallelism; components ship as declarative specs
    and workers recompile plans locally); ``None`` reads
    ``REPRO_BACKEND``.  ``max_seconds`` arms a per-component
    wall-clock watchdog (``None`` reads ``REPRO_TIMEOUT``): a
    component fixpoint that outlives its budget raises
    :class:`~repro.engine.stats.ComponentTimeout` at the next round
    boundary.  Every combination of execution backend,
    planner, and job count derives the identical fixpoint with
    identical ``facts``/``inferences``/``iterations`` counters; only
    join order, probe counts, and wall time differ.

    ``exec`` selects the execution mode for compiled plans:
    ``"columnar"`` (the default) runs rule bodies batch-at-a-time over
    interned id columns (:mod:`repro.engine.columnar`), ``"tuple"``
    forces the tuple-at-a-time executor everywhere; ``None`` reads
    ``REPRO_EXEC``.  The two modes are counter-identical — the tuple
    path is kept as the differential-fuzz oracle.

    ``partitions`` enables round-level data parallelism *inside* one
    recursive component's fixpoint: each round's delta rows are
    hash-partitioned by the plan's first probe key (whole-row hash when
    no key exists) and the same compiled plan runs on the disjoint
    partitions concurrently, merging at the round barrier
    (:mod:`repro.engine.partition`).  ``None`` reads
    ``REPRO_PARTITIONS``, defaulting to 1 — today's unpartitioned
    path.  Any value keeps ``facts``/``inferences``/``iterations``
    bit-identical to ``partitions=1``; probe counts may differ because
    per-partition index builds probe independently.
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    stats.facts += load_program_facts(program, db)

    scheduler = SCCScheduler(
        program,
        mode="seminaive",
        use_plans=use_plans,
        planner=planner,
        jobs=jobs,
        backend=backend,
        max_iterations=max_iterations,
        max_facts=max_facts,
        max_seconds=max_seconds,
        exec=exec,
        partitions=partitions,
    )
    scheduler.run(db, stats)

    stats.seconds = time.perf_counter() - start
    return db, stats
