"""Goal-directed query serving: the paper's transforms on the modern engine.

The transforms (adornment, Magic Sets, counting, factoring) historically
ran only through :func:`repro.core.pipeline.optimize` plus a
from-scratch ``seminaive_eval``.  :class:`QueryCompiler` is the serving
path: it compiles one rewritten program per **query form** — a
``(predicate, arity, adornment)`` triple — and evaluates it with
compiled :class:`~repro.engine.plan.RulePlan`s through the
:class:`~repro.engine.scheduler.SCCScheduler` against a caller-supplied
EDB, so point queries stop paying for full materialization.

**Canonical compilation.**  The compiled program must be reusable
across query constants (``t(5, Y)`` and ``t(7, Y)`` share a form), so
the compiler adorns a *canonical* goal — all-fresh variables, adorned
with the actual query's binding pattern via ``adorn(..., adornment=)``
— and applies the rewrites with ``include_seed=False``.  At query time
the seed (``m_p@ad(x̄0)``, or ``cnt_p@ad(x̄0, [])`` for counting) is
injected as a plain database *fact* carrying the actual constants, the
scheduler runs the rewritten program into a throwaway overlay database
that shares the EDB relations by reference (reads only — generated
predicate names cannot collide with validated user programs), and the
answers are read off the generated ``query`` head.  Constant-dependent
simplifications still fire: Proposition 5.2 (anonymous-variable
deletion) performs on the canonical seed variable exactly the deletion
Proposition 5.3 performs on a seed constant.

**Strategy selection** mirrors ``optimize`` and Section 6.4:

* **factored** — classification succeeded and a Section 4/5 theorem
  certifies factorability for a nontrivial adornment of the recursive
  goal predicate: factor the magic program and simplify.
* **counting** — classification certifies a right-linear unit program
  with at least one bound position and the refined counting program has
  no syntactic self-loop: evaluate the counting rewrite under a
  data-sized budget, falling back to magic (and remembering the
  divergence until the next invalidation) if it still diverges on
  cyclic data.
* **magic** — everything else that is goal-directed at all.
* **edb** — the goal is not an IDB predicate: answer straight from the
  EDB relation.
* **materialize** — base facts were asserted for IDB predicates (mixed
  predicates an upper layer did not bridge): the rewrites would miss
  them, so fall back to full evaluation plus filtering.

**Answers.**  Repeated variables and partially-ground (function-term)
goal arguments are handled by *post-filtering*: the compiled program
answers the canonical goal, each row is rebuilt into a full-arity tuple
and matched against the actual goal — exactly
:meth:`repro.engine.database.Database.query` semantics, including
``{()}``/``set()`` for ground goals.  The plain-magic program's
``query`` head spans *all* canonical variables (not just the free
ones): magic evaluation also derives goal-predicate facts for the
*other* bound values its subqueries reached, and only the full-row
match keeps them out of the answer set.  The factored and counting
heads stay free-only — their answer relations are pinned to the seed
by the theorem certificate, resp. the ``NIL`` index term.

**Invalidation.**  Compiled entries persist their plan caches across
queries (the cost planner already re-plans on >4x cardinality drift).
The entry itself is recompiled when the referenced EDB relations drift
past the same 4x factor (:data:`DRIFT_FACTOR`), and
:meth:`QueryCompiler.note_edb_change` — called by
:meth:`~repro.engine.incremental.IncrementalSession.apply_batch` after
every successful maintenance batch — drops instance-certified entries
(their factorability proof read the old EDB) and clears remembered
counting divergences (the new data may terminate).
:meth:`QueryCompiler.invalidate` drops everything (rule changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.adornment import (
    Adornment,
    adorn,
    adornment_from_query,
    split_adorned_name,
)
from repro.analysis.classify import ProgramClassification, RuleClass, classify_program
from repro.core.factoring import factor_magic
from repro.core.simplify import simplify_factored
from repro.core.theorems import FactorabilityReport, check_factorability
from repro.datalog.literals import Literal
from repro.datalog.parser import parse_query
from repro.datalog.program import Program
from repro.datalog.terms import NIL, Term, Variable
from repro.datalog.validate import ensure_no_reserved_names
from repro.engine.columnar import resolve_exec
from repro.engine.database import Database
from repro.engine.partition import resolve_partitions
from repro.engine.plan import PlanCache
from repro.engine.scheduler import SCCScheduler
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats, NonTerminationError
from repro.datalog.rules import Rule
from repro.engine.unify import match
from repro.transforms.counting import counting, counting_diverges, refine_counting
from repro.transforms.magic import QUERY_PREDICATE, magic_sets

Signature = Tuple[str, int]
QueryKey = Tuple[str, int, str]

#: Recompile a cached entry when a referenced EDB relation's cardinality
#: drifts past this factor (matches the plan cache's re-planning rule).
DRIFT_FACTOR = 4.0


@dataclass
class QueryAnswer:
    """One served query: the answers and how they were computed.

    ``answers`` are raw :class:`~repro.datalog.terms.Term` tuples over
    the goal's variables in first-occurrence order (``{()}``/``set()``
    for ground goals) — the same shape ``Database.query`` returns;
    callers unwrap constants as needed.  ``strategy`` is one of
    ``factored``/``counting``/``magic``/``edb``/``materialize`` (with
    ``counting->magic`` marking a dynamic-divergence fallback), and
    ``from_cache`` reports whether the compiled entry was reused.
    """

    goal: Literal
    answers: Set[Tuple[Term, ...]]
    strategy: str
    certified_by: Optional[str]
    stats: EvalStats
    from_cache: bool

    def values(self) -> Set[Tuple]:
        """Answers with constants unwrapped to plain Python values."""
        from repro.datalog.terms import Constant

        return {
            tuple(t.value if isinstance(t, Constant) else t for t in row)
            for row in self.answers
        }


def _recursive_adorned_predicate(adorned) -> Optional[str]:
    """The single recursive adorned predicate, if any (as in pipeline)."""
    from repro.analysis.dependency import DependencyGraph

    graph = DependencyGraph(adorned.program)
    recursive = {
        sig
        for sig in graph.recursive_signatures()
        if adorned.program.is_idb(sig)
    }
    if len(recursive) != 1:
        return None
    return next(iter(recursive))[0]


class CompiledQuery:
    """One query form compiled to a rewritten program plus its scheduler.

    Owns a persistent :class:`~repro.engine.plan.PlanCache`, so repeated
    queries of the same form reuse compiled rule plans (the cost planner
    re-plans inside the cache on cardinality drift).
    """

    def __init__(
        self,
        compiler: "QueryCompiler",
        predicate: str,
        arity: int,
        adornment: Adornment,
        edb: Database,
    ):
        self.compiler = compiler
        self.predicate = predicate
        self.arity = arity
        self.adornment = adornment
        self.instance_certified = False
        self.counting_diverged = False
        self.certified_by: Optional[str] = None
        #: cardinalities of referenced EDB relations at compile time
        self.edb_sizes: Dict[Signature, int] = {}

        program = compiler.program
        canonical = Literal(
            predicate, tuple(Variable(f"Qv{i}") for i in range(arity))
        )
        self.adorned = adorn(program, canonical, adornment=str(adornment))
        self.magic = magic_sets(self.adorned, include_seed=False)
        self.classification: Optional[ProgramClassification] = None
        self.report: Optional[FactorabilityReport] = None

        recursive_predicate = _recursive_adorned_predicate(self.adorned)
        if recursive_predicate is not None:
            base, adn = split_adorned_name(recursive_predicate)
            self.classification = classify_program(
                self.adorned.program, recursive_predicate, adn
            )
            if self.classification.ok:
                instance_edb = edb if compiler.use_instance_checks else None
                self.report = check_factorability(
                    self.classification, instance_edb
                )

        nontrivial = bool(adornment.bound_positions()) and bool(
            adornment.free_positions()
        )
        # The plain-magic program must not use the paper's free-only
        # query rule here: with the seed omitted the canonical bound
        # variables are unconstrained in ``query(free) :- p@ad(Qv...)``,
        # and magic evaluation derives ``p@ad`` facts for *other* magic
        # values (subquery bindings) that must not surface as answers
        # for the actual seed.  The serving query head therefore carries
        # every canonical variable and ``_project`` matches whole rows
        # against the actual goal.  The factored and counting rewrites
        # constrain answers to the seed themselves (the theorem
        # certificate, resp. the ``NIL`` index term) and keep the
        # free-only head.
        self._magic_program, self._magic_query_head = self._full_head_magic(
            canonical
        )
        free_positions = tuple(adornment.free_positions())
        self.strategy = "magic"
        self.program = self._magic_program
        self.query_head = self._magic_query_head
        self.row_positions: Tuple[int, ...] = tuple(range(arity))
        self.seed = self.magic.seed
        self.counting_result = None

        if (
            self.report is not None
            and self.report.factorable
            and nontrivial
            and self.magic.goal.predicate == recursive_predicate
        ):
            factored = factor_magic(self.magic)
            simplified, _ = simplify_factored(factored)
            self.strategy = "factored"
            self.program = simplified.program
            self.query_head = self.magic.query_head
            self.row_positions = free_positions
            self.certified_by = self.report.certified_by
            self.instance_certified = compiler.use_instance_checks
        elif self._counting_applies(adornment):
            self.strategy = "counting"
            self.row_positions = free_positions
            self.certified_by = "Section 6.4 (counting)"

        self.scheduler = self._make_scheduler(self.program)
        #: Lazily built magic scheduler for the counting fallback.
        self._magic_scheduler: Optional[SCCScheduler] = None

        self._snapshot_edb_sizes(edb)

    # -- compilation helpers ------------------------------------------

    def _full_head_magic(self, canonical: Literal) -> Tuple[Program, Literal]:
        """The magic program with ``query`` spanning all canonical vars.

        Only the answer rule changes; every magic/modified rule is
        shared with :attr:`magic` (which factoring consumes with the
        paper's free-only head).
        """
        full_head = Literal(QUERY_PREDICATE, canonical.args)
        rules = [
            Rule(full_head, rule.body)
            if rule.head.predicate == QUERY_PREDICATE
            else rule
            for rule in self.magic.program.rules
        ]
        return Program(rules), full_head

    def _counting_applies(self, adornment: Adornment) -> bool:
        """Counting: certified right-linear unit program, some binding.

        The syntactically divergent case (a left-linear self-loop,
        Section 6.4) is rejected here; dynamic divergence on cyclic
        data is handled by the evaluation budget and the magic
        fallback.
        """
        if self.classification is None or not self.classification.ok:
            return False
        if not adornment.bound_positions():
            return False
        if any(
            rc.rule_class not in (RuleClass.EXIT, RuleClass.RIGHT_LINEAR)
            for rc in self.classification.rules
        ):
            return False
        try:
            result = refine_counting(
                counting(self.adorned, include_seed=False)
            )
        except ValueError:  # not a unit program
            return False
        if counting_diverges(result):
            return False
        self.counting_result = result
        self.program = result.program
        self.query_head = result.query_head
        self.seed = result.seed
        return True

    def _make_scheduler(self, program: Program) -> SCCScheduler:
        c = self.compiler
        return SCCScheduler(
            program,
            mode="seminaive",
            use_plans=c.use_plans,
            planner=c.planner,
            jobs=c.jobs,
            backend=c.backend,
            max_iterations=c.max_iterations,
            max_facts=c.max_facts,
            max_seconds=c.max_seconds,
            exec=c.exec_mode,
            partitions=c.partitions,
            cache=PlanCache(c.planner or "greedy") if c.use_plans else None,
        )

    def _snapshot_edb_sizes(self, edb: Database) -> None:
        self.edb_sizes = {
            sig: len(rel)
            for sig, rel in edb.relations.items()
            if sig not in self.compiler.idb_signatures
        }

    def drifted(self, edb: Database) -> bool:
        """True when the EDB moved far enough to warrant a recompile."""
        for sig, rel in edb.relations.items():
            if sig in self.compiler.idb_signatures:
                continue
            old = self.edb_sizes.get(sig, 0)
            new = len(rel)
            lo, hi = min(old, new), max(old, new)
            if hi >= 8 and (lo == 0 or hi / lo > DRIFT_FACTOR):
                return True
        return False

    # -- evaluation ---------------------------------------------------

    def ask(self, goal: Literal, edb: Database, stats: EvalStats) -> Set[Tuple[Term, ...]]:
        """Evaluate the compiled program for one concrete goal."""
        bound_args = tuple(
            goal.args[i] for i in self.adornment.bound_positions()
        )
        if self.strategy == "counting" and not self.counting_diverged:
            scheduler = self.scheduler
            budget_iterations, budget_facts = self._counting_budget(edb)
            saved = (scheduler.max_iterations, scheduler.max_facts)
            scheduler.max_iterations = budget_iterations
            scheduler.max_facts = budget_facts
            try:
                raw = self._run(
                    scheduler,
                    self.seed.predicate,
                    (*bound_args, NIL),
                    self.counting_result.query_head,
                    edb,
                    stats,
                )
                return self._project(goal, raw, self.row_positions)
            except NonTerminationError:
                # Cyclic data: remember until the next EDB change and
                # serve this (and subsequent) queries via magic.
                self.counting_diverged = True
            finally:
                scheduler.max_iterations, scheduler.max_facts = saved
        if self.strategy == "counting":
            if self._magic_scheduler is None:
                self._magic_scheduler = self._make_scheduler(self._magic_program)
            raw = self._run(
                self._magic_scheduler,
                self.magic.seed.predicate,
                bound_args,
                self._magic_query_head,
                edb,
                stats,
            )
            return self._project(goal, raw, tuple(range(self.arity)))
        raw = self._run(
            self.scheduler,
            self.seed.predicate,
            bound_args,
            self.query_head,
            edb,
            stats,
        )
        return self._project(goal, raw, self.row_positions)

    def effective_strategy(self) -> str:
        if self.strategy == "counting" and self.counting_diverged:
            return "counting->magic"
        return self.strategy

    def _counting_budget(self, edb: Database) -> Tuple[Optional[int], Optional[int]]:
        """Data-sized budgets that trip quickly on divergent index growth.

        User-supplied budgets (``max_iterations``/``max_facts`` on the
        compiler) take precedence; otherwise the path-term depth cannot
        usefully exceed the EDB size on terminating data, so a small
        multiple of it bounds both dimensions.
        """
        c = self.compiler
        total = sum(
            len(rel)
            for sig, rel in edb.relations.items()
            if sig not in c.idb_signatures
        )
        iterations = c.max_iterations
        if iterations is None:
            iterations = max(100, 2 * total + 10)
        facts = c.max_facts
        if facts is None:
            facts = max(1000, 20 * total)
        return iterations, facts

    def _run(
        self,
        scheduler: SCCScheduler,
        seed_predicate: str,
        seed_args: Tuple[Term, ...],
        query_head: Literal,
        edb: Database,
        stats: EvalStats,
    ) -> Set[Tuple[Term, ...]]:
        """One scheduler pass into a throwaway overlay database.

        The overlay shares the EDB relation objects by reference — the
        rewritten program only ever writes generated-name relations, so
        the shared relations are read-only here (their lazily built
        hash indexes persist across queries, which is the point).  It
        also shares the EDB's term dictionary, so a columnar run probes
        the shared columns directly instead of rebuilding them per
        query into a foreign dictionary.
        """
        db = Database(edb.dictionary)
        db.relations.update(edb.relations)
        db.add_fact(seed_predicate, seed_args)
        scheduler.run(db, stats)
        return db.query(query_head)

    def _project(
        self,
        goal: Literal,
        raw: Set[Tuple[Term, ...]],
        row_positions: Tuple[int, ...],
    ) -> Set[Tuple[Term, ...]]:
        """Rebuild full-arity tuples and match them against the goal.

        ``raw`` rows bind the canonical variables at ``row_positions``
        in order — every position for the plain-magic head, the free
        positions for the factored/counting heads (whose bound slots
        are pinned to the seed by construction and filled from the
        actual goal here).  The match step implements repeated
        variables, partially-ground function terms, *and* the bound
        filter for magic rows, exactly like ``Database.query``.
        """
        bound_pos = self.adornment.bound_positions()
        goal_vars = goal.variables()
        answers: Set[Tuple[Term, ...]] = set()
        for row in raw:
            full: List[Optional[Term]] = [None] * self.arity
            for i in bound_pos:
                full[i] = goal.args[i]
            for value, i in zip(row, row_positions):
                full[i] = value
            bindings = match(goal, tuple(full), {})
            if bindings is not None:
                answers.add(tuple(bindings[v] for v in goal_vars))
        return answers


class QueryCompiler:
    """Per-query goal-directed evaluation with a compiled-program cache.

    ::

        compiler = QueryCompiler(program, planner="cost")
        answer = compiler.ask("t(5, Y)", edb)
        answer.answers        # raw Term tuples
        answer.strategy       # "factored" | "counting" | "magic" | ...

    ``planner``/``jobs``/``backend``/``use_plans``/``exec``/
    ``partitions`` mirror the evaluator knobs (``partitions`` splits
    delta rounds inside the rewritten program's recursive components —
    rarely useful for point queries, always counter-identical);
    ``use_instance_checks`` enables instance-level (EDB-reading)
    factorability certification, in which case entries are invalidated
    on every EDB change (:meth:`note_edb_change`).
    """

    def __init__(
        self,
        program: Program,
        *,
        planner: Optional[str] = None,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        use_plans: bool = True,
        exec: Optional[str] = None,
        partitions: Optional[int] = None,
        use_instance_checks: bool = False,
        max_iterations: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ):
        ensure_no_reserved_names(program)
        self.program = program
        self.idb_signatures = frozenset(program.idb_signatures)
        self.planner = planner
        self.jobs = jobs
        self.backend = backend
        self.use_plans = use_plans
        self.exec_mode = resolve_exec(exec)
        self.partitions = resolve_partitions(partitions)
        self.use_instance_checks = use_instance_checks
        self.max_iterations = max_iterations
        self.max_facts = max_facts
        self.max_seconds = max_seconds
        self._entries: Dict[QueryKey, CompiledQuery] = {}
        self.compiles = 0
        self.cache_hits = 0

    # -- cache maintenance --------------------------------------------

    def invalidate(self) -> None:
        """Drop every compiled entry (the program changed)."""
        self._entries.clear()

    def note_edb_change(self) -> None:
        """The EDB was mutated (a maintenance batch was applied).

        Instance-certified entries are dropped — their factorability
        proof read the old EDB.  Remembered counting divergences are
        cleared: deletions may have broken the cycle.  Cardinality
        drift is re-checked lazily on the next :meth:`ask`, and the
        plan caches re-plan on drift by themselves.
        """
        for key in [
            k for k, e in self._entries.items() if e.instance_certified
        ]:
            del self._entries[key]
        for entry in self._entries.values():
            entry.counting_diverged = False

    # -- serving ------------------------------------------------------

    def ask(self, goal: Union[str, Literal], edb: Database) -> QueryAnswer:
        """Answer ``goal`` against ``edb`` through the compiled path."""
        import time

        if isinstance(goal, str):
            goal = parse_query(goal)
        stats = EvalStats()
        begin = time.perf_counter()
        if goal.signature not in self.idb_signatures:
            if any(name == goal.predicate for name, _ in self.idb_signatures):
                arities = sorted(
                    a for name, a in self.idb_signatures
                    if name == goal.predicate
                )
                raise ValueError(
                    f"query predicate {goal.predicate}/{goal.arity} is not "
                    f"defined by the program ({goal.predicate} has "
                    f"arity {', '.join(map(str, arities))})"
                )
            answers = edb.query(goal)
            stats.seconds = time.perf_counter() - begin
            return QueryAnswer(
                goal=goal,
                answers=answers,
                strategy="edb",
                certified_by=None,
                stats=stats,
                from_cache=False,
            )
        overlap = [
            sig
            for sig in self.idb_signatures
            if (rel := edb.relations.get(sig)) is not None and len(rel)
        ]
        if overlap:
            # Base facts asserted for derived predicates: the renamed
            # rewrite would miss them.  Correctness first — evaluate in
            # full and filter (upper layers bridge this case away).
            db, eval_stats = seminaive_eval(
                self.program,
                edb,
                use_plans=self.use_plans,
                planner=self.planner,
                jobs=self.jobs,
                backend=self.backend,
                exec=self.exec_mode,
                partitions=self.partitions,
                max_iterations=self.max_iterations,
                max_facts=self.max_facts,
                max_seconds=self.max_seconds,
            )
            stats.absorb(eval_stats)
            answers = db.query(goal)
            stats.seconds = time.perf_counter() - begin
            return QueryAnswer(
                goal=goal,
                answers=answers,
                strategy="materialize",
                certified_by=None,
                stats=stats,
                from_cache=False,
            )
        adornment = adornment_from_query(goal)
        key: QueryKey = (goal.predicate, goal.arity, str(adornment))
        entry = self._entries.get(key)
        from_cache = entry is not None
        if entry is not None and entry.drifted(edb):
            entry = None
            from_cache = False
        try:
            if entry is None:
                entry = CompiledQuery(
                    self, goal.predicate, goal.arity, adornment, edb
                )
                self._entries[key] = entry
                self.compiles += 1
            else:
                self.cache_hits += 1
            answers = entry.ask(goal, edb, stats)
        except ValueError as exc:
            # An unsafe rewrite (e.g. ``pmem(1, L)`` or a variable left
            # inside a partially-ground list argument) means the answer
            # set is not finitely enumerable for this binding pattern.
            # Report that in terms of the user's goal, not the
            # generated rule that tripped the range-restriction check.
            if "range-restricted" in str(exc):
                raise ValueError(
                    f"goal {goal} is not answerable with this binding "
                    f"pattern: a goal variable (often one left inside a "
                    f"partially-ground list or function argument) would "
                    f"range over infinitely many values; bind that "
                    f"argument fully or query a finite form"
                ) from exc
            raise
        stats.seconds = time.perf_counter() - begin
        return QueryAnswer(
            goal=goal,
            answers=answers,
            strategy=entry.effective_strategy(),
            certified_by=entry.certified_by,
            stats=stats,
            from_cache=from_cache,
        )
