"""Cost-based join ordering from runtime statistics.

The greedy bound-first order in :mod:`repro.engine.plan` is purely
syntactic: it cannot tell a 40-tuple relation from a 40,000-tuple one,
so the factoring/magic rewrites of the paper — whose supplementary
predicates have wildly data-dependent cardinalities — can leave a huge
join driving a tiny one.  This module implements Selinger-style greedy
costing over the statistics :class:`~repro.engine.database.Relation`
maintains for free (cardinality, per-index distinct-key counts):

* :func:`estimate_fanout` — expected matching tuples per probe of one
  literal given which argument positions are bound.  Uses the
  distinct-key count of the probed index when one exists
  (``N / distinct``), and the classic ``N ** (free/arity)`` attribute-
  independence fallback otherwise.  Sane on the edges: an empty
  relation estimates 0, a singleton at most 1.
* :func:`cost_join_order` — repeatedly schedules the literal that
  minimizes the estimated intermediate-result size.  Ties break
  deterministically (delta occurrences first, then source order), so a
  given statistics snapshot always yields the same plan.

**Guard literals** — negation (``not_*``/``\\+``) and comparison
predicates (``<``, ``!=``, ...) — are pure filters: evaluating one
before its variables are bound is wrong under any cost model.  The
ordering treats them as unschedulable until every variable they
mention is bound, regardless of statistics; guards that can never be
bound go last, preserving the engine's existing failure behaviour.

The knob that selects this planner is ``planner="cost"`` on the
evaluators; :func:`resolve_planner` maps the default through the
``REPRO_PLANNER`` environment variable so CI can run the whole suite
under either planner.
"""

from __future__ import annotations

import os
from typing import Callable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.terms import Variable
from repro.engine.database import RelationStatistics

#: Planner names accepted by the evaluators.
PLANNERS = ("greedy", "cost")

#: Environment variable supplying the session-wide default planner.
PLANNER_ENV = "REPRO_PLANNER"

#: Comparison predicates: safe only once both sides are ground.
COMPARISON_PREDICATES = frozenset(
    {"<", "<=", ">", ">=", "=<", "=", "==", "!=", "\\=", "=\\=", "=:="}
)

#: Predicate spellings that mark a negated literal.
NEGATION_PREFIXES = ("not_", "\\+")

#: Selectivity credited to an all-bound filter step (a membership test
#: or a guard): it can only shrink the frontier.
FILTER_SELECTIVITY = 0.5


def resolve_planner(planner: Optional[str] = None) -> str:
    """Normalize a planner choice, honouring ``REPRO_PLANNER``.

    ``None`` falls back to the environment (default ``"greedy"``);
    anything outside :data:`PLANNERS` raises ``ValueError`` so typos
    fail loudly rather than silently picking a default.
    """
    if planner is None:
        planner = os.environ.get(PLANNER_ENV, "").strip() or "greedy"
    if planner not in PLANNERS:
        raise ValueError(
            f"unknown planner {planner!r}; expected one of {PLANNERS}"
        )
    return planner


def is_guard(literal: Literal) -> bool:
    """True for literals that must run with all variables bound.

    Covers comparison predicates and negation spellings.  Guards are
    filters, not generators: scheduling one before its variables are
    bound would either scan a non-existent relation or (for a future
    built-in evaluator) change the answer set.
    """
    name = literal.predicate
    return name in COMPARISON_PREDICATES or any(
        name.startswith(prefix) for prefix in NEGATION_PREFIXES
    )


def estimate_fanout(
    stats: Optional[RelationStatistics],
    bound_positions: Tuple[int, ...],
    arity: int,
) -> float:
    """Expected matching tuples per probe on ``bound_positions``.

    ``None`` statistics (unknown relation) estimate 0 — the engine
    short-circuits a missing relation, so the plan cost there is nil.
    An index's distinct-key count gives the exact average bucket size
    ``N / distinct``; without one, attribute independence approximates
    each bound position as contributing an ``N ** (1/arity)`` shrink.
    """
    if stats is None:
        return 0.0
    n = stats.cardinality
    if n <= 0:
        return 0.0
    if not bound_positions:
        return float(n)
    if len(bound_positions) >= arity > 0:
        # Existence check: at most one (dedup'd) match.
        return FILTER_SELECTIVITY
    distinct = stats.distinct(bound_positions)
    if distinct:
        return n / distinct
    if arity <= 0:
        return FILTER_SELECTIVITY
    return float(n) ** (float(arity - len(bound_positions)) / float(arity))


StatOf = Callable[[int, Literal], Optional[RelationStatistics]]


def cost_join_order(
    body: Sequence[Literal],
    roles: Mapping[int, str],
    stat_of: StatOf,
) -> Tuple[List[int], float]:
    """Order ``body`` by estimated intermediate-result size.

    ``stat_of(position, literal)`` supplies the statistics snapshot for
    one body occurrence (the semi-naive driver points delta/old
    positions at their view sizes).  Returns ``(order, estimated_rows)``
    where ``estimated_rows`` is the predicted final frontier size — the
    number the ``estimated_vs_actual`` accuracy counter compares with
    the emissions actually observed.

    Guards (:func:`is_guard`) are scheduled as soon as — and only
    when — all their variables are bound, whatever the statistics say.
    """
    remaining = list(range(len(body)))
    bound: Set[Variable] = set()
    order: List[int] = []
    frontier = 1.0
    while remaining:
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[float, int, int]] = None
        for idx in remaining:
            literal = body[idx]
            positions = _bound_positions(literal, bound)
            if is_guard(literal):
                if len(positions) < literal.arity:
                    continue  # guard with free variables: not schedulable yet
                # Guards are filters with no backing relation; cost them
                # as a fixed shrink rather than through relation stats.
                fanout = FILTER_SELECTIVITY
            else:
                fanout = estimate_fanout(
                    stat_of(idx, literal), positions, literal.arity
                )
            key = (
                frontier * fanout,
                0 if roles.get(idx) == "delta" else 1,
                idx,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        if best_idx is None:
            # Only unbindable guards remain; emit them in source order.
            order.extend(remaining)
            break
        order.append(best_idx)
        remaining.remove(best_idx)
        bound.update(body[best_idx].iter_variables())
        frontier = max(best_key[0], 0.0)
    return order, frontier


def _bound_positions(literal: Literal, bound: Set[Variable]) -> Tuple[int, ...]:
    """Argument positions ground or fully covered by ``bound``."""
    positions = []
    for pos, arg in enumerate(literal.args):
        if arg.is_ground() or all(v in bound for v in arg.variables()):
            positions.append(pos)
    return tuple(positions)
