"""Compiled rule plans: slot-based join execution for the bottom-up engine.

:mod:`repro.engine.joins` interprets a rule from scratch on every
delta round: it recomputes bound positions per candidate probe, copies
a ``Dict[Variable, Term]`` per matched tuple, and unifies argument by
argument through the generic :func:`~repro.engine.unify.match_term`.
This module compiles each ``(rule, override-configuration)`` pair
*once* into a flat :class:`RulePlan`:

* variables map to integer **slots**, so a set of bindings is a
  fixed-size list indexed by position instead of a dict copied per
  candidate tuple;
* the body is reordered by a greedy **bound-first** heuristic (most
  bound argument positions wins; semi-naive delta literals break
  ties, so deltas — the smallest relations — drive the join);
* every body literal becomes a :class:`LiteralStep` whose bound/free
  positions are precomputed, with specialized fast paths: an
  **all-bound** literal is a single membership test, a **constant-only**
  probe key is built at compile time, and an **all-free** literal is a
  direct scan with no key construction at all;
* the head emitter is a flat tuple of slot indexes and constants.

Because boundness is static once the join order is fixed, the executor
never needs to undo slot writes on backtracking: a slot is only ever
read at steps where the compiler proved it was written earlier.

Plans are cached per evaluation run by :class:`PlanCache`; the
evaluators report cache behaviour through the ``plans_compiled`` /
``plan_cache_hits`` / ``probes`` counters on
:class:`~repro.engine.stats.EvalStats`.  The dict-based interpreter in
:mod:`repro.engine.joins` remains the reference implementation; the
differential fuzz tests check both derive identical fixpoints.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.datalog.literals import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Compound, Constant, Term, Variable
from repro.engine.database import Database, FactTuple

#: One override role: (body position, role tag such as "delta"/"old").
Role = Tuple[int, str]
RoleSpec = Tuple[Role, ...]

# Compiled pattern / template node tags.
P_CONST = 0    # ground term; match by equality / emit as-is
P_STORE = 1    # first occurrence of a variable: write the slot
P_CHECK = 2    # variable with a known slot: compare (or read, in templates)
P_COMPOUND = 3  # nested compound: recurse into arguments

# Probe-key builder tags.
K_CONST = 0
K_SLOT = 1
K_TEMPLATE = 2

# Post-fetch operation tags (non-key positions of a candidate tuple).
O_STORE = 0
O_CHECK = 1
O_MATCH = 2

# Head emitter tags.
H_CONST = 0
H_SLOT = 1
H_TEMPLATE = 2
H_UNBOUND = 3

_Pattern = tuple  # recursive (tag, ...) nodes; see the P_* constants


def _compile_pattern(term: Term, var_slots: Dict[Variable, int]) -> _Pattern:
    """A slot-aware matcher for a (possibly partial) compound pattern.

    Allocates slots for first-occurrence variables; repeated variables
    compile to equality checks against the already-written slot.
    """
    if term.is_ground():
        return (P_CONST, term)
    if type(term) is Variable:
        slot = var_slots.get(term)
        if slot is None:
            slot = len(var_slots)
            var_slots[term] = slot
            return (P_STORE, slot)
        return (P_CHECK, slot)
    return (
        P_COMPOUND,
        term.functor,
        tuple(_compile_pattern(arg, var_slots) for arg in term.args),
    )


def _compile_template(term: Term, var_slots: Dict[Variable, int]) -> _Pattern:
    """A builder for a term whose variables all have slots already."""
    if term.is_ground():
        return (P_CONST, term)
    if type(term) is Variable:
        return (P_CHECK, var_slots[term])
    return (
        P_COMPOUND,
        term.functor,
        tuple(_compile_template(arg, var_slots) for arg in term.args),
    )


def _match(node: _Pattern, value: Term, slots: List[Optional[Term]]) -> bool:
    """Match a compiled pattern against a ground term, writing slots."""
    tag = node[0]
    if tag == P_CONST:
        return node[1] == value
    if tag == P_STORE:
        slots[node[1]] = value
        return True
    if tag == P_CHECK:
        return slots[node[1]] == value
    # P_COMPOUND
    if (
        type(value) is not Compound
        or value.functor != node[1]
        or len(value.args) != len(node[2])
    ):
        return False
    for sub, arg in zip(node[2], value.args):
        if not _match(sub, arg, slots):
            return False
    return True


def _build(node: _Pattern, slots: List[Optional[Term]]) -> Term:
    """Instantiate a compiled template from the current slots."""
    tag = node[0]
    if tag == P_CONST:
        return node[1]
    if tag == P_CHECK:
        return slots[node[1]]
    return Compound(node[1], tuple(_build(sub, slots) for sub in node[2]))


class LiteralStep:
    """One body literal, compiled: where to probe and what to bind.

    ``key_positions``/``key_builders`` describe the hash-index probe
    key (constants, slot reads, and bound compound templates);
    ``post_ops`` are the per-candidate operations on the remaining
    positions (slot writes, repeated-variable checks, partial-compound
    matches).  ``all_bound`` marks the existence-check fast path and
    ``const_key`` the compile-time-constant probe key.
    """

    __slots__ = (
        "name",
        "arity",
        "role",
        "key_positions",
        "key_builders",
        "const_key",
        "all_bound",
        "post_ops",
        "single_slot_key",
        "single_store",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        role: Optional[int],
        key_positions: Tuple[int, ...],
        key_builders: Optional[Tuple[Tuple[int, object], ...]],
        const_key: Optional[FactTuple],
        all_bound: bool,
        post_ops: Tuple[Tuple[int, int, object], ...],
    ):
        self.name = name
        self.arity = arity
        self.role = role
        self.key_positions = key_positions
        self.key_builders = key_builders
        self.const_key = const_key
        self.all_bound = all_bound
        self.post_ops = post_ops
        # Fast-path specializations for the two overwhelmingly common
        # literal shapes: a probe keyed on one already-bound variable,
        # and a single free variable to bind per candidate.
        self.single_slot_key: Optional[int] = None
        if key_builders is not None and len(key_builders) == 1:
            tag, payload = key_builders[0]
            if tag == K_SLOT:
                self.single_slot_key = payload
        self.single_store: Optional[Tuple[int, int]] = None
        if len(post_ops) == 1 and post_ops[0][1] == O_STORE:
            self.single_store = (post_ops[0][0], post_ops[0][2])

    def __repr__(self) -> str:
        mode = (
            "exists" if self.all_bound
            else "scan" if not self.key_positions
            else f"probe{self.key_positions}"
        )
        return f"LiteralStep({self.name}/{self.arity}, {mode})"


def _join_order(body: Sequence[Literal], roles: Mapping[int, str]) -> List[int]:
    """Greedy bound-first ordering of the body.

    Repeatedly picks the literal with the most bound argument
    positions; ties prefer the semi-naive delta occurrence (the
    smallest relation), then constant selectivity, then source order.
    """
    remaining = list(range(len(body)))
    bound: set = set()
    order: List[int] = []
    while remaining:
        best_idx = remaining[0]
        best_score: Optional[Tuple[int, int, int, int]] = None
        for idx in remaining:
            literal = body[idx]
            bound_count = 0
            const_count = 0
            for arg in literal.args:
                if arg.is_ground():
                    bound_count += 1
                    const_count += 1
                elif all(v in bound for v in arg.variables()):
                    bound_count += 1
            score = (
                bound_count,
                1 if roles.get(idx) == "delta" else 0,
                const_count,
                -idx,
            )
            if best_score is None or score > best_score:
                best_score = score
                best_idx = idx
        order.append(best_idx)
        remaining.remove(best_idx)
        bound.update(body[best_idx].iter_variables())
    return order


class RulePlan:
    """A rule compiled for slot-based execution.

    Execution enumerates exactly the body instantiations that
    :func:`repro.engine.joins.join_rule` would (in a different order),
    and calls ``emit`` with the ground head tuple of each — the plan
    equivalent of ``on_match`` + ``instantiate_head``.
    """

    __slots__ = (
        "rule",
        "roles",
        "order",
        "estimated_rows",
        "var_slots",
        "num_slots",
        "steps",
        "head_ops",
        "head_fast",
        "_head_getter",
        "_body_ops",
        "_columnar",
    )

    def __init__(
        self,
        rule: Rule,
        roles: RoleSpec = (),
        order: Optional[Sequence[int]] = None,
        estimated_rows: Optional[float] = None,
    ):
        self.rule = rule
        self.roles = roles
        roles_map = dict(roles)
        # ``order`` lets a cost-based planner inject a statistics-driven
        # join order; the default is the syntactic greedy heuristic.
        self.order = (
            list(order) if order is not None else _join_order(rule.body, roles_map)
        )
        self.estimated_rows = estimated_rows
        var_slots: Dict[Variable, int] = {}
        steps: List[LiteralStep] = []
        for idx in self.order:
            literal = rule.body[idx]
            prior = set(var_slots)  # variables bound by earlier steps
            key_positions: List[int] = []
            builders: List[Tuple[int, object]] = []
            post: List[Tuple[int, int, object]] = []
            for pos, arg in enumerate(literal.args):
                if arg.is_ground():
                    key_positions.append(pos)
                    builders.append((K_CONST, arg))
                elif type(arg) is Variable:
                    if arg in prior:
                        key_positions.append(pos)
                        builders.append((K_SLOT, var_slots[arg]))
                    elif arg in var_slots:
                        # repeated variable within this literal
                        post.append((pos, O_CHECK, var_slots[arg]))
                    else:
                        slot = len(var_slots)
                        var_slots[arg] = slot
                        post.append((pos, O_STORE, slot))
                else:  # compound containing variables
                    if all(v in prior for v in arg.variables()):
                        key_positions.append(pos)
                        builders.append(
                            (K_TEMPLATE, _compile_template(arg, var_slots))
                        )
                    else:
                        post.append(
                            (pos, O_MATCH, _compile_pattern(arg, var_slots))
                        )
            const_key: Optional[FactTuple] = None
            if builders and all(tag == K_CONST for tag, _ in builders):
                const_key = tuple(payload for _, payload in builders)
            steps.append(
                LiteralStep(
                    name=literal.predicate,
                    arity=literal.arity,
                    role=idx if idx in roles_map else None,
                    key_positions=tuple(key_positions),
                    key_builders=tuple(builders) if builders else None,
                    const_key=const_key,
                    all_bound=literal.arity > 0
                    and len(key_positions) == literal.arity,
                    post_ops=tuple(post),
                )
            )
        self.var_slots = var_slots
        self.num_slots = len(var_slots)
        self.steps = tuple(steps)

        head_ops: List[Tuple[int, object]] = []
        head_fast = True
        for arg in rule.head.args:
            if arg.is_ground():
                head_ops.append((H_CONST, arg))
            elif type(arg) is Variable:
                slot = var_slots.get(arg)
                if slot is None:
                    head_ops.append((H_UNBOUND, arg))
                    head_fast = False
                else:
                    head_ops.append((H_SLOT, slot))
            else:
                if all(v in var_slots for v in arg.variables()):
                    head_ops.append((H_TEMPLATE, _compile_template(arg, var_slots)))
                else:
                    head_ops.append((H_UNBOUND, arg))
                head_fast = False
        self.head_ops = tuple(head_ops)
        self.head_fast = head_fast
        # All-slot heads (the overwhelmingly common case) emit through a
        # C-level itemgetter instead of a per-inference comprehension.
        self._head_getter: Optional[Callable[[List[Optional[Term]]], FactTuple]] = None
        if head_fast and all(tag == H_SLOT for tag, _ in head_ops):
            slots_only = [payload for _, payload in head_ops]
            if not slots_only:
                self._head_getter = lambda slots: ()
            elif len(slots_only) == 1:
                only = slots_only[0]
                self._head_getter = lambda slots: (slots[only],)
            else:
                self._head_getter = itemgetter(*slots_only)
        # Per-body-literal ground-key templates for the provenance
        # on_match hook; compiled lazily on first provenance execution
        # so plain evaluation pays nothing.
        self._body_ops: Optional[Tuple[Tuple[str, int, tuple], ...]] = None
        # Columnar kernel (repro.engine.columnar), compiled lazily on
        # the first columnar execution of this plan; False marks a plan
        # the columnar path cannot run (it falls back to execute()).
        self._columnar = None

    def _emit_head_general(self, slots: List[Optional[Term]]) -> FactTuple:
        out: List[Term] = []
        for tag, payload in self.head_ops:
            if tag == H_CONST:
                out.append(payload)
            elif tag == H_SLOT:
                out.append(slots[payload])
            elif tag == H_TEMPLATE:
                out.append(_build(payload, slots))
            else:
                raise ValueError(
                    f"rule is not range-restricted; head variable unbound in {self.rule}"
                )
        return tuple(out)

    def execute(
        self,
        db: Database,
        overrides: Optional[Mapping[int, object]],
        emit: Optional[Callable[[FactTuple], None]],
        stats=None,
        on_match: Optional[Callable[[FactTuple, tuple], None]] = None,
    ) -> None:
        """Run the plan; ``emit`` receives each ground head tuple.

        ``overrides`` maps *original* body positions to replacement
        relations (semi-naive delta/old views); a missing or ``None``
        entry falls back to the database relation, mirroring
        :func:`repro.engine.joins.join_rule`.

        ``on_match`` is the plan-level provenance hook: when given, it
        replaces ``emit`` (pass ``emit=None``) and receives
        ``(head_fact, body_fact_keys)`` per match, where
        ``body_fact_keys`` is one ``(predicate, arity, args)`` key per
        body literal **in source order** — the matched ground body
        instance, independent of the join order the planner chose.
        The per-literal key templates are compiled lazily on the first
        provenance execution, so plain evaluation pays nothing.

        Each step is resolved once per call to a raw container — a
        scan sequence, an index dict, or a fact set — so the inner
        loops are C-level ``dict.get``/``set`` operations.  A step over
        an empty or missing relation, or a constant-only probe with an
        empty bucket, short-circuits the whole execution.
        """
        # Per-step resolution: (_SCAN, candidates, post) |
        # (_PROBE, index, builders, single_slot, single_store, post) |
        # (_EXISTS, fact_set, builders) | (_PASS,)
        _SCAN, _PROBE, _EXISTS, _PASS = 0, 1, 2, 3
        resolved: List[tuple] = []
        for step in self.steps:
            rel = None
            role = step.role
            if role is not None and overrides is not None:
                rel = overrides.get(role)
            if rel is None:
                rel = db.get(step.name, step.arity)
                if rel is None:
                    return
            if len(rel) == 0:
                return
            builders = step.key_builders
            if builders is None:
                resolved.append((_SCAN, rel.scan(), step.post_ops))
            elif step.all_bound:
                if step.const_key is not None:
                    # Ground literal: its truth is fixed for the whole run.
                    if stats is not None:
                        stats.probes += 1
                    if step.const_key not in rel.fact_set():
                        return
                    resolved.append((_PASS,))
                else:
                    resolved.append((_EXISTS, rel.fact_set(), builders))
            elif step.const_key is not None:
                # Constant-only filter: one bucket serves every invocation.
                if stats is not None:
                    stats.probes += 1
                bucket = rel.ensure_index(step.key_positions).get(step.const_key)
                if bucket is None:
                    return
                resolved.append((_SCAN, bucket, step.post_ops))
            else:
                resolved.append(
                    (
                        _PROBE,
                        rel.ensure_index(step.key_positions),
                        builders,
                        step.single_slot_key,
                        step.single_store,
                        step.post_ops,
                    )
                )

        slots: List[Optional[Term]] = [None] * self.num_slots
        if on_match is not None:
            body_ops = self._body_ops
            if body_ops is None:
                body_ops = self._body_ops = tuple(
                    (
                        literal.predicate,
                        literal.arity,
                        tuple(
                            _compile_template(arg, self.var_slots)
                            for arg in literal.args
                        ),
                    )
                    for literal in self.rule.body
                )

            def emit(head_fact: FactTuple) -> None:
                on_match(
                    head_fact,
                    tuple(
                        (
                            name,
                            arity,
                            tuple(_build(node, slots) for node in nodes),
                        )
                        for name, arity, nodes in body_ops
                    ),
                )

        nsteps = len(resolved)
        head_ops = self.head_ops
        head_fast = self.head_fast
        head_getter = self._head_getter

        def run(i: int) -> None:
            if i == nsteps:
                if head_getter is not None:
                    emit(head_getter(slots))
                elif head_fast:
                    emit(tuple([slots[p] if t else p for t, p in head_ops]))
                else:
                    emit(self._emit_head_general(slots))
                return
            st = resolved[i]
            mode = st[0]
            nexti = i + 1
            if mode == _PROBE:
                if stats is not None:
                    stats.probes += 1
                single_slot = st[3]
                if single_slot is not None:
                    key = (slots[single_slot],)
                else:
                    builders = st[2]
                    parts: List[Term] = []
                    for tag, payload in builders:
                        if tag == K_CONST:
                            parts.append(payload)
                        elif tag == K_SLOT:
                            parts.append(slots[payload])
                        else:
                            parts.append(_build(payload, slots))
                    key = tuple(parts)
                bucket = st[1].get(key)
                if bucket is None:
                    return
                single_store = st[4]
                if single_store is not None:
                    pos, slot = single_store
                    for fact in bucket:
                        slots[slot] = fact[pos]
                        run(nexti)
                    return
                post = st[5]
                for fact in bucket:
                    ok = True
                    for pos, tag, payload in post:
                        value = fact[pos]
                        if tag == O_STORE:
                            slots[payload] = value
                        elif tag == O_CHECK:
                            if slots[payload] != value:
                                ok = False
                                break
                        elif not _match(payload, value, slots):
                            ok = False
                            break
                    if ok:
                        run(nexti)
                return
            if mode == _SCAN:
                if stats is not None:
                    stats.probes += 1
                post = st[2]
                if not post:
                    for fact in st[1]:
                        run(nexti)
                    return
                for fact in st[1]:
                    ok = True
                    for pos, tag, payload in post:
                        value = fact[pos]
                        if tag == O_STORE:
                            slots[payload] = value
                        elif tag == O_CHECK:
                            if slots[payload] != value:
                                ok = False
                                break
                        elif not _match(payload, value, slots):
                            ok = False
                            break
                    if ok:
                        run(nexti)
                return
            if mode == _EXISTS:
                if stats is not None:
                    stats.probes += 1
                parts = []
                for tag, payload in st[2]:
                    if tag == K_CONST:
                        parts.append(payload)
                    elif tag == K_SLOT:
                        parts.append(slots[payload])
                    else:
                        parts.append(_build(payload, slots))
                if tuple(parts) in st[1]:
                    run(nexti)
                return
            run(nexti)  # _PASS

        run(0)

    def __repr__(self) -> str:
        return f"RulePlan({self.rule}, order={self.order}, slots={self.num_slots})"


class PlanCache:
    """Compiled plans keyed by ``(rule, override-role spec)``.

    One cache lives for the duration of an evaluator run, so each
    (rule, configuration) pair is compiled once and reused across all
    delta rounds.  Rules and role specs are hashable, so the cache is a
    plain dict.

    With ``planner="cost"`` the cache is *versioned*: each entry
    remembers the per-body-literal cardinality snapshot it was planned
    against, and a lookup whose observed cardinalities drift past
    ``drift_threshold`` (a ratio) recompiles with a fresh
    statistics-driven join order instead of returning the stale plan.
    ``EvalStats.replans`` counts those recompilations; re-planning
    never changes the derived fixpoint, only the join order.
    """

    __slots__ = ("_plans", "planner", "drift_threshold")

    #: Re-plan when a relation grew or shrank by this factor.
    DEFAULT_DRIFT_THRESHOLD = 4.0

    def __init__(
        self,
        planner: str = "greedy",
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ):
        from repro.engine.cost import resolve_planner

        self.planner = resolve_planner(planner)
        self.drift_threshold = drift_threshold
        self._plans: Dict[
            Tuple[Rule, RoleSpec],
            Tuple[RulePlan, Optional[Tuple[int, ...]]],
        ] = {}

    def __len__(self) -> int:
        return len(self._plans)

    def plan(
        self,
        rule: Rule,
        roles: RoleSpec = (),
        stats=None,
        db: Optional[Database] = None,
        overrides: Optional[Mapping[int, object]] = None,
    ) -> RulePlan:
        """The compiled plan for ``(rule, roles)``, (re)planning as needed.

        ``db``/``overrides`` feed the cost planner's statistics; the
        greedy planner ignores them, so callers may always pass them.
        """
        key = (rule, roles)
        entry = self._plans.get(key)
        if self.planner != "cost" or db is None:
            if entry is None:
                plan = RulePlan(rule, roles)
                self._plans[key] = (plan, None)
                if stats is not None:
                    stats.plans_compiled += 1
                return plan
            if stats is not None:
                stats.plan_cache_hits += 1
            return entry[0]

        snapshot = self._snapshot(rule, roles, db, overrides)
        if entry is not None:
            plan, planned_at = entry
            if planned_at is not None and not self._drifted(planned_at, snapshot):
                if stats is not None:
                    stats.plan_cache_hits += 1
                return plan
            if stats is not None:
                stats.replans += 1
        plan = self._compile_cost(rule, roles, db, overrides)
        self._plans[key] = (plan, snapshot)
        if stats is not None:
            stats.plans_compiled += 1
        return plan

    def _snapshot(
        self,
        rule: Rule,
        roles: RoleSpec,
        db: Database,
        overrides: Optional[Mapping[int, object]],
    ) -> Tuple[int, ...]:
        """Current cardinality of each body occurrence's source."""
        cards = []
        for idx, literal in enumerate(rule.body):
            rel = overrides.get(idx) if overrides is not None else None
            if rel is None:
                rel = db.get(literal.predicate, literal.arity)
            cards.append(len(rel) if rel is not None else 0)
        return tuple(cards)

    def _drifted(self, old: Tuple[int, ...], new: Tuple[int, ...]) -> bool:
        """True when any source's cardinality ratio exceeds the threshold."""
        for a, b in zip(old, new):
            lo, hi = (a, b) if a <= b else (b, a)
            if (hi + 1) / (lo + 1) > self.drift_threshold:
                return True
        return False

    def _compile_cost(
        self,
        rule: Rule,
        roles: RoleSpec,
        db: Database,
        overrides: Optional[Mapping[int, object]],
    ) -> RulePlan:
        from repro.engine.cost import cost_join_order

        def stat_of(idx: int, literal: Literal):
            rel = overrides.get(idx) if overrides is not None else None
            if rel is None:
                rel = db.get(literal.predicate, literal.arity)
            return rel.statistics() if rel is not None else None

        roles_map = dict(roles)
        order, estimated = cost_join_order(rule.body, roles_map, stat_of)
        return RulePlan(rule, roles, order=order, estimated_rows=estimated)


def compile_rule(rule: Rule, roles: Union[RoleSpec, Mapping[int, str]] = ()) -> RulePlan:
    """Compile ``rule`` into a :class:`RulePlan`.

    ``roles`` marks body positions carrying semi-naive overrides, as
    either a mapping ``{position: role}`` or a tuple of pairs; the role
    tags ("delta"/"old") key the plan cache and bias the join order.
    """
    if isinstance(roles, Mapping):
        roles = tuple(sorted(roles.items()))
    return RulePlan(rule, roles)
