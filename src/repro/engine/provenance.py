"""Derivation trees (Definition 2.1) and fact explanation.

The paper's proofs are inductions over derivation trees: a fact's tree
has the fact at the root, one subtree per body literal of the rule
instance that derived it, and EDB facts at the leaves.  This module
materializes them: :func:`explain` returns a minimal-height derivation
tree for a derived fact, built from a provenance-recording evaluation.

Provenance evaluation is SCC-stratified semi-naive on compiled plans:
the shared :class:`~repro.engine.scheduler.SCCScheduler` drives the
same schedule as :func:`~repro.engine.seminaive.seminaive_eval`, and a
:class:`DerivationRecorder` rides along on the
``RulePlan.execute(..., on_match=...)`` hook, which reports the ground
body instance behind every head emission.  Facts derived in round
``r`` record bodies from rounds ``< r`` (the synchronous schedule), so
recorded derivations are acyclic and height-minimal round-wise —
exactly the trees the paper's inductions walk.  Recording is
*canonical* (per fact: lowest rule, then lexicographically smallest
body instance), so the compiled path, the legacy interpreter path
(``use_plans=False``), either planner, and any ``jobs`` count all
record identical trees.

Trees are also how a library user audits an answer ("why is 7
reachable?"), so the module doubles as the provenance feature of the
engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.engine.database import Database, FactTuple, load_program_facts
from repro.engine.scheduler import SCCScheduler
from repro.engine.stats import EvalStats

Signature = Tuple[str, int]
FactKey = Tuple[str, int, FactTuple]


@dataclass
class DerivationTree:
    """One node of a derivation tree (Definition 2.1)."""

    fact: Literal
    #: the rule whose instance derived this fact; None for EDB leaves
    rule: Optional[Rule] = None
    children: Tuple["DerivationTree", ...] = ()

    def height(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def leaves(self) -> List[Literal]:
        if not self.children:
            return [self.fact]
        out: List[Literal] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def render(self, indent: int = 0) -> str:
        """An ASCII rendering, facts indented by derivation depth."""
        pad = "  " * indent
        label = f"{pad}{self.fact}"
        if self.rule is not None:
            label += f"    [via {self.rule}]"
        lines = [label]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class EdbKeyView:
    """Lazy EDB fact-key membership backed by the relations themselves.

    Behaves like the set of ``(predicate, arity, args)`` keys of every
    EDB fact, but answers ``in`` by probing the relation's fact set
    instead of materializing a flat key set up front — when the EDB
    dominates the database, provenance evaluation no longer pays a
    full copy of every fact key before deriving anything.

    The view is **live**: it reads the wrapped database at lookup
    time.  Mutating the EDB after an evaluation therefore changes
    which facts a stored :class:`ProvenanceResult` treats as leaves —
    pass ``edb.copy()`` to :func:`provenance_eval` if explanations
    must stay stable while the original database keeps evolving.
    """

    __slots__ = ("_db",)

    def __init__(self, db: Database):
        self._db = db

    def __contains__(self, key: FactKey) -> bool:
        predicate, arity, args = key
        rel = self._db.get(predicate, arity)
        return rel is not None and args in rel

    def __iter__(self) -> Iterator[FactKey]:
        for (name, arity), rel in self._db.relations.items():
            for fact in rel:
                yield (name, arity, fact)

    def __len__(self) -> int:
        return sum(len(rel) for rel in self._db.relations.values())


class DerivationRecorder:
    """Canonical per-round derivation recording for the scheduler.

    The scheduler calls :meth:`start_round` at the top of every
    fixpoint round, :meth:`observe` for each in-round derivation of a
    not-yet-known fact, and :meth:`commit` when the fact is actually
    added at the round barrier.  Among a round's candidate derivations
    of the same fact the *canonical* one is kept — smallest rule index
    (component rule order), then lexicographically smallest rendered
    body instance — so the recorded tree is independent of join order,
    execution backend, and job count.

    :meth:`fork`/:meth:`absorb` support parallel depth batches: each
    component records into a private recorder whose derivations (keyed
    by that component's own head signatures, hence disjoint) fold back
    at the batch barrier.
    """

    __slots__ = ("derivations", "edb_keys", "_round")

    def __init__(
        self,
        derivations: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]],
        edb_keys: EdbKeyView,
    ):
        self.derivations = derivations
        self.edb_keys = edb_keys
        self._round: Dict[FactKey, tuple] = {}

    def fork(self) -> "DerivationRecorder":
        return DerivationRecorder({}, self.edb_keys)

    def absorb(self, other: "DerivationRecorder") -> None:
        self.derivations.update(other.derivations)

    def absorb_derivations(
        self, derivations: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]]
    ) -> None:
        """Fold in a bare derivations mapping (no recorder around it).

        The process execution backend returns a worker recorder's
        derivations dict across the process boundary; the keys are the
        worker component's own head signatures, hence disjoint from
        every other component's, so a plain update is the merge.
        """
        self.derivations.update(derivations)

    def start_round(self) -> None:
        self._round.clear()

    def observe(
        self,
        sig: Signature,
        head_fact: FactTuple,
        rule_index: int,
        rule: Rule,
        body_keys: Tuple[FactKey, ...],
    ) -> None:
        key = (sig[0], sig[1], head_fact)
        sort_key = (
            rule_index,
            tuple(
                (name, arity, tuple(str(term) for term in args))
                for name, arity, args in body_keys
            ),
        )
        entry = self._round.get(key)
        if entry is None or sort_key < entry[0]:
            self._round[key] = (sort_key, rule, body_keys)

    def commit(self, sig: Signature, fact: FactTuple) -> None:
        key = (sig[0], sig[1], fact)
        entry = self._round.get(key)
        if entry is not None:
            self.derivations[key] = (entry[1], entry[2])


@dataclass
class ProvenanceResult:
    """Database plus one recorded derivation per derived fact."""

    database: Database
    stats: EvalStats
    #: fact -> (rule, body fact keys) for the canonical derivation
    derivations: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]]
    edb_keys: EdbKeyView

    def explain(self, fact: Literal) -> DerivationTree:
        """A derivation tree for a ground fact (Definition 2.1).

        Raises ``KeyError`` when the fact is not in the least model.
        The recorded derivation is the canonical one from the fact's
        first semi-naive round, which is height-minimal up to ties
        (facts are derived round by round).
        """
        if not fact.is_ground():
            raise ValueError(f"fact {fact} is not ground")
        key = (fact.predicate, fact.arity, fact.args)
        return self._build(key, seen=set())

    def _build(self, key: FactKey, seen: set) -> DerivationTree:
        predicate, arity, args = key
        fact = Literal(predicate, args)
        if key in self.edb_keys:
            return DerivationTree(fact)
        if key in seen:
            raise RuntimeError(f"cyclic derivation record for {fact}")
        entry = self.derivations.get(key)
        if entry is None:
            raise KeyError(f"no derivation recorded for {fact}")
        rule, body_keys = entry
        children = tuple(self._build(k, seen | {key}) for k in body_keys)
        return DerivationTree(fact, rule, children)


def provenance_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
    use_plans: bool = True,
    planner: Optional[str] = None,
    jobs: Optional[int] = None,
    backend=None,
    max_seconds: Optional[float] = None,
) -> ProvenanceResult:
    """SCC-stratified semi-naive fixpoint recording one derivation per fact.

    Facts derived in round ``r`` of their component record bodies from
    rounds ``< r`` (the synchronous schedule), so recorded derivations
    are acyclic and height-minimal round-wise.  ``use_plans``/
    ``planner``/``jobs``/``backend`` mirror
    :func:`~repro.engine.seminaive.seminaive_eval`; every combination
    derives the same fixpoint, the same counters, and — because
    recording is canonical — the same derivation trees (under the
    process backend, workers record into private recorders whose
    derivations return with the component results and merge at the
    batch barrier).  ``stats.provenance_plan_ratio`` reports how much
    of the run used compiled plans (1.0, or 0.0 under
    ``use_plans=False``).
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    edb_keys = EdbKeyView(edb)
    derivations: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]] = {}
    stats.facts += load_program_facts(program, db)
    for rule in program.rules:
        if rule.is_fact():
            key = (rule.head.predicate, rule.head.arity, rule.head.args)
            if key not in edb_keys:
                derivations.setdefault(key, (rule, ()))

    scheduler = SCCScheduler(
        program,
        mode="seminaive",
        use_plans=use_plans,
        planner=planner,
        jobs=jobs,
        backend=backend,
        max_iterations=max_iterations,
        max_facts=max_facts,
        max_seconds=max_seconds,
        recorder=DerivationRecorder(derivations, edb_keys),
    )
    scheduler.run(db, stats)

    stats.seconds = time.perf_counter() - start
    return ProvenanceResult(
        database=db, stats=stats, derivations=derivations, edb_keys=edb_keys
    )


def explain(
    program: Program, edb: Database, fact: Literal, **kwargs
) -> DerivationTree:
    """One-shot: evaluate with provenance and explain ``fact``."""
    return provenance_eval(program, edb, **kwargs).explain(fact)
