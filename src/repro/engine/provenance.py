"""Derivation trees (Definition 2.1) and fact explanation.

The paper's proofs are inductions over derivation trees: a fact's tree
has the fact at the root, one subtree per body literal of the rule
instance that derived it, and EDB facts at the leaves.  This module
materializes them: :func:`explain` returns a minimal-height derivation
tree for a derived fact, built from a provenance-recording evaluation.

Trees are also how a library user audits an answer ("why is 7
reachable?"), so the module doubles as the provenance feature of the
engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term
from repro.engine.database import Database, FactTuple, load_program_facts
from repro.engine.joins import instantiate_head, join_rule
from repro.engine.stats import EvalStats, NonTerminationError

Signature = Tuple[str, int]
FactKey = Tuple[str, int, FactTuple]


@dataclass
class DerivationTree:
    """One node of a derivation tree (Definition 2.1)."""

    fact: Literal
    #: the rule whose instance derived this fact; None for EDB leaves
    rule: Optional[Rule] = None
    children: Tuple["DerivationTree", ...] = ()

    def height(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def leaves(self) -> List[Literal]:
        if not self.children:
            return [self.fact]
        out: List[Literal] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def render(self, indent: int = 0) -> str:
        """An ASCII rendering, facts indented by derivation depth."""
        pad = "  " * indent
        label = f"{pad}{self.fact}"
        if self.rule is not None:
            label += f"    [via {self.rule}]"
        lines = [label]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class ProvenanceResult:
    """Database plus one recorded derivation per derived fact."""

    database: Database
    stats: EvalStats
    #: fact -> (rule, body fact keys) for the first derivation found
    derivations: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]]
    edb_keys: set

    def explain(self, fact: Literal) -> DerivationTree:
        """A derivation tree for a ground fact (Definition 2.1).

        Raises ``KeyError`` when the fact is not in the least model.
        The recorded derivation is the *first* found by the semi-naive
        iteration, which is height-minimal up to ties (facts are
        derived round by round).
        """
        if not fact.is_ground():
            raise ValueError(f"fact {fact} is not ground")
        key = (fact.predicate, fact.arity, fact.args)
        return self._build(key, seen=set())

    def _build(self, key: FactKey, seen: set) -> DerivationTree:
        predicate, arity, args = key
        fact = Literal(predicate, args)
        if key in self.edb_keys:
            return DerivationTree(fact)
        if key in seen:
            raise RuntimeError(f"cyclic derivation record for {fact}")
        entry = self.derivations.get(key)
        if entry is None:
            raise KeyError(f"no derivation recorded for {fact}")
        rule, body_keys = entry
        children = tuple(self._build(k, seen | {key}) for k in body_keys)
        return DerivationTree(fact, rule, children)


def provenance_eval(
    program: Program,
    edb: Database,
    max_iterations: Optional[int] = None,
    max_facts: Optional[int] = None,
) -> ProvenanceResult:
    """Naive-order fixpoint that records one derivation per new fact.

    Facts derived in round ``r`` record bodies from rounds ``< r`` (the
    synchronous schedule), so recorded derivations are acyclic and
    height-minimal round-wise — exactly the trees the paper's
    inductions walk.
    """
    db = edb.copy()
    stats = EvalStats()
    start = time.perf_counter()
    edb_keys = {
        (sig[0], sig[1], fact)
        for sig, rel in edb.relations.items()
        for fact in rel
    }
    derivations: Dict[FactKey, Tuple[Optional[Rule], Tuple[FactKey, ...]]] = {}
    seed_count = load_program_facts(program, db)
    stats.facts += seed_count
    for rule in program.rules:
        if rule.is_fact():
            key = (rule.head.predicate, rule.head.arity, rule.head.args)
            if key not in edb_keys:
                derivations.setdefault(key, (rule, ()))

    rules = program.proper_rules()
    changed = True
    while changed:
        changed = False
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise NonTerminationError(
                f"provenance evaluation exceeded {max_iterations} iterations",
                stats.iterations,
                stats.facts,
            )
        pending: List[Tuple[FactKey, Rule, Tuple[FactKey, ...]]] = []
        for rule in rules:
            def on_match(bindings, rule=rule):
                stats.inferences += 1
                head_fact = instantiate_head(rule, bindings)
                key = (rule.head.predicate, rule.head.arity, head_fact)
                if key in derivations or key in edb_keys:
                    return
                rel = db.get(rule.head.predicate, rule.head.arity)
                if rel is not None and head_fact in rel:
                    return
                body_keys = []
                for literal in rule.body:
                    from repro.engine.joins import _resolve

                    args = tuple(_resolve(a, bindings) for a in literal.args)
                    body_keys.append((literal.predicate, literal.arity, args))
                pending.append((key, rule, tuple(body_keys)))

            join_rule(db, rule, on_match)
        for key, rule, body_keys in pending:
            predicate, arity, args = key
            if db.relation(predicate, arity).add(args):
                derivations[key] = (rule, body_keys)
                stats.record_fact((predicate, arity))
                changed = True
                if max_facts is not None and stats.facts > max_facts:
                    raise NonTerminationError(
                        f"provenance evaluation exceeded {max_facts} facts",
                        stats.iterations,
                        stats.facts,
                    )
    stats.seconds = time.perf_counter() - start
    return ProvenanceResult(
        database=db, stats=stats, derivations=derivations, edb_keys=edb_keys
    )


def explain(
    program: Program, edb: Database, fact: Literal, **kwargs
) -> DerivationTree:
    """One-shot: evaluate with provenance and explain ``fact``."""
    return provenance_eval(program, edb, **kwargs).explain(fact)
