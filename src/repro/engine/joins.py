"""Shared join machinery for the bottom-up evaluators.

A rule body is evaluated left to right.  Each literal either scans an
override collection (the semi-naive *delta*/*old* versions of a
recursive predicate) or probes the database relation through a hash
index on the positions that are already bound — the standard
index-nested-loops plan for Datalog engines.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.literals import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Compound, Constant, Term, Variable
from repro.engine.database import Database, FactTuple, Relation
from repro.engine.unify import match_term


def bound_positions(literal: Literal, bound_vars: Dict[Variable, Term]) -> Tuple[Tuple[int, ...], List[Term]]:
    """Argument positions of ``literal`` that are fully determined.

    A position is bound when its term is ground after substituting
    ``bound_vars``.  Returns the sorted positions and the corresponding
    key values (the ground terms).
    """
    positions: List[int] = []
    key: List[Term] = []
    for i, arg in enumerate(literal.args):
        value = _resolve(arg, bound_vars)
        if value is not None:
            positions.append(i)
            key.append(value)
    return tuple(positions), key


def _resolve(term: Term, bindings: Dict[Variable, Term]) -> Optional[Term]:
    """Ground value of ``term`` under ``bindings``, or None if not ground."""
    if isinstance(term, Constant):
        return term
    if isinstance(term, Variable):
        return bindings.get(term)
    if isinstance(term, Compound):
        if term.is_ground():
            return term
        args = []
        for arg in term.args:
            value = _resolve(arg, bindings)
            if value is None:
                return None
            args.append(value)
        return Compound(term.functor, args)
    raise TypeError(f"not a term: {term!r}")


def candidates(
    db: Database,
    literal: Literal,
    bindings: Dict[Variable, Term],
    override: Optional[Relation],
) -> Sequence[FactTuple]:
    """Facts that could match ``literal`` under the current bindings."""
    rel = override if override is not None else db.get(literal.predicate, literal.arity)
    if rel is None:
        return ()
    positions, key = bound_positions(literal, bindings)
    return rel.lookup(positions, tuple(key))


def join_rule(
    db: Database,
    rule: Rule,
    on_match: Callable[[Dict[Variable, Term]], None],
    overrides: Optional[Dict[int, Optional[Relation]]] = None,
) -> None:
    """Enumerate all body instantiations of ``rule`` against ``db``.

    ``overrides`` maps body positions to replacement relations (the
    semi-naive delta/old versions); a ``None`` value means "use the
    database relation" (the default for unlisted positions too).
    ``on_match`` receives the complete variable bindings for each
    instantiation.
    """
    overrides = overrides or {}
    body = rule.body

    def walk(index: int, bindings: Dict[Variable, Term]) -> None:
        if index == len(body):
            on_match(bindings)
            return
        literal = body[index]
        override = overrides.get(index)
        for fact in candidates(db, literal, bindings, override):
            new_bindings = dict(bindings)
            ok = True
            for pattern, value in zip(literal.args, fact):
                if not match_term(pattern, value, new_bindings):
                    ok = False
                    break
            if ok:
                walk(index + 1, new_bindings)

    walk(0, {})


def instantiate_head(rule: Rule, bindings: Dict[Variable, Term]) -> FactTuple:
    """The ground head tuple of ``rule`` under complete ``bindings``."""
    args = []
    for arg in rule.head.args:
        value = _resolve(arg, bindings)
        if value is None:
            raise ValueError(
                f"rule is not range-restricted; head variable unbound in {rule}"
            )
        args.append(value)
    return tuple(args)


def relation_from_tuples(
    name: str,
    arity: int,
    tuples: Iterable[FactTuple],
    dictionary=None,
) -> Relation:
    """A throwaway indexed relation over ``tuples`` (semi-naive deltas).

    ``dictionary`` attaches a shared term dictionary so the columnar
    executor accepts the relation as a source (incremental maintenance
    builds its delta relations this way).
    """
    rel = Relation(name, arity, dictionary)
    for fact in tuples:
        rel.add(fact)
    return rel
