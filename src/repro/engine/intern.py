"""Term interning: ground terms to dense integer ids.

Columnar execution (:mod:`repro.engine.columnar`) stores relations as
per-attribute ``array('q')`` columns of integer ids instead of tuples
of :class:`~repro.datalog.terms.Term` objects.  The mapping between
the two worlds is a :class:`TermDictionary` shared by every relation
of one :class:`~repro.engine.database.Database`: ``intern(term)``
returns a dense id (allocating on first sight), and ``terms[i]``
decodes it back.  Ids are append-only and never reused, so any copy,
stage, snapshot, or pickled component spec can share the dictionary
*by reference* (or by a one-shot pickle) — an id minted before the
share keeps meaning the same term forever.

Interning happens at the relation boundary, for whole ground terms:
a :class:`~repro.datalog.terms.Compound` interns as one opaque id
exactly like a constant, which is sound because interning only needs
``id equality ⟺ term equality`` (terms are immutable and hash by
value).  The payoff is that the hot fixpoint loops compare and hash
C-level ints instead of calling Python-level ``Term.__hash__``.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.datalog.terms import Term


class TermDictionary:
    """An append-only bijection between ground terms and dense ints.

    Thread-safe for concurrent interning (the thread backend runs
    component fixpoints over a shared database): lookups are lock-free
    dict reads; only the miss path takes the lock, with a second
    lookup under it so racing interners agree on one id.  The lock is
    re-entrant because :meth:`Relation.ensure_columns` holds it around
    a column extension whose per-term interns re-enter it.
    """

    __slots__ = ("terms", "_ids", "_lock")

    def __init__(self) -> None:
        #: Decode table: ``terms[i]`` is the term with id ``i``.
        self.terms: List[Term] = []
        self._ids: Dict[Term, int] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self.terms)

    def intern(self, term: Term) -> int:
        """The dense id of ``term``, allocating one on first sight."""
        ident = self._ids.get(term)
        if ident is not None:
            return ident
        with self._lock:
            ident = self._ids.get(term)
            if ident is None:
                ident = len(self.terms)
                self.terms.append(term)
                self._ids[term] = ident
        return ident

    def __getstate__(self):
        # Ship only the decode table; ``_ids`` rebuilds lazily on the
        # receiving side (workers mostly decode, rarely intern).
        return tuple(self.terms)

    def __setstate__(self, state) -> None:
        self.terms = list(state)
        self._ids = {term: i for i, term in enumerate(self.terms)}
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        return f"TermDictionary({len(self.terms)} terms)"
