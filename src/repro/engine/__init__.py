"""The evaluation substrate: storage, unification, and evaluators.

The paper's efficiency claims are all phrased in terms of bottom-up
(semi-naive) evaluation cost — the number of facts and inferences — so
the engine exposes those counters on every run via
:class:`repro.engine.stats.EvalStats`.
"""

from repro.engine.database import Database, Relation, RelationStatistics, RelationView
from repro.engine.unify import Substitution, unify, match, unify_terms
from repro.engine.stats import (
    ComponentTimeout,
    EvalStats,
    MaintenanceError,
    NonTerminationError,
)
from repro.engine.cost import cost_join_order, estimate_fanout, is_guard, resolve_planner
from repro.engine.plan import PlanCache, RulePlan, compile_rule
from repro.engine.faults import (
    FaultInjected,
    FaultPlan,
    parse_faults,
    resolve_faults,
)
from repro.engine.backends import (
    ComponentResult,
    ComponentSpec,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    resolve_backend,
    resolve_retries,
)
from repro.engine.scheduler import (
    ComponentRun,
    ComponentTask,
    SCCScheduler,
    component_depths,
    resolve_jobs,
    resolve_timeout,
)
from repro.engine.naive import naive_eval, naive_fixpoint_reference
from repro.engine.seminaive import seminaive_eval
from repro.engine.topdown import topdown_eval, TopDownResult
from repro.engine.provenance import provenance_eval, explain, DerivationTree
from repro.engine.incremental import IncrementalSession
from repro.engine.journal import (
    Journal,
    JournalError,
    JournalReplay,
    recover_session,
    replay_journal,
)

__all__ = [
    "Database",
    "Relation",
    "RelationStatistics",
    "RelationView",
    "PlanCache",
    "RulePlan",
    "compile_rule",
    "cost_join_order",
    "estimate_fanout",
    "is_guard",
    "resolve_planner",
    "Substitution",
    "unify",
    "unify_terms",
    "match",
    "EvalStats",
    "NonTerminationError",
    "ComponentTimeout",
    "MaintenanceError",
    "FaultInjected",
    "FaultPlan",
    "parse_faults",
    "resolve_faults",
    "SCCScheduler",
    "ComponentRun",
    "ComponentTask",
    "component_depths",
    "resolve_jobs",
    "resolve_timeout",
    "ComponentResult",
    "ComponentSpec",
    "ExecutorBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "make_backend",
    "resolve_backend",
    "resolve_retries",
    "naive_eval",
    "naive_fixpoint_reference",
    "seminaive_eval",
    "topdown_eval",
    "TopDownResult",
    "provenance_eval",
    "explain",
    "DerivationTree",
    "IncrementalSession",
    "Journal",
    "JournalError",
    "JournalReplay",
    "recover_session",
    "replay_journal",
]
