"""repro — a reproduction of "Argument Reduction by Factoring".

Naughton, Ramakrishnan, Sagiv, Ullman (VLDB 1989; TCS 146, 1995).

The package is a complete deductive-database toolkit built around the
paper's contribution:

* :mod:`repro.datalog` — the language (terms with function symbols,
  rules, parser, printer);
* :mod:`repro.engine` — storage plus naive, semi-naive, and tabled
  top-down evaluators with cost statistics;
* :mod:`repro.analysis` — adornment, conjunctive-query containment,
  standard form, rule classification, A/V graphs, separability;
* :mod:`repro.transforms` — Magic Sets and Counting;
* :mod:`repro.core` — factoring, the factorability theorems, the
  Section 5 simplifier, static-argument reduction, and the
  ``optimize()`` pipeline;
* :mod:`repro.workloads` / :mod:`repro.bench` — experiment inputs and
  the measurement harness.

Quickstart::

    from repro import parse_program, parse_query, optimize, chain_edb

    program = parse_program(\"\"\"
        t(X, Y) :- t(X, W), t(W, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        t(X, Y) :- t(X, W), e(W, Y).
        t(X, Y) :- e(X, Y).
    \"\"\")
    result = optimize(program, parse_query("t(0, Y)"))
    print(result.report.certified_by)   # Theorem 4.1 (selection-pushing)
    print(result.simplified.program)    # the paper's 4-rule unary program
    answers, stats = result.answers(chain_edb(100))
"""

from repro.datalog import (
    Term,
    Variable,
    Constant,
    Compound,
    NIL,
    make_list,
    list_elements,
    Literal,
    Rule,
    Fact,
    Program,
    parse_program,
    parse_rule,
    parse_literal,
    parse_term,
    parse_query,
    ParseError,
    pretty_program,
    pretty_rule,
)
from repro.engine import (
    Database,
    Relation,
    EvalStats,
    NonTerminationError,
    SCCScheduler,
    resolve_jobs,
    naive_eval,
    seminaive_eval,
    topdown_eval,
    TopDownResult,
)
from repro.analysis import (
    adorn,
    AdornedProgram,
    Adornment,
    adornment_from_query,
    ConjunctiveQuery,
    cq_contained_in,
    cq_equivalent,
    to_standard_form,
    classify_program,
    classify_rule,
    RuleClass,
    is_one_sided,
    is_simple_one_sided,
    expand_rule,
    is_separable,
    is_reducible_separable,
)
from repro.transforms import (
    magic_sets,
    MagicResult,
    counting,
    CountingResult,
    delete_index_fields,
    counting_diverges,
)
from repro.core import (
    factor_predicate,
    factor_magic,
    FactoredProgram,
    check_factorability,
    FactorabilityReport,
    is_selection_pushing,
    is_symmetric,
    is_answer_propagating,
    simplify_factored,
    reduce_static_arguments,
    static_argument_positions,
    containment_gadget,
    optimize,
    OptimizationResult,
)
from repro.core.nonunit import factor_inner, inner_factoring_valid_on, decouples_subgoals
from repro.session import DeductiveDatabase, QueryReport
from repro.datalog.validate import validate_program, ValidationReport
from repro.engine.provenance import provenance_eval, explain, DerivationTree
from repro.analysis.uniform import uniformly_contained, uniformly_equivalent, minimize_program
from repro.analysis.isomorphism import programs_isomorphic
from repro.transforms.supplementary import supplementary_magic_sets
from repro.workloads import (
    chain_edb,
    cycle_edb,
    random_digraph_edb,
    complete_edb,
    tree_edb,
    grid_edb,
    pmem_program,
    pmem_edb,
    pmem_query,
    three_rule_tc_program,
    three_rule_tc_query,
    same_generation_program,
    same_generation_edb,
)

__version__ = "1.0.0"

__all__ = [
    # language
    "Term", "Variable", "Constant", "Compound", "NIL", "make_list",
    "list_elements", "Literal", "Rule", "Fact", "Program",
    "parse_program", "parse_rule", "parse_literal", "parse_term",
    "parse_query", "ParseError", "pretty_program", "pretty_rule",
    # engine
    "Database", "Relation", "EvalStats", "NonTerminationError",
    "SCCScheduler", "resolve_jobs",
    "naive_eval", "seminaive_eval", "topdown_eval", "TopDownResult",
    # analysis
    "adorn", "AdornedProgram", "Adornment", "adornment_from_query",
    "ConjunctiveQuery", "cq_contained_in", "cq_equivalent",
    "to_standard_form", "classify_program", "classify_rule", "RuleClass",
    "is_one_sided", "is_simple_one_sided", "expand_rule",
    "is_separable", "is_reducible_separable",
    # transforms
    "magic_sets", "MagicResult", "counting", "CountingResult",
    "delete_index_fields", "counting_diverges",
    # core
    "factor_predicate", "factor_magic", "FactoredProgram",
    "check_factorability", "FactorabilityReport",
    "is_selection_pushing", "is_symmetric", "is_answer_propagating",
    "simplify_factored", "reduce_static_arguments",
    "static_argument_positions", "containment_gadget",
    "optimize", "OptimizationResult",
    # workloads
    "chain_edb", "cycle_edb", "random_digraph_edb", "complete_edb",
    "tree_edb", "grid_edb", "pmem_program", "pmem_edb", "pmem_query",
    "three_rule_tc_program", "three_rule_tc_query",
    "same_generation_program", "same_generation_edb",
    # session / provenance / validation / uniform equivalence
    "DeductiveDatabase", "QueryReport",
    "validate_program", "ValidationReport",
    "provenance_eval", "explain", "DerivationTree",
    "uniformly_contained", "uniformly_equivalent", "minimize_program",
    "programs_isomorphic", "supplementary_magic_sets",
    "factor_inner", "inner_factoring_valid_on", "decouples_subgoals",
    "__version__",
]
