"""Random unit-program generation for fuzzing the factoring pipeline.

:func:`random_rlc_program` draws programs from a grammar whose every
production is RLC-stable *and* syntactically selection-pushing: rules
have empty ``left``/``right`` conjunctions (the conditions of
Definition 4.6 then hold trivially), so Theorem 4.1 promises the
factored Magic program is answer-equivalent on **every** database.
The fuzz tests exploit exactly that: generate a program, certify it,
and compare all pipeline stages against the naive-evaluation oracle on
random EDBs.

A second generator, :func:`random_program`, drops the class guarantees
(shifting occurrences, extra conjunctions) to exercise the *rejection*
paths of the classifier.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine.database import Database

_X, _Y = Variable("X"), Variable("Y")


def _edb_name(rng: random.Random, pool: int) -> str:
    return f"e{rng.randrange(pool)}"


def random_rlc_program(
    seed: int,
    rules: int = 3,
    edb_pool: int = 3,
    predicate: str = "p",
) -> Program:
    """A random RLC-stable, selection-pushing unit program.

    ``rules`` recursive rules drawn from {left-linear, right-linear,
    combined, nonlinear-combined} plus one exit rule.  All conjunctions
    that Definition 4.6 constrains are empty, so the program is
    certified syntactically.
    """
    rng = random.Random(seed)
    out: List[Rule] = []
    for _ in range(max(1, rules)):
        shape = rng.choice(("left", "right", "combined", "nonlinear"))
        w, u, v = Variable("W"), Variable("U"), Variable("V")
        p = predicate
        if shape == "left":
            # p(X, Y) :- p(X, W), e_i(W, Y).
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (
                        Literal(p, (_X, w)),
                        Literal(_edb_name(rng, edb_pool), (w, _Y)),
                    ),
                )
            )
        elif shape == "right":
            # p(X, Y) :- e_i(X, V), p(V, Y).
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (
                        Literal(_edb_name(rng, edb_pool), (_X, v)),
                        Literal(p, (v, _Y)),
                    ),
                )
            )
        elif shape == "combined":
            # p(X, Y) :- p(X, U), e_i(U, V), p(V, Y).
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (
                        Literal(p, (_X, u)),
                        Literal(_edb_name(rng, edb_pool), (u, v)),
                        Literal(p, (v, _Y)),
                    ),
                )
            )
        else:
            # p(X, Y) :- p(X, U), p(U, Y).   (empty center)
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (Literal(p, (_X, u)), Literal(p, (u, _Y))),
                )
            )
    # Exactly one exit rule (Definition 4.4).
    out.append(
        Rule(
            Literal(predicate, (_X, _Y)),
            (Literal(_edb_name(rng, edb_pool), (_X, _Y)),),
        )
    )
    return Program(out)


def random_program(
    seed: int,
    rules: int = 3,
    edb_pool: int = 3,
    predicate: str = "p",
) -> Program:
    """A random unit program with *no* class guarantees.

    Adds shifting occurrences and side conjunctions with some
    probability, producing a mix of factorable and non-factorable
    programs — the classifier-rejection fuzz corpus.
    """
    rng = random.Random(seed)
    base = random_rlc_program(seed, rules, edb_pool, predicate)
    out: List[Rule] = []
    for rule in base.rules:
        roll = rng.random()
        if roll < 0.25 and rule.body_literals(predicate):
            # same-generation-style shifting rule
            u, v = Variable("U"), Variable("V")
            out.append(
                Rule(
                    Literal(predicate, (_X, _Y)),
                    (
                        Literal(_edb_name(rng, edb_pool), (_X, u)),
                        Literal(predicate, (u, v)),
                        Literal(_edb_name(rng, edb_pool), (v, _Y)),
                    ),
                )
            )
        elif roll < 0.45:
            # add a filter on the free side (breaks free_exit ⊑ free)
            out.append(
                Rule(
                    rule.head,
                    (*rule.body, Literal(f"r{rng.randrange(edb_pool)}", (_Y,))),
                )
            )
        else:
            out.append(rule)
    return Program(out)


def random_edb(
    seed: int,
    n: int = 8,
    edb_pool: int = 3,
    facts_per_relation: int = 16,
    unary_pool: int = 3,
) -> Database:
    """A random EDB covering the relation names the generators emit."""
    rng = random.Random(seed)
    db = Database()
    for i in range(edb_pool):
        db.add_facts(
            f"e{i}",
            {
                (rng.randrange(n), rng.randrange(n))
                for _ in range(facts_per_relation)
            },
        )
    for i in range(unary_pool):
        db.add_facts(f"r{i}", {(rng.randrange(n),) for _ in range(n)})
    return db
