"""Random unit-program generation for fuzzing the factoring pipeline.

:func:`random_rlc_program` draws programs from a grammar whose every
production is RLC-stable *and* syntactically selection-pushing: rules
have empty ``left``/``right`` conjunctions (the conditions of
Definition 4.6 then hold trivially), so Theorem 4.1 promises the
factored Magic program is answer-equivalent on **every** database.
The fuzz tests exploit exactly that: generate a program, certify it,
and compare all pipeline stages against the naive-evaluation oracle on
random EDBs.

A second generator, :func:`random_program`, drops the class guarantees
(shifting occurrences, extra conjunctions) to exercise the *rejection*
paths of the classifier.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine.database import Database

_X, _Y = Variable("X"), Variable("Y")


def _edb_name(rng: random.Random, pool: int) -> str:
    return f"e{rng.randrange(pool)}"


def random_rlc_program(
    seed: int,
    rules: int = 3,
    edb_pool: int = 3,
    predicate: str = "p",
) -> Program:
    """A random RLC-stable, selection-pushing unit program.

    ``rules`` recursive rules drawn from {left-linear, right-linear,
    combined, nonlinear-combined} plus one exit rule.  All conjunctions
    that Definition 4.6 constrains are empty, so the program is
    certified syntactically.
    """
    rng = random.Random(seed)
    out: List[Rule] = []
    for _ in range(max(1, rules)):
        shape = rng.choice(("left", "right", "combined", "nonlinear"))
        w, u, v = Variable("W"), Variable("U"), Variable("V")
        p = predicate
        if shape == "left":
            # p(X, Y) :- p(X, W), e_i(W, Y).
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (
                        Literal(p, (_X, w)),
                        Literal(_edb_name(rng, edb_pool), (w, _Y)),
                    ),
                )
            )
        elif shape == "right":
            # p(X, Y) :- e_i(X, V), p(V, Y).
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (
                        Literal(_edb_name(rng, edb_pool), (_X, v)),
                        Literal(p, (v, _Y)),
                    ),
                )
            )
        elif shape == "combined":
            # p(X, Y) :- p(X, U), e_i(U, V), p(V, Y).
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (
                        Literal(p, (_X, u)),
                        Literal(_edb_name(rng, edb_pool), (u, v)),
                        Literal(p, (v, _Y)),
                    ),
                )
            )
        else:
            # p(X, Y) :- p(X, U), p(U, Y).   (empty center)
            out.append(
                Rule(
                    Literal(p, (_X, _Y)),
                    (Literal(p, (_X, u)), Literal(p, (u, _Y))),
                )
            )
    # Exactly one exit rule (Definition 4.4).
    out.append(
        Rule(
            Literal(predicate, (_X, _Y)),
            (Literal(_edb_name(rng, edb_pool), (_X, _Y)),),
        )
    )
    return Program(out)


def random_program(
    seed: int,
    rules: int = 3,
    edb_pool: int = 3,
    predicate: str = "p",
) -> Program:
    """A random unit program with *no* class guarantees.

    Adds shifting occurrences and side conjunctions with some
    probability, producing a mix of factorable and non-factorable
    programs — the classifier-rejection fuzz corpus.
    """
    rng = random.Random(seed)
    base = random_rlc_program(seed, rules, edb_pool, predicate)
    out: List[Rule] = []
    for rule in base.rules:
        roll = rng.random()
        if roll < 0.25 and rule.body_literals(predicate):
            # same-generation-style shifting rule
            u, v = Variable("U"), Variable("V")
            out.append(
                Rule(
                    Literal(predicate, (_X, _Y)),
                    (
                        Literal(_edb_name(rng, edb_pool), (_X, u)),
                        Literal(predicate, (u, v)),
                        Literal(_edb_name(rng, edb_pool), (v, _Y)),
                    ),
                )
            )
        elif roll < 0.45:
            # add a filter on the free side (breaks free_exit ⊑ free)
            out.append(
                Rule(
                    rule.head,
                    (*rule.body, Literal(f"r{rng.randrange(edb_pool)}", (_Y,))),
                )
            )
        else:
            out.append(rule)
    return Program(out)


def skewed_fanout_program() -> Program:
    """The cost-planner separation workload: a skewed three-way join.

    ::

        out(X, Z) :- fan(X, Y), burst(Y, Z), sel(Z).

    The body is written big-relation-first on purpose: the syntactic
    greedy planner (no statistics, ties broken by source order) drives
    the join from ``fan`` and materializes the full ``fan ⋈ burst``
    intermediate — ``sources * fanout * burst`` rows — before the tiny
    ``sel`` filter prunes nearly all of them.  A cost-based planner
    sees the cardinalities, starts from ``sel``, and touches only the
    few ``burst``/``fan`` tuples that can survive.  Both orders emit
    the identical answers with identical ``facts``/``inferences``
    counters; only the join work differs.
    """
    from repro.datalog.parser import parse_program

    return parse_program("out(X, Z) :- fan(X, Y), burst(Y, Z), sel(Z).")


def skewed_fanout_edb(
    sources: int = 30,
    fanout: int = 20,
    burst: int = 50,
    hot: int = 997,
    selected: int = 50,
    sharing: int = 5,
) -> Database:
    """A deterministic skewed-fanout EDB for :func:`skewed_fanout_program`.

    * ``fan``:   each source ``x{i}`` reaches ``fanout`` distinct integer
      hubs; ``sharing`` sources share each hub, so the relation has
      ``sources * fanout`` tuples over ``sources * fanout / sharing``
      hubs.
    * ``burst``: each hub emits ``burst`` edges.  The sink distribution
      is *skewed*: almost every edge lands on one of ``hot`` shared hot
      sinks (``h{m}``), but the first ``selected`` hubs also emit one
      edge to a private cold sink (``c{y}``) that occurs exactly once
      in the whole relation.
    * ``sel``:   exactly the cold sinks.

    Driving the join from ``sel`` touches ``selected`` one-tuple cold
    buckets; driving it from ``fan`` (the greedy source order)
    enumerates every ``burst`` tuple once per sharing source —
    ``sources * fanout * burst`` intermediate rows — only to discard
    everything that hit a hot sink.  The answer is ``sharing`` tuples
    per cold sink either way.
    """
    db = Database()
    hubs = max(1, (sources * fanout) // max(1, sharing))
    cold = min(selected, hubs)
    db.add_facts(
        "fan",
        (
            (f"x{i}", (i * fanout + j) % hubs)
            for i in range(sources)
            for j in range(fanout)
        ),
    )

    def sinks():
        for y in range(hubs):
            for k in range(burst):
                if k == 0 and y < cold:
                    yield (y, f"c{y}")
                else:
                    yield (y, f"h{(y * burst + k) % hot}")

    db.add_facts("burst", sinks())
    db.add_facts("sel", ((f"c{y}",) for y in range(cold)))
    return db


def wide_dag_program(width: int = 4) -> Program:
    """The parallel-scheduler separation workload: a wide, shallow DAG.

    ``width`` mutually independent transitive closures feed one
    collector::

        t0(X, Y) :- e0(X, Y).        t0(X, Y) :- e0(X, W), t0(W, Y).
        ...
        reach(X, Y) :- t0(X, Y).     ... reach(X, Y) :- t{w-1}(X, Y).

    Every ``t{i}`` is its own recursive SCC depending only on its own
    EDB relation, so all ``width`` components land in the *same*
    topological depth batch — the shape where ``jobs > 1`` can overlap
    component fixpoints — with ``reach`` one depth deeper.  Any job
    count derives the identical fixpoint with identical ``facts``/
    ``inferences`` counters.
    """
    from repro.datalog.parser import parse_program

    lines = []
    for i in range(max(1, width)):
        lines.append(f"t{i}(X, Y) :- e{i}(X, Y).")
        lines.append(f"t{i}(X, Y) :- e{i}(X, W), t{i}(W, Y).")
        lines.append(f"reach(X, Y) :- t{i}(X, Y).")
    return parse_program("\n".join(lines))


def wide_dag_edb(width: int = 4, length: int = 40) -> Database:
    """One disjoint chain per component for :func:`wide_dag_program`.

    ``e{i}`` is a ``length``-edge chain over its own node namespace, so
    each closure holds ``length * (length + 1) / 2`` tuples and the
    components share no data at all.
    """
    db = Database()
    for i in range(max(1, width)):
        base = i * (length + 1)
        db.add_facts(
            f"e{i}", ((base + j, base + j + 1) for j in range(length))
        )
    return db


def coarse_components_program(width: int = 4) -> Program:
    """The process-backend separation workload: few, *heavy* components.

    ``width`` mutually independent **nonlinear** transitive closures::

        t0(X, Y) :- e0(X, Y).        t0(X, Y) :- t0(X, W), t0(W, Y).
        ...
        t{w-1}(X, Y) :- e{w-1}(X, Y). ...

    all in one depth-0 batch, with nothing downstream of them (the
    wide-DAG workload's ``reach`` collector is a second, *serial*
    component roughly as large as all the closures combined, which
    caps any parallel speedup near 2x — Amdahl).  The nonlinear rule
    is the point: on a chain of ``n`` edges it performs ``Θ(n³)``
    inferences to derive ``Θ(n²)`` facts, so per-component *compute*
    dwarfs what the process backend serializes (the EDB snapshot out,
    the delta log back) — the coarse grain where shipping a component
    to another process pays for itself and real multi-core wall-time
    wins appear.  The linear closure, by contrast, does one inference
    per derived fact and the delta-log transfer swallows the win.
    """
    from repro.datalog.parser import parse_program

    lines = []
    for i in range(max(1, width)):
        lines.append(f"t{i}(X, Y) :- e{i}(X, Y).")
        lines.append(f"t{i}(X, Y) :- t{i}(X, W), t{i}(W, Y).")
    return parse_program("\n".join(lines))


def coarse_components_edb(width: int = 4, length: int = 50) -> Database:
    """Disjoint chains for :func:`coarse_components_program`.

    Same shape as :func:`wide_dag_edb` (one ``length``-edge chain per
    component over a private node namespace): ``length`` edges in,
    ``length * (length + 1) / 2`` closure facts out — and, through the
    nonlinear rule, ``Θ(length³)`` inferences — per component.
    """
    return wide_dag_edb(width, length)


def churn_program() -> Program:
    """The incremental-maintenance workload: linear transitive closure.

    ::

        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, W), t(W, Y).

    Single recursive SCC over one EDB relation — the shape where a
    point update touches a small cone of the closure but a recompute
    pays the whole Θ(n²) fixpoint again.
    """
    from repro.datalog.parser import parse_program

    return parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        """
    )


def _churn_block_edges(n: int, width: int) -> List[Tuple[int, int]]:
    """The deterministic initial edge set behind :func:`churn_edb`."""
    length = max(2, n // max(1, width))
    edges: List[Tuple[int, int]] = []
    for b in range(max(1, width)):
        base = b * length
        edges.extend((base + i, base + i + 1) for i in range(length - 1))
        edges.extend((base + i, base + i + 2) for i in range(0, length - 2, 3))
    return edges


def churn_edb(n: int = 120, width: int = 6) -> Database:
    """A regionalized graph for :func:`churn_program`.

    ``width`` disjoint blocks of ``n // width`` vertices, each a chain
    with a skip edge every third vertex.  The blocks model the serving
    scenario incremental maintenance targets: the closure is large (it
    spans every block) but a point update only touches the cone inside
    one block, so maintenance work is a fraction ``~1/width`` of a
    recompute even for the worst-case delete.  The skips matter for
    deletion: a deleted chain edge usually leaves an alternate path, so
    DRed's re-derivation phase (not just the over-delete) is genuinely
    exercised.
    """
    db = Database()
    db.add_facts("e", _churn_block_edges(n, width))
    return db


def churn_script(
    seed: int, updates: int, n: int = 120, width: int = 6
) -> List[Tuple[str, str, Tuple[int, int]]]:
    """A deterministic update script against :func:`churn_edb`.

    Returns ``updates`` operations ``("+"|"-", "e", (a, b))``: deletes
    pick a live edge (tracking the mutations the script itself makes),
    inserts pick a random vertex pair within one block, roughly half
    and half.  The same arguments always yield the same script, so
    benchmark rows and fuzz failures are reproducible.
    """
    rng = random.Random(seed)
    length = max(2, n // max(1, width))
    live = set(_churn_block_edges(n, width))
    ops: List[Tuple[str, str, Tuple[int, int]]] = []
    for _ in range(max(0, updates)):
        if live and rng.random() < 0.5:
            edge = rng.choice(sorted(live))
            live.discard(edge)
            ops.append(("-", "e", edge))
        else:
            base = rng.randrange(max(1, width)) * length
            edge = (base + rng.randrange(length), base + rng.randrange(length))
            live.add(edge)
            ops.append(("+", "e", edge))
    return ops


def random_edb(
    seed: int,
    n: int = 8,
    edb_pool: int = 3,
    facts_per_relation: int = 16,
    unary_pool: int = 3,
) -> Database:
    """A random EDB covering the relation names the generators emit."""
    rng = random.Random(seed)
    db = Database()
    for i in range(edb_pool):
        db.add_facts(
            f"e{i}",
            {
                (rng.randrange(n), rng.randrange(n))
                for _ in range(facts_per_relation)
            },
        )
    for i in range(unary_pool):
        db.add_facts(f"r{i}", {(rng.randrange(n),) for _ in range(n)})
    return db
