"""Workload generators: graphs, lists, and the paper's example EDBs."""

from repro.workloads.graphs import (
    chain_edb,
    cycle_edb,
    random_digraph_edb,
    complete_edb,
    tree_edb,
    grid_edb,
)
from repro.workloads.lists import pmem_edb, pmem_query, pmem_program
from repro.workloads.synthetic import random_rlc_program, random_program, random_edb
from repro.workloads.examples import (
    three_rule_tc_program,
    three_rule_tc_query,
    example_43_program,
    example_43_edb,
    example_43_violating_edbs,
    example_44_program,
    example_44_edb,
    example_45_program,
    example_45_edb,
    example_51_program,
    example_52_program,
    example_71_program,
    same_generation_program,
    same_generation_edb,
)

__all__ = [
    "chain_edb",
    "cycle_edb",
    "random_digraph_edb",
    "complete_edb",
    "tree_edb",
    "grid_edb",
    "pmem_edb",
    "pmem_query",
    "pmem_program",
    "three_rule_tc_program",
    "three_rule_tc_query",
    "example_43_program",
    "example_43_edb",
    "example_43_violating_edbs",
    "example_44_program",
    "example_44_edb",
    "example_45_program",
    "example_45_edb",
    "example_51_program",
    "example_52_program",
    "example_71_program",
    "same_generation_program",
    "same_generation_edb",
    "random_rlc_program",
    "random_program",
    "random_edb",
]
