"""List workloads for the ``pmem`` experiments (Examples 1.2 / 4.6)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.terms import Constant, Variable, make_list
from repro.engine.database import Database

PMEM_TEXT = """
pmem(X, [X | T]) :- p(X).
pmem(X, [H | T]) :- pmem(X, T).
"""


def pmem_program() -> Program:
    """The augmented member procedure of Example 1.2."""
    return parse_program(PMEM_TEXT)


def pmem_edb(
    n: int, satisfying: Optional[Sequence[int]] = None
) -> Database:
    """The unary ``p`` relation over elements ``0..n-1``.

    ``satisfying`` lists the elements for which ``p`` holds; the
    default — all of them — is the paper's worst case ("if all members
    of the given list satisfy the predicate p, Prolog will compute the
    O(n^2) facts").
    """
    members = range(n) if satisfying is None else satisfying
    db = Database()
    db.add_facts("p", ((x,) for x in members))
    return db


def pmem_query(n: int) -> Literal:
    """The goal ``pmem(X, [x0, x1, ..., x_{n-1}])``."""
    elements = [Constant(i) for i in range(n)]
    return Literal("pmem", (Variable("X"), make_list(elements)))
