"""The paper's worked examples, as parsed programs and EDB generators.

Each function is named for the example it reproduces; the benchmark
index in DESIGN.md maps them to experiments.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_program, parse_query
from repro.datalog.program import Program
from repro.engine.database import Database


def three_rule_tc_program() -> Program:
    """Example 1.1 / 4.2: transitive closure with all three rule forms."""
    return parse_program(
        """
        t(X, Y) :- t(X, W), t(W, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        t(X, Y) :- t(X, W), e(W, Y).
        t(X, Y) :- e(X, Y).
        """
    )


def three_rule_tc_query(source: int = 5) -> Literal:
    return parse_query(f"t({source}, Y)")


def example_43_program() -> Program:
    """Example 4.3: the selection-pushing illustration program."""
    return parse_program(
        """
        p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
        p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
        p(X, Y) :- f(X, V), p(V, Y), r3(Y).
        p(X, Y) :- e(X, Y).
        """
    )


def example_43_edb(n: int = 30, seed: int = 7) -> Database:
    """A random EDB *satisfying* Example 4.3's semantic conditions.

    The run-time conditions require: ``free_exit ⊆ r1, r2, r3`` (every
    second column of ``e`` appears in every ``r``), ``l1 ≡ l2`` as used,
    and ``bound_first ⊆ l1`` (every first column of ``f`` is in ``l1``).
    Satisfying them by construction makes the factored program correct
    on this instance, which the tests verify against Magic.
    """
    rng = random.Random(seed)
    db = Database()
    nodes = list(range(n))
    e_edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)}
    db.add_facts("e", e_edges)
    # free_exit = second column of e; include it in every r.
    targets = {b for (_, b) in e_edges}
    for rel in ("r1", "r2", "r3"):
        db.add_facts(rel, ((b,) for b in targets))
    # l1 and l2 identical; all sources qualify.
    sources = set(nodes)
    for rel in ("l1", "l2"):
        db.add_facts(rel, ((s,) for s in sources))
    db.add_facts("f", {(rng.randrange(n), rng.randrange(n)) for _ in range(n)})
    # bound_first ⊆ l1 holds because l1 is total.
    db.add_facts("c1", {(rng.randrange(n), rng.randrange(n)) for _ in range(n)})
    db.add_facts("c2", {(rng.randrange(n), rng.randrange(n)) for _ in range(n)})
    return db


def example_43_violating_edbs() -> Dict[str, Tuple[Database, Literal]]:
    """The two counterexample EDBs from the text of Example 4.3.

    ``bound_first``: violates "bound_first contained in l1" — the
    factored program wrongly derives answer 8.
    ``free_exit``: violates "free_exit contained in r1" — the factored
    program wrongly derives ``fp(7)``.
    Both use the query ``p(5, Y)``.
    """
    goal = parse_query("p(5, Y)")
    violate_bound_first = Database.from_dict(
        {
            "f": [(5, 1)],
            "e": [(5, 6), (1, 7), (2, 8)],
            "l1": [(1,)],
            "c1": [(6, 2)],
            "r1": [(7,), (8,)],
        }
    )
    violate_free_exit = Database.from_dict(
        {
            "f": [(5, 1)],
            "e": [(5, 6), (1, 7)],
            "l1": [(5,)],
            "c1": [(6, 1)],
        }
    )
    return {
        "bound_first": (violate_bound_first, goal),
        "free_exit": (violate_free_exit, goal),
    }


def example_44_program() -> Program:
    """Example 4.4: the symmetric-program illustration."""
    return parse_program(
        """
        p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
        p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
        p(X, Y) :- e(X, Y).
        """
    )


def example_44_edb(n: int = 20, seed: int = 11) -> Database:
    """An EDB satisfying Example 4.4's run-time conditions."""
    rng = random.Random(seed)
    db = Database()
    e_edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)}
    # Guarantee the query source (5) has exit answers.
    e_edges |= {(5, rng.randrange(n)) for _ in range(3)}
    db.add_facts("e", e_edges)
    targets = {b for (_, b) in e_edges}
    for rel in ("r1", "r2"):
        db.add_facts(rel, ((b,) for b in targets))
    for rel in ("l1", "l2"):
        db.add_facts(rel, ((s,) for s in range(n)))
    db.add_facts(
        "c",
        {
            (rng.randrange(n), rng.randrange(n), rng.randrange(n))
            for _ in range(2 * n)
        },
    )
    return db


def example_45_program() -> Program:
    """Example 4.5: the answer-propagating illustration."""
    return parse_program(
        """
        p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
        p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
        p(X, Y) :- f(X, V), p(V, Y), r3(Y).
        p(X, Y) :- e(X, Y).
        """
    )


def example_45_edb(n: int = 20, seed: int = 13) -> Database:
    """An EDB satisfying Example 4.5's run-time conditions."""
    db = example_44_edb(n, seed)
    rng = random.Random(seed + 1)
    db.add_facts("f", {(rng.randrange(n), rng.randrange(n)) for _ in range(n)})
    for (_, b) in db.relations[("e", 2)].tuples:
        db.add_fact("r3", (b,))
    return db


def example_51_program() -> Program:
    """Example 5.1: a static first argument blocks classification."""
    return parse_program(
        """
        p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
        p(X, Y, Z) :- exit(X, Y, Z).
        """
    )


def example_52_program() -> Program:
    """Example 5.2: a pseudo-left-linear rule (Definition 5.3)."""
    return parse_program(
        """
        p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
        p(X, Y, Z) :- exit(X, Y, Z).
        """
    )


def example_71_program() -> Program:
    """Example 7.1: factoring the factored output again (future work)."""
    return parse_program(
        """
        t(X, Y, Z) :- t(X, U, W), b(U, Y), d(Z).
        t(X, Y, Z) :- e(X, Y, Z).
        """
    )


def same_generation_program() -> Program:
    """The canonical non-factorable program (Section 6.4's remark)."""
    return parse_program(
        """
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        sg(X, Y) :- flat(X, Y).
        """
    )


def same_generation_edb(depth: int = 5, branching: int = 2) -> Database:
    """A balanced tree with sibling ``flat`` links at every level.

    Same-generation facts then propagate from any level downward, so a
    query on a deep node (e.g. the last leaf) has answers reachable
    through the recursion, not just through ``flat`` directly.
    """
    from repro.workloads.graphs import tree_edb

    db = tree_edb(depth, branching)
    children_of: Dict[int, List[int]] = {}
    for (child, parent) in db.relations[("up", 2)].tuples:
        children_of.setdefault(parent.value, []).append(child.value)
    for siblings in children_of.values():
        siblings.sort()
        for a, b in zip(siblings, siblings[1:]):
            db.add_fact("flat", (a, b))
    return db


def same_generation_query_node(depth: int = 5, branching: int = 2) -> int:
    """The first node at the deepest level of :func:`same_generation_edb`.

    Nodes are numbered breadth-first from the root 0, so the first node
    of level ``depth`` is the number of nodes on levels ``0..depth-1``.
    """
    return sum(branching ** level for level in range(depth))
