"""Graph EDB generators for the transitive-closure experiments.

All generators fill a binary edge relation (default name ``e``) over
integer vertices ``0..n-1`` and return a
:class:`repro.engine.database.Database`.  Randomness is seeded for
reproducibility — the benchmark tables must be regenerable.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.engine.database import Database


def chain_edb(n: int, relation: str = "e") -> Database:
    """A simple path ``0 -> 1 -> ... -> n-1``.

    The canonical workload for the O(n) vs O(n^2) separation: from a
    single source, transitive closure has n-1 answers but the binary
    ``t`` relation over all sources has ~n^2/2 tuples.
    """
    db = Database()
    db.add_facts(relation, ((i, i + 1) for i in range(n - 1)))
    return db


def cycle_edb(n: int, relation: str = "e") -> Database:
    """A directed cycle over ``n`` vertices."""
    db = Database()
    db.add_facts(relation, ((i, (i + 1) % n) for i in range(n)))
    return db


def complete_edb(n: int, relation: str = "e") -> Database:
    """The complete digraph (no self-loops) — the dense extreme."""
    db = Database()
    db.add_facts(
        relation, ((i, j) for i in range(n) for j in range(n) if i != j)
    )
    return db


def random_digraph_edb(
    n: int,
    edges: Optional[int] = None,
    seed: int = 0,
    relation: str = "e",
) -> Database:
    """A random digraph with ``edges`` distinct edges (default ``2n``)."""
    rng = random.Random(seed)
    target = edges if edges is not None else 2 * n
    seen = set()
    while len(seen) < target and len(seen) < n * (n - 1):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            seen.add((u, v))
    db = Database()
    db.add_facts(relation, seen)
    return db


def tree_edb(
    depth: int,
    branching: int = 2,
    up_relation: str = "up",
    down_relation: str = "down",
) -> Database:
    """A balanced tree with ``up`` (child -> parent) and ``down`` edges.

    The same-generation workload (experiment E8): nodes are numbered
    breadth-first from the root 0.
    """
    db = Database()
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                child = next_id
                next_id += 1
                db.add_fact(up_relation, (child, parent))
                db.add_fact(down_relation, (parent, child))
                new_frontier.append(child)
        frontier = new_frontier
    return db


def grid_edb(rows: int, cols: int, relation: str = "e") -> Database:
    """A directed grid (right and down edges), vertex ``(r, c) -> r*cols+c``."""
    db = Database()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                db.add_fact(relation, (v, v + 1))
            if r + 1 < rows:
                db.add_fact(relation, (v, v + cols))
    return db
