"""A user-facing deductive-database session.

:class:`DeductiveDatabase` is the convenience layer a downstream
application uses: load rules, assert facts, and ask queries.  Each
query is planned through the paper's pipeline — adornment, Magic Sets,
factorability analysis, factoring, Section 5 simplification — and
evaluated semi-naively; plans are cached per query *form* (predicate +
binding pattern), so repeated queries with different constants reuse
the compiled program.

    db = DeductiveDatabase()
    db.rules(\"\"\"
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- edge(X, W), reach(W, Y).
    \"\"\")
    db.fact("edge", 1, 2)
    for (y,) in db.ask("reach(1, Y)"):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.pipeline import OptimizationResult, optimize
from repro.datalog.literals import Literal
from repro.datalog.parser import parse_program, parse_query
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.validate import ensure_no_reserved_names, reserved_name_reason
from repro.engine.database import Database
from repro.engine.incremental import IncrementalSession
from repro.engine.query import QueryCompiler
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats


@dataclass
class QueryReport:
    """What `ask` did: the plan used and the evaluation cost."""

    goal: Literal
    strategy: str  # "factored" | "counting" | "magic" | "edb" | "materialize"
    certified_by: Optional[str]
    stats: EvalStats
    answers: Set[Tuple]


class DeductiveDatabase:
    """Rules + facts + an optimizing query interface.

    ``planner`` selects the join-order strategy used when queries are
    evaluated: ``"greedy"`` (deterministic, syntactic) or ``"cost"``
    (statistics-driven with drift-triggered re-planning); ``None``
    defers to the ``REPRO_PLANNER`` environment variable.  ``jobs``
    evaluates independent SCCs of the compiled program concurrently
    (``None`` defers to ``REPRO_JOBS``; answers and counters are
    identical for every job count) and ``backend`` picks the executor
    they run on — ``"serial"``, ``"thread"``, or ``"process"`` for
    real multi-core parallelism (``None`` defers to
    ``REPRO_BACKEND``).  ``exec`` selects how compiled plans run:
    ``"columnar"`` (the default) batches interned rows through the
    column kernel, ``"tuple"`` forces the tuple-at-a-time oracle —
    answers and counters are identical either way (``None`` defers to
    ``REPRO_EXEC``).  ``partitions`` hash-splits the delta rounds
    *inside* recursive components of the compiled/materialized program
    (``None`` defers to ``REPRO_PARTITIONS``; answers and counters are
    identical for every partition count — see
    :mod:`repro.engine.partition`).  ``max_seconds`` arms a per-component
    wall-clock watchdog on materialized sessions (``None`` defers to
    ``REPRO_TIMEOUT``): a runaway maintenance fixpoint rolls back with
    :class:`~repro.engine.stats.MaintenanceError` instead of hanging.
    ``use_plans=False`` drops to the legacy dict-based interpreter —
    the differential-testing escape hatch, not a production setting.
    """

    def __init__(
        self,
        use_instance_checks: bool = True,
        planner: Optional[str] = None,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        use_plans: bool = True,
        exec: Optional[str] = None,
        partitions: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ):
        self._rules: List = []
        self._program: Optional[Program] = None
        self._edb = Database()
        #: legacy-pipeline plan cache keyed by (predicate, arity,
        #: adornment string) — serves the introspection surface
        #: (:meth:`compiled_program` / :meth:`plan_summary`)
        self._plans: Dict[Tuple[str, int, str], OptimizationResult] = {}
        #: the goal-directed serving path behind :meth:`ask`, built
        #: lazily over the effective (bridged) program and dropped on
        #: every mutation
        self._compiler: Optional[QueryCompiler] = None
        self._compiler_edb: Optional[Database] = None
        self._use_instance_checks = use_instance_checks
        self._planner = planner
        self._jobs = jobs
        self._backend = backend
        self._use_plans = use_plans
        self._exec = exec
        self._partitions = partitions
        self._max_seconds = max_seconds

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def rules(self, text: str) -> "DeductiveDatabase":
        """Add rules (Datalog text).  Ground facts load into the EDB.

        Predicate names reserved for generated code (``@``/``~``
        anywhere, the ``m_``/``cnt_``/``ans_`` prefixes, ``query``)
        are rejected with :class:`ValueError` — they would collide
        with the optimizer's rewrites.
        """
        program = parse_program(text)
        ensure_no_reserved_names(program)
        for rule in program.rules:
            if rule.is_fact():
                self._edb.relation(
                    rule.head.predicate, rule.head.arity
                ).add(rule.head.args)
            else:
                self._rules.append(rule)
        self._program = None
        self._plans.clear()
        self._invalidate_compiler()
        return self

    def _invalidate_compiler(self) -> None:
        self._compiler = None
        self._compiler_edb = None

    def _check_fact_predicate(self, predicate: str) -> None:
        reason = reserved_name_reason(predicate)
        if reason is not None:
            raise ValueError(
                f"cannot assert facts for predicate {predicate!r}: it {reason}"
            )

    def fact(self, predicate: str, *args) -> "DeductiveDatabase":
        """Assert one EDB fact; plain Python values are accepted."""
        self._check_fact_predicate(predicate)
        self._edb.add_fact(predicate, args)
        self._invalidate_compiler()
        return self

    def facts(self, predicate: str, rows: Iterable[Sequence]) -> "DeductiveDatabase":
        self._check_fact_predicate(predicate)
        self._edb.add_facts(predicate, rows)
        self._invalidate_compiler()
        return self

    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = Program(self._rules)
        return self._program

    @property
    def edb(self) -> Database:
        return self._edb

    # ------------------------------------------------------------------
    # Mixed EDB/IDB predicates
    # ------------------------------------------------------------------

    def _effective(self) -> Tuple[Program, Database]:
        """Bridge predicates that have both rules and stored facts.

        A predicate defined by rules *and* carrying stored facts (e.g.
        ``likes`` with base facts plus derivation rules) is split: the
        stored relation is exposed as ``pred__base`` and an exit rule
        ``pred(V̄) :- pred__base(V̄)`` is added, so the optimizer sees a
        clean IDB/EDB separation.
        """
        program = self.program
        overlap = [
            sig for sig in program.idb_signatures if self._edb.get(*sig)
        ]
        if not overlap:
            return program, self._edb
        bridged_rules = list(program.rules)
        edb_view = Database()
        for sig, rel in self._edb.relations.items():
            if sig in overlap:
                base = edb_view.relation(f"{sig[0]}__base", sig[1])
                for fact in rel:
                    base.add(fact)
            else:
                edb_view.relations[sig] = rel.copy()
        for name, arity in overlap:
            variables = tuple(Variable(f"V{i}") for i in range(arity))
            bridged_rules.append(
                Rule(
                    Literal(name, variables),
                    (Literal(f"{name}__base", variables),),
                )
            )
        return Program(bridged_rules), edb_view

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def _plan(self, goal: Literal) -> OptimizationResult:
        from repro.analysis.adornment import adornment_from_query

        adornment = str(adornment_from_query(goal))
        key = (goal.predicate, goal.arity, adornment)
        plan = self._plans.get(key)
        if plan is None or self._needs_replan(plan, goal):
            program, edb_view = self._effective()
            plan = optimize(
                program,
                goal,
                edb=edb_view if self._use_instance_checks else None,
            )
            self._plans[key] = plan
        return plan

    def _needs_replan(self, plan: OptimizationResult, goal: Literal) -> bool:
        """Replan when the cached plan's query constants differ.

        The compiled magic seed embeds the constants, so a different
        selection needs a fresh plan (the analysis outcome is shared
        conceptually, but plans are cheap at rule scale).
        """
        return plan.goal != goal

    def _serving_compiler(self) -> Tuple[QueryCompiler, Database]:
        """The goal-directed compiler over the effective program.

        Compiled query forms live as long as neither the rules nor the
        facts change (mutations call :meth:`_invalidate_compiler`), so
        repeated queries with different constants reuse the rewritten
        program *and* its compiled rule plans.
        """
        if self._compiler is None:
            program, edb_view = self._effective()
            self._compiler = QueryCompiler(
                program,
                planner=self._planner,
                jobs=self._jobs,
                backend=self._backend,
                use_plans=self._use_plans,
                exec=self._exec,
                partitions=self._partitions,
                use_instance_checks=self._use_instance_checks,
                max_seconds=self._max_seconds,
            )
            self._compiler_edb = edb_view
        return self._compiler, self._compiler_edb

    def ask(self, query: str, explain: bool = False):
        """Answer a query, e.g. ``db.ask("reach(1, Y)")``.

        Queries run through the goal-directed serving path
        (:class:`~repro.engine.query.QueryCompiler`): adornment, Magic
        Sets — counting or factoring where certified — compiled into
        rule plans and evaluated by the SCC scheduler against the
        stored facts only.  Returns a set of tuples of Python values
        (one per variable, in first-occurrence order), or a
        :class:`QueryReport` with the plan and statistics when
        ``explain=True``.
        """
        goal = parse_query(query)
        compiler, edb_view = self._serving_compiler()
        answer = compiler.ask(goal, edb_view)
        unwrapped = answer.values()
        if not explain:
            return unwrapped
        return QueryReport(
            goal=goal,
            strategy=answer.strategy,
            certified_by=answer.certified_by,
            stats=answer.stats,
            answers=unwrapped,
        )

    def holds(self, query: str) -> bool:
        """True when a ground query has a derivation."""
        return bool(self.ask(query))

    def explain(self, query: str) -> QueryReport:
        return self.ask(query, explain=True)

    # ------------------------------------------------------------------
    # Materialized serving
    # ------------------------------------------------------------------

    def materialize(self, **kwargs) -> IncrementalSession:
        """An incrementally maintained materialization of the full program.

        Where :meth:`ask` optimizes per query form (Magic Sets /
        factoring) and evaluates on demand, the returned
        :class:`~repro.engine.incremental.IncrementalSession` evaluates
        the *whole* program once and then maintains every IDB relation
        under ``insert``/``delete`` — the serving configuration: point
        queries read the materialized database, updates pay only the
        delta.  ``kwargs`` pass through to ``IncrementalSession``
        (``planner=``, ``record_provenance=``, ...), defaulting to this
        database's engine knobs.

        The session snapshots the rules and facts loaded so far;
        afterwards, update *it*, not this object.  Predicates holding
        both stored facts and rules are bridged exactly like
        :meth:`ask` (the stored relation becomes ``pred__base``); the
        session translates updates of such predicates transparently.
        """
        kwargs.setdefault("planner", self._planner)
        kwargs.setdefault("jobs", self._jobs)
        kwargs.setdefault("backend", self._backend)
        kwargs.setdefault("use_plans", self._use_plans)
        kwargs.setdefault("exec", self._exec)
        kwargs.setdefault("partitions", self._partitions)
        kwargs.setdefault("max_seconds", self._max_seconds)
        program, edb_view = self._effective()
        bridged = {
            sig
            for sig in self.program.idb_signatures
            if self._edb.get(*sig)
        }
        if not bridged:
            return IncrementalSession(program, edb_view, **kwargs)
        return _BridgedIncrementalSession(bridged, program, edb_view, **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def compiled_program(self, query: str) -> Program:
        """The optimized program that would answer ``query``."""
        return self._plan(parse_query(query)).best_program()

    def plan_summary(self, query: str) -> str:
        """A human-readable account of the optimization decisions."""
        plan = self._plan(parse_query(query))
        lines = [f"query: {plan.goal}"]
        if plan.reduction is not None:
            lines.append(
                f"static-argument reduction removed positions "
                f"{list(plan.reduction.removed_positions)}"
            )
        if plan.classification is not None:
            lines.append(
                "classification: "
                + ", ".join(
                    rc.rule_class.value for rc in plan.classification.rules
                )
            )
        if plan.report is not None and plan.report.certified_by:
            lines.append(f"factorable: yes — {plan.report.certified_by}")
        elif plan.report is not None:
            lines.append("factorable: no — falling back to Magic Sets")
        else:
            lines.append("factorable: not applicable — Magic Sets only")
        lines.append("compiled program:")
        for rule in plan.best_program():
            lines.append(f"  {rule}")
        return "\n".join(lines)


class _BridgedIncrementalSession(IncrementalSession):
    """An incremental session over a bridged mixed-predicate program.

    :meth:`DeductiveDatabase.materialize` splits predicates that carry
    both stored facts and rules: the stored relation becomes
    ``pred__base`` with an exit rule ``pred(V̄) :- pred__base(V̄)``.
    Updates arriving under the user-facing name are renamed to the base
    relation here, so callers never see the bridge.
    """

    def __init__(self, bridged, *args, **kwargs):
        self._bridged = frozenset(bridged)
        super().__init__(*args, **kwargs)

    def _normalize(self, facts):
        normalized = super()._normalize(facts)
        out = {}
        for (name, arity), rows in normalized.items():
            if (name, arity) in self._bridged:
                name = f"{name}__base"
            out.setdefault((name, arity), []).extend(rows)
        return out
