"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import Measurement, Series, render_table, bench_scale

__all__ = ["Measurement", "Series", "render_table", "bench_scale"]
