"""Measurement records and table rendering for the experiment suite.

The paper's claims are about *who wins and by how much* as inputs grow,
so every benchmark produces a :class:`Series` of :class:`Measurement`
rows — facts, inferences, iterations, wall time per configuration — and
prints it as a paper-style table.  ``REPRO_BENCH_SCALE`` scales the
input sizes (default 1.0) so the same code runs as a smoke test or a
full sweep.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


def bench_scale() -> float:
    """The global input-size multiplier from ``REPRO_BENCH_SCALE``.

    A malformed value warns (naming the bad value) and falls back to
    1.0 instead of silently rescaling the whole suite.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return 1.0
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_BENCH_SCALE={raw!r} "
            "(not a number); defaulting to 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0


@dataclass
class Measurement:
    """One row: a labelled configuration and its counters."""

    label: str
    n: int
    facts: int = 0
    inferences: int = 0
    iterations: int = 0
    seconds: float = 0.0
    answers: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def row(self) -> List[str]:
        cells = [
            self.label,
            str(self.n),
            str(self.answers),
            str(self.facts),
            str(self.inferences),
            str(self.iterations),
            f"{self.seconds * 1000:.2f}",
        ]
        cells.extend(str(v) for v in self.extra.values())
        return cells

    def header(self) -> List[str]:
        base = ["config", "n", "answers", "facts", "inferences", "iters", "ms"]
        base.extend(self.extra.keys())
        return base


@dataclass
class Series:
    """A titled collection of measurements (one experiment's table)."""

    title: str
    measurements: List[Measurement] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, measurement: Measurement) -> None:
        self.measurements.append(measurement)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        if not self.measurements:
            return f"== {self.title} ==\n(no measurements)"
        header = self.measurements[0].header()
        rows = [m.row() for m in self.measurements]
        table = render_table(header, rows)
        parts = [f"== {self.title} ==", table]
        parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)

    def show(self) -> None:
        print()
        print(self.render())


def render_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Monospace-aligned table rendering."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(cells)
        )
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def speedup(baseline: Measurement, improved: Measurement, metric: str = "inferences") -> float:
    """Ratio baseline/improved on a counter (guarding zero)."""
    base = getattr(baseline, metric)
    new = getattr(improved, metric)
    if new == 0:
        return float("inf") if base else 1.0
    return base / new
