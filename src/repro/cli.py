"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``classify``   Report rule classification, one-sidedness, separability,
               and factorability for a program + query.
``optimize``   Print every stage of the optimization pipeline;
               ``--evaluate STAGE`` runs a named stage (original,
               magic, factored, simplified) over ``--facts``.
``run``        Evaluate a query over a program and facts file.
``query``      Goal-directed serving: compile the query form
               (adornment + Magic Sets, or counting/factoring where a
               theorem certifies it) and evaluate it against the facts
               — the paper's query-serving configuration.
``validate``   Lint a program (safety, arities, singletons, ...).
``explain``    Print a derivation tree for one ground fact.
``serve``      Materialize the program and serve queries under EDB
               churn: an incremental-maintenance REPL (or ``--script``
               batch mode) with ``+ fact.`` / ``- fact.`` / ``? query``
               commands.  ``--journal PATH`` write-ahead-logs every
               update for crash recovery; ``--strict`` makes script
               errors fatal instead of report-and-continue.
``recover``    Replay a journal into a fresh session and dump the
               recovered database as sorted Datalog facts — the
               verification half of crash recovery (two runs that must
               agree produce byte-identical dumps).

Programs are Datalog text files; facts files are Datalog files of
ground facts (``e(1, 2).``), loaded as the EDB.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_literal, parse_program, parse_query
from repro.datalog.program import Program
from repro.datalog.validate import validate_program
from repro.engine.database import Database, load_program_facts
from repro.engine.provenance import explain as explain_fact
from repro.engine.seminaive import seminaive_eval


def _load_program(path: str) -> Program:
    with open(path) as handle:
        return parse_program(handle.read())


def _load_edb(path: Optional[str]) -> Database:
    db = Database()
    if path is None:
        return db
    facts = _load_program(path)
    load_program_facts(facts, db)
    return db


def cmd_classify(args) -> int:
    program = _load_program(args.program)
    goal = parse_query(args.query)
    result = optimize(program, goal)
    if result.classification is not None:
        print("classification:")
        for rc in result.classification.rules:
            print(f"  {rc.rule_class.value:14s}  {rc.rule}")
        if not result.classification.ok:
            print(f"  reason: {result.classification.reason}")
    if result.reduction is not None:
        print(
            f"static-argument reduction removed positions "
            f"{list(result.reduction.removed_positions)}"
        )
    if result.report is not None and result.report.factorable:
        print(f"factorable: yes — {result.report.certified_by}")
    elif result.report is not None:
        print("factorable: no")
        for reason in result.report.reasons:
            print(f"  - {reason}")
    else:
        print("factorable: not applicable")
    return 0


def cmd_optimize(args) -> int:
    program = _load_program(args.program)
    goal = parse_query(args.query)
    # Resolve the engine knobs up front: a bad --jobs/--backend (or a
    # stage name evaluate_stage rejects) must fail before any printing
    # or evaluation, not halfway through.
    jobs = _checked_jobs(args)
    backend = _checked_backend(args)
    exec_mode = _checked_exec(args)
    partitions = _checked_partitions(args)
    result = optimize(program, goal)
    if args.evaluate is not None:
        edb = _load_edb(args.facts)
        answers, stats = result.evaluate_stage(
            args.evaluate,
            edb,
            planner=args.planner,
            jobs=jobs,
            backend=backend,
            exec=exec_mode,
            partitions=partitions,
        )
        _print_answers(answers)
        print(
            f"-- stage {args.evaluate}: {len(answers)} answers; "
            f"{stats.facts} facts, {stats.inferences} inferences, "
            f"{stats.seconds * 1000:.1f} ms",
            file=sys.stderr,
        )
        return 0
    print("=== adorned ===")
    print(result.adorned.program)
    print("\n=== magic ===")
    print(result.magic.program)
    if result.factored is not None:
        print("\n=== factored ===")
        print(result.factored.program)
    if result.simplified is not None:
        print("\n=== simplified ===")
        print(result.simplified.program)
    if args.trace and result.trace is not None:
        print("\n=== simplification trace ===")
        for step in result.trace.steps:
            print(f"  {step}")
    return 0


def _checked_jobs(args) -> int:
    """Validate --jobs / $REPRO_JOBS up front for a clean CLI error."""
    from repro.engine.scheduler import resolve_jobs

    return resolve_jobs(args.jobs)


def _checked_backend(args) -> str:
    """Validate --backend / $REPRO_BACKEND up front for a clean CLI error."""
    from repro.engine.backends import resolve_backend

    return resolve_backend(args.backend)


def _checked_exec(args) -> str:
    """Validate --exec / $REPRO_EXEC up front for a clean CLI error."""
    from repro.engine.columnar import resolve_exec

    return resolve_exec(args.exec)


def _checked_partitions(args) -> int:
    """Validate --partitions / $REPRO_PARTITIONS up front."""
    from repro.engine.partition import resolve_partitions

    return resolve_partitions(args.partitions)


def cmd_run(args) -> int:
    program = _load_program(args.program)
    goal = parse_query(args.query)
    edb = _load_edb(args.facts)
    jobs = _checked_jobs(args)
    backend = _checked_backend(args)
    result = optimize(program, goal)
    answers, stats = result.answers(
        edb,
        planner=args.planner,
        jobs=jobs,
        backend=backend,
        exec=_checked_exec(args),
        partitions=_checked_partitions(args),
    )
    strategy = "factored" if result.simplified is not None else "magic"
    _print_answers(answers)
    print(
        f"-- {len(answers)} answers via {strategy}; {stats.facts} facts, "
        f"{stats.inferences} inferences, {stats.seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    if args.stats:
        _print_stats(stats)
    return 0


def _print_stats(stats) -> None:
    """The full counter dump behind ``repro run --stats``."""
    print("-- stats:", file=sys.stderr)
    rows = [
        ("facts", stats.facts),
        ("inferences", stats.inferences),
        ("iterations", stats.iterations),
        ("probes", stats.probes),
        ("plans_compiled", stats.plans_compiled),
        ("plan_cache_hits", stats.plan_cache_hits),
        ("replans", stats.replans),
        ("scc_count", stats.scc_count),
        ("scc_parallel_batches", stats.scc_parallel_batches),
        ("scc_batches_shipped", stats.scc_batches_shipped),
        ("backend_retries", stats.backend_retries),
        ("backend_fallbacks", stats.backend_fallbacks),
        ("partition_rounds", stats.partition_rounds),
        ("partition_skew", f"{stats.partition_skew:.2f}"),
        ("seconds", f"{stats.seconds:.4f}"),
    ]
    for name, value in rows:
        print(f"--   {name}: {value}", file=sys.stderr)


def cmd_query(args) -> int:
    from repro.datalog.validate import ensure_no_reserved_names
    from repro.engine.query import QueryCompiler

    program = _load_program(args.program)
    ensure_no_reserved_names(program)
    goal = parse_query(args.query)
    edb = _load_edb(args.facts)
    compiler = QueryCompiler(
        program,
        planner=args.planner,
        jobs=_checked_jobs(args),
        backend=_checked_backend(args),
        exec=_checked_exec(args),
        partitions=_checked_partitions(args),
    )
    answer = compiler.ask(goal, edb)
    _print_answers(answer.values())
    certified = f" ({answer.certified_by})" if answer.certified_by else ""
    print(
        f"-- {len(answer.answers)} answers via {answer.strategy}{certified}; "
        f"{answer.stats.facts} facts, {answer.stats.inferences} inferences, "
        f"{answer.stats.seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def cmd_validate(args) -> int:
    program = _load_program(args.program)
    report = validate_program(program)
    print(report)
    return 0 if report.ok else 1


def cmd_explain(args) -> int:
    program = _load_program(args.program)
    edb = _load_edb(args.facts)
    fact = parse_literal(args.fact)
    jobs = _checked_jobs(args)
    backend = _checked_backend(args)
    _checked_exec(args)  # validated; provenance evaluation is tuple-mode
    _checked_partitions(args)  # validated; provenance runs unpartitioned
    try:
        tree = explain_fact(
            program, edb, fact, planner=args.planner, jobs=jobs, backend=backend
        )
    except KeyError:
        print(f"{fact} is not derivable", file=sys.stderr)
        return 1
    print(tree.render())
    return 0


def _print_answers(answers) -> None:
    for row in sorted(answers, key=str):
        print("\t".join(str(value) for value in row) if row else "true")


class ServeLoop:
    """The serve REPL's command executor.

    Commands: ``+ facts.`` insert, ``- facts.`` delete, ``? query``
    ask, ``explain fact`` derivation tree (``--provenance`` only),
    ``stats`` counters, ``quit`` exit; blank lines and ``#`` comments
    are skipped.  The update/journal/checkpoint policy lives in
    :class:`~repro.engine.server.DatalogServer` — the REPL is that
    server driven by a single client: every update runs as one atomic,
    write-ahead-journaled
    :meth:`~repro.engine.incremental.IncrementalSession.apply_batch`
    (a rolled-back batch appends a compensating abort record; a
    checkpoint is appended every ``checkpoint_every`` batches), so a
    failing command rolls back cleanly and the loop keeps serving;
    errors report with their script line number.
    """

    def __init__(
        self,
        session,
        *,
        provenance: bool = False,
        journal=None,
        checkpoint_every: Optional[int] = None,
    ):
        from repro.engine.server import DatalogServer

        self.session = session
        self.provenance = provenance
        self.journal = journal
        self.server = DatalogServer(
            session, journal=journal, checkpoint_every=checkpoint_every
        )

    def run_line(self, line: str, lineno: Optional[int] = None) -> str:
        """Execute one command; returns ``"ok"``, ``"error"``, or ``"quit"``."""
        line = line.strip()
        if not line or line.startswith("#"):
            return "ok"
        try:
            if line.startswith("+"):
                stats = self._update(inserts=line[1:].strip())
                print(
                    f"+{stats.facts} facts ({stats.incr_rounds} rounds, "
                    f"{stats.seconds * 1000:.1f} ms)"
                )
            elif line.startswith("-"):
                stats = self._update(deletes=line[1:].strip())
                print(
                    f"deleted ({stats.incr_rounds} rounds, "
                    f"{stats.rederived} rederived, "
                    f"{stats.seconds * 1000:.1f} ms)"
                )
            elif line.startswith("?"):
                # Goal-directed: the query form is compiled (adornment
                # + Magic Sets / counting / factoring) and evaluated
                # against the pinned EDB view — read-only, never
                # journaled.
                _print_answers(self.server.query_goal(line[1:].strip()))
            elif line.startswith("explain "):
                if not self.provenance:
                    raise ValueError("explain needs --provenance")
                print(
                    self.session.explain(line[len("explain "):].strip()).render()
                )
            elif line == "stats":
                print(self.session.stats)
            elif line in ("quit", "exit"):
                return "quit"
            else:
                raise ValueError(f"unknown command {line!r}")
        except (ValueError, KeyError, RuntimeError) as exc:
            prefix = f"error: line {lineno}: " if lineno else "error: "
            print(f"{prefix}{exc}", file=sys.stderr)
            return "error"
        return "ok"

    def _update(self, inserts=None, deletes=None):
        """One atomic, journaled update batch (see DatalogServer)."""
        return self.server.apply_batch(inserts=inserts, deletes=deletes)


def _serve_session(args, program, edb):
    """Build (or recover) the serve session and its optional journal."""
    from repro.engine.incremental import IncrementalSession
    from repro.engine.journal import Journal, recover_session

    knobs = dict(
        planner=args.planner,
        jobs=_checked_jobs(args),
        backend=_checked_backend(args),
        exec=_checked_exec(args),
        partitions=_checked_partitions(args),
        record_provenance=args.provenance,
        max_seconds=args.timeout,
    )
    if args.journal and os.path.exists(args.journal):
        session, journal, replayed = recover_session(
            program, args.journal, edb, **knobs
        )
        if replayed:
            print(
                f"recovered {replayed} batches from {args.journal}",
                file=sys.stderr,
            )
        return session, journal
    session = IncrementalSession(program, edb, **knobs)
    journal = Journal(args.journal) if args.journal else None
    return session, journal


def _serve_socket(args, session, journal) -> int:
    """The concurrent socket front (serve --workers N)."""
    from repro.engine.server import DatalogServer, SocketFront

    server = DatalogServer(
        session, journal=journal, checkpoint_every=args.checkpoint_every
    )
    front = SocketFront(
        server,
        host=args.host,
        port=args.port,
        workers=args.workers,
        provenance=args.provenance,
    )
    host, port = front.start()
    print(
        f"materialized {session.database.total_facts()} facts in "
        f"{session.stats.seconds * 1000:.1f} ms; serving",
        file=sys.stderr,
    )
    # The machine-readable contract clients parse for ephemeral ports.
    print(f"listening on {host}:{port}", flush=True)
    try:
        front.wait()
    except KeyboardInterrupt:
        pass
    finally:
        front.shutdown()
        server.close()
    return 0


def cmd_serve(args) -> int:
    from repro.engine import faults

    program = _load_program(args.program)
    edb = _load_edb(args.facts)
    faults.active_plan()  # malformed $REPRO_FAULTS fails here, loudly
    if args.workers is not None:
        if args.workers < 1:
            raise ValueError(
                f"invalid workers={args.workers!r}; expected a "
                f"positive integer"
            )
        if args.script:
            raise ValueError(
                "--script and --workers are mutually exclusive: socket "
                "mode takes commands from client connections"
            )
        session, journal = _serve_session(args, program, edb)
        return _serve_socket(args, session, journal)
    session, journal = _serve_session(args, program, edb)
    loop = ServeLoop(
        session,
        provenance=args.provenance,
        journal=journal,
        checkpoint_every=args.checkpoint_every,
    )
    print(
        f"materialized {session.database.total_facts()} facts in "
        f"{session.stats.seconds * 1000:.1f} ms; serving",
        file=sys.stderr,
    )
    try:
        if args.script:
            with open(args.script) as handle:
                for lineno, line in enumerate(handle, 1):
                    status = loop.run_line(line, lineno)
                    if status == "quit":
                        break
                    if status == "error" and args.strict:
                        print(
                            f"aborting at line {lineno} (--strict); "
                            f"the failing command was rolled back",
                            file=sys.stderr,
                        )
                        return 1
            return 0
        while True:
            try:
                line = input("repro> ")
            except EOFError:
                break
            if loop.run_line(line) == "quit":
                break
        return 0
    finally:
        if journal is not None:
            journal.close()


def cmd_recover(args) -> int:
    from repro.engine.journal import recover_session

    program = _load_program(args.program)
    edb = _load_edb(args.facts)
    session, journal, replayed = recover_session(
        program,
        args.journal,
        edb,
        planner=args.planner,
        jobs=_checked_jobs(args),
        backend=_checked_backend(args),
        exec=_checked_exec(args),
        partitions=_checked_partitions(args),
        record_provenance=args.provenance,
        max_seconds=args.timeout,
    )
    journal.close()
    print(
        f"replayed {replayed} batches; "
        f"{session.database.total_facts()} facts",
        file=sys.stderr,
    )
    for sig in sorted(session.database.relations):
        rel = session.database.relations[sig]
        for fact in sorted(rel.tuples, key=str):
            print(f"{sig[0]}({', '.join(str(t) for t in fact)}).")
    return 0


def _add_engine_options(parser) -> None:
    """Evaluation knobs shared by the evaluating commands."""
    parser.add_argument(
        "--planner",
        choices=["greedy", "cost"],
        default=None,
        help="join-order strategy (default: $REPRO_PLANNER or greedy)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="evaluate up to N independent SCCs concurrently "
        "(default: $REPRO_JOBS or 1; answers are identical)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend for parallel SCC batches: serial, "
        "thread, or process (default: $REPRO_BACKEND or thread; "
        "answers are identical)",
    )
    parser.add_argument(
        "--exec",
        default=None,
        metavar="MODE",
        help="plan execution mode: columnar (batch-at-a-time over "
        "interned columns) or tuple (the tuple-at-a-time oracle) "
        "(default: $REPRO_EXEC or columnar; answers and counters "
        "are identical)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="hash-split each delta round inside recursive components "
        "into N partitions run through the backend's executor "
        "(default: $REPRO_PARTITIONS or 1; answers and counters "
        "are identical)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Argument reduction by factoring — Datalog optimizer CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="classify a program for a query form")
    p.add_argument("program")
    p.add_argument("query")
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("optimize", help="print all pipeline stages")
    p.add_argument("program")
    p.add_argument("query")
    p.add_argument("--trace", action="store_true", help="show deletions")
    p.add_argument(
        "--evaluate",
        default=None,
        metavar="STAGE",
        help="evaluate one pipeline stage over --facts instead of "
        "printing programs: original, magic, factored, or simplified "
        "(an unknown or unproduced stage fails before evaluation)",
    )
    p.add_argument("--facts", help="Datalog file of ground facts")
    _add_engine_options(p)
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("run", help="answer a query over a facts file")
    p.add_argument("program")
    p.add_argument("query")
    p.add_argument("--facts", help="Datalog file of ground facts")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the full evaluation counter dump (probes, plan "
        "cache, SCC batches, partition rounds/skew) to stderr",
    )
    _add_engine_options(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "query",
        help="goal-directed answers via the compiled serving path",
    )
    p.add_argument("program")
    p.add_argument("query")
    p.add_argument("--facts", help="Datalog file of ground facts")
    _add_engine_options(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "serve",
        help="materialize the program and maintain it under EDB churn",
    )
    p.add_argument("program")
    p.add_argument("--facts", help="Datalog file of ground facts")
    p.add_argument(
        "--script",
        help="batch mode: read serve commands (+/-/?/stats) from this "
        "file instead of stdin",
    )
    p.add_argument(
        "--provenance",
        action="store_true",
        help="record derivations and enable the 'explain fact' command",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        help="write-ahead journal: log each update (fsync'd) before "
        "applying it; on restart, committed batches replay so the "
        "session resumes exactly where it left off",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="append an EDB checkpoint to the journal every N batches "
        "(bounds replay time after a restart)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="script mode: stop at the first failing line (exit 1) "
        "instead of report-and-continue; either way the failing "
        "command is rolled back",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-component wall-clock budget: a runaway fixpoint "
        "raises (and an update rolls back) instead of hanging "
        "(default: $REPRO_TIMEOUT or unlimited)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="serve a line-oriented TCP protocol with up to N "
        "concurrent connections (snapshot-isolated readers, one "
        "writer) instead of the stdin REPL; see docs/serve.md",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="socket mode: address to bind (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="socket mode: port to bind; 0 picks a free port, printed "
        "as 'listening on HOST:PORT' on stdout (default: 0)",
    )
    _add_engine_options(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "recover",
        help="replay a journal and dump the recovered database",
    )
    p.add_argument("program")
    p.add_argument("journal", help="journal file written by serve --journal")
    p.add_argument("--facts", help="Datalog file of the original base facts")
    p.add_argument(
        "--provenance",
        action="store_true",
        help="recover with derivation recording (must match the "
        "original serve run's setting)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-component wall-clock budget during replay",
    )
    _add_engine_options(p)
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("validate", help="lint a program")
    p.add_argument("program")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("explain", help="derivation tree for a ground fact")
    p.add_argument("program")
    p.add_argument("fact")
    p.add_argument("--facts", help="Datalog file of ground facts")
    _add_engine_options(p)
    p.set_defaults(func=cmd_explain)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Bad knob values (--jobs 0, --backend bogus, malformed
        # $REPRO_JOBS/$REPRO_PLANNER/$REPRO_BACKEND, unsafe rules) are
        # user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
