"""Programs: ordered collections of rules with signature-level helpers.

Following the deductive-database convention the paper adopts in
Section 2, a :class:`Program` is the IDB — the rule set — while EDB
facts live in a :class:`repro.engine.database.Database`.  Ground fact
rules are nevertheless permitted inside programs (magic seeds such as
``m_tbf(5).`` are program rules in the paper), and the evaluators load
them into the database before iterating.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.rules import Rule

Signature = Tuple[str, int]


class Program:
    """An immutable sequence of rules.

    The class carries the derived/extensional split: a predicate is
    *intensional* (IDB) if it appears in some rule head, *extensional*
    (EDB) otherwise.  Callers may also declare EDB signatures explicitly
    (needed when a predicate has both stored facts and rules, which the
    paper never requires but the engine tolerates).
    """

    __slots__ = ("rules", "_idb", "_edb_declared", "_hash")

    def __init__(self, rules: Iterable[Rule], edb: Iterable[Signature] = ()):
        rules = tuple(rules)
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "_edb_declared", frozenset(edb))
        object.__setattr__(
            self, "_idb", frozenset(rule.head.signature for rule in rules)
        )
        object.__setattr__(self, "_hash", hash(rules))

    def __setattr__(self, key, value):
        raise AttributeError("Program is immutable")

    # ------------------------------------------------------------------
    # Signature queries
    # ------------------------------------------------------------------

    @property
    def idb_signatures(self) -> FrozenSet[Signature]:
        """Signatures defined by at least one rule."""
        return self._idb

    @property
    def edb_signatures(self) -> FrozenSet[Signature]:
        """Signatures referenced in bodies but never defined, plus declared EDBs."""
        referenced = {
            lit.signature for rule in self.rules for lit in rule.body
        }
        return frozenset((referenced - self._idb) | self._edb_declared)

    def is_idb(self, signature: Signature) -> bool:
        return signature in self._idb

    def is_edb_literal(self, literal: Literal) -> bool:
        return literal.signature not in self._idb

    def predicates(self) -> FrozenSet[Signature]:
        sigs: Set[Signature] = set(self._idb)
        for rule in self.rules:
            for lit in rule.body:
                sigs.add(lit.signature)
        return frozenset(sigs)

    # ------------------------------------------------------------------
    # Rule access
    # ------------------------------------------------------------------

    def rules_for(self, predicate: str, arity: Optional[int] = None) -> List[Rule]:
        """All rules whose head predicate is ``predicate`` (and arity, if given)."""
        return [
            rule
            for rule in self.rules
            if rule.head.predicate == predicate
            and (arity is None or rule.head.arity == arity)
        ]

    def facts(self) -> List[Rule]:
        return [rule for rule in self.rules if rule.is_fact()]

    def proper_rules(self) -> List[Rule]:
        return [rule for rule in self.rules if rule.body]

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        return Program(rules, self._edb_declared)

    def add_rules(self, rules: Iterable[Rule]) -> "Program":
        return Program((*self.rules, *rules), self._edb_declared)

    def remove_rule(self, rule: Rule) -> "Program":
        remaining = list(self.rules)
        remaining.remove(rule)
        return Program(remaining, self._edb_declared)

    def replace_rule(self, old: Rule, new: Sequence[Rule]) -> "Program":
        out: List[Rule] = []
        replaced = False
        for rule in self.rules:
            if not replaced and rule == old:
                out.extend(new)
                replaced = True
            else:
                out.append(rule)
        if not replaced:
            raise ValueError(f"rule not in program: {old}")
        return Program(out, self._edb_declared)

    def declare_edb(self, signatures: Iterable[Signature]) -> "Program":
        return Program(self.rules, self._edb_declared | set(signatures))

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self.rules

    def __eq__(self, other) -> bool:
        return isinstance(other, Program) and other.rules == self.rules

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules)"

    def __str__(self) -> str:
        from repro.datalog.pretty import pretty_program

        return pretty_program(self)

    # ------------------------------------------------------------------
    # Sanity checks
    # ------------------------------------------------------------------

    def check_range_restricted(self) -> None:
        """Raise ``ValueError`` on the first non-range-restricted rule."""
        for rule in self.rules:
            if not rule.is_range_restricted():
                raise ValueError(f"rule is not range-restricted: {rule}")

    def uses_function_symbols(self) -> bool:
        """True if any rule contains a compound term.

        Nested compounds are necessarily wrapped in a top-level
        compound, so checking literal arguments suffices.
        """
        from repro.datalog.terms import Compound

        return any(
            isinstance(arg, Compound)
            for rule in self.rules
            for lit in (rule.head, *rule.body)
            for arg in lit.args
        )
