"""The Datalog language substrate: terms, literals, rules, programs.

This package defines the abstract syntax shared by every other
subsystem in the repository, together with a parser
(:mod:`repro.datalog.parser`) and a pretty-printer
(:mod:`repro.datalog.pretty`).

The language is Horn-clause logic with optional function symbols
(compound terms), matching the setting of the paper: pure Datalog for
Sections 3-6, and Prolog-style list terms for Examples 1.2 and 4.6.
Negation never appears in the paper and is not supported.
"""

from repro.datalog.terms import (
    Term,
    Variable,
    Constant,
    Compound,
    NIL,
    make_list,
    list_elements,
    is_ground,
    term_variables,
    fresh_variable,
)
from repro.datalog.literals import Literal
from repro.datalog.rules import Rule, Fact
from repro.datalog.program import Program
from repro.datalog.parser import (
    parse_program,
    parse_rule,
    parse_literal,
    parse_term,
    parse_query,
    ParseError,
)
from repro.datalog.pretty import pretty_term, pretty_literal, pretty_rule, pretty_program
from repro.datalog.validate import validate_program, ValidationReport, Diagnostic, Severity

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Compound",
    "NIL",
    "make_list",
    "list_elements",
    "is_ground",
    "term_variables",
    "fresh_variable",
    "Literal",
    "Rule",
    "Fact",
    "Program",
    "parse_program",
    "parse_rule",
    "parse_literal",
    "parse_term",
    "parse_query",
    "ParseError",
    "pretty_term",
    "pretty_literal",
    "pretty_rule",
    "pretty_program",
    "validate_program",
    "ValidationReport",
    "Diagnostic",
    "Severity",
]
