"""A recursive-descent parser for the Datalog dialect used in the paper.

Grammar (whitespace and ``%``-to-end-of-line comments ignored)::

    program  := (rule)*
    rule     := literal ( ":-" literal ("," literal)* )? "."
    literal  := predicate ( "(" term ("," term)* ")" )?
    term     := variable | integer | atom | string | compound | list
    compound := functor "(" term ("," term)* ")"
    list     := "[" "]" | "[" term ("," term)* ("|" term)? "]"

Variables start with an uppercase letter or ``_``; a bare ``_`` is an
anonymous variable and each occurrence parses to a fresh variable.
Atoms/predicates start with a lowercase letter and may contain
alphanumerics, ``_``, and the generated-name characters ``@``/``~``
so transformed programs can be round-tripped through text.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import (
    Constant,
    NIL,
    Term,
    Variable,
    fresh_variable,
    make_list,
)


class ParseError(ValueError):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


_PUNCT = {":-", "(", ")", "[", "]", "|", ",", ".", "?"}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    i, line, col = 0, 1, 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch == "%":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith(":-", i):
            tokens.append(_Token("punct", ":-", line, col))
            i += 2
            col += 2
            continue
        if ch in "()[]|,.?":
            tokens.append(_Token("punct", ch, line, col))
            i += 1
            col += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n and text[j] != "'":
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated quoted atom", line, col)
            tokens.append(_Token("qatom", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(_Token("int", text[i:j], line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_@~#"):
                j += 1
            word = text[i:j]
            if word[0].isupper() or word[0] == "_":
                tokens.append(_Token("var", word, line, col))
            else:
                tokens.append(_Token("atom", word, line, col))
            col += j - i
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers -------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line, tok.column)
        return tok

    def at_punct(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == "punct" and tok.text == text

    # -- grammar -------------------------------------------------------

    def program(self) -> Program:
        rules: List[Rule] = []
        while self.peek().kind != "eof":
            rules.append(self.rule())
        return Program(rules)

    def rule(self) -> Rule:
        head = self.literal()
        body: List[Literal] = []
        if self.at_punct(":-"):
            self.next()
            body.append(self.literal())
            while self.at_punct(","):
                self.next()
                body.append(self.literal())
        self.expect("punct", ".")
        return Rule(head, body)

    def literal(self) -> Literal:
        tok = self.next()
        if tok.kind not in ("atom", "qatom"):
            raise ParseError(f"expected predicate, found {tok.text!r}", tok.line, tok.column)
        predicate = tok.text
        args: List[Term] = []
        if self.at_punct("("):
            self.next()
            args.append(self.term())
            while self.at_punct(","):
                self.next()
                args.append(self.term())
            self.expect("punct", ")")
        return Literal(predicate, args)

    def term(self) -> Term:
        tok = self.peek()
        if tok.kind == "var":
            self.next()
            if tok.text == "_":
                return fresh_variable("ANON")
            return Variable(tok.text)
        if tok.kind == "int":
            self.next()
            return Constant(int(tok.text))
        if tok.kind == "qatom":
            self.next()
            return Constant(tok.text)
        if tok.kind == "atom":
            self.next()
            if self.at_punct("("):
                from repro.datalog.terms import Compound

                self.next()
                args = [self.term()]
                while self.at_punct(","):
                    self.next()
                    args.append(self.term())
                self.expect("punct", ")")
                return Compound(tok.text, args)
            return Constant(tok.text)
        if tok.kind == "punct" and tok.text == "[":
            return self.list_term()
        raise ParseError(f"expected term, found {tok.text!r}", tok.line, tok.column)

    def list_term(self) -> Term:
        self.expect("punct", "[")
        if self.at_punct("]"):
            self.next()
            return NIL
        elements = [self.term()]
        while self.at_punct(","):
            self.next()
            elements.append(self.term())
        tail: Term = NIL
        if self.at_punct("|"):
            self.next()
            tail = self.term()
        self.expect("punct", "]")
        return make_list(elements, tail)


def parse_program(text: str) -> Program:
    """Parse a whole program (a sequence of rules and facts)."""
    return _Parser(text).program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``"t(X, Y) :- e(X, Y)."``."""
    parser = _Parser(text)
    rule = parser.rule()
    if parser.peek().kind != "eof":
        tok = parser.peek()
        raise ParseError("trailing input after rule", tok.line, tok.column)
    return rule


def parse_literal(text: str) -> Literal:
    """Parse a single literal, e.g. ``"t(5, Y)"``."""
    parser = _Parser(text)
    literal = parser.literal()
    if parser.at_punct(".") or parser.at_punct("?"):
        parser.next()
    if parser.peek().kind != "eof":
        tok = parser.peek()
        raise ParseError("trailing input after literal", tok.line, tok.column)
    return literal


def parse_term(text: str) -> Term:
    """Parse a single term, e.g. ``"[a, b | T]"``."""
    parser = _Parser(text)
    term = parser.term()
    if parser.peek().kind != "eof":
        tok = parser.peek()
        raise ParseError("trailing input after term", tok.line, tok.column)
    return term


def parse_query(text: str) -> Literal:
    """Parse a query literal; a trailing ``?`` or ``.`` is accepted.

    The paper writes queries as ``t(5, Y)?``; this helper accepts that
    form and returns the goal literal.
    """
    return parse_literal(text)
