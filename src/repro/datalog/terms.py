"""Terms: variables, constants, and compound (function) terms.

Terms are immutable and hashable, so they can live in relation tuples,
substitution dictionaries, and index keys.  Compound terms are interned
(hash-consed) so that structurally equal terms are reference-equal;
this is the "structure-sharing implementation of lists" the paper
assumes in Example 4.6 — a shared list suffix is a shared object, and
equality/hashing of a shared suffix is O(1) after construction.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    def is_ground(self) -> bool:
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        raise NotImplementedError


class Variable(Term):
    """A logic variable, identified by name.

    Two variables are equal iff their names are equal; rule-local scoping
    is the caller's responsibility (the standard convention for Datalog
    rules, where variable scope is a single rule).
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name)))

    def __setattr__(self, key, value):
        raise AttributeError("Variable is immutable")

    def __reduce__(self):
        # Immutability (the __setattr__ override) breaks pickle's default
        # slot-state protocol; rebuild through the constructor instead.
        # Terms must pickle so compiled work units can cross the process
        # boundary of the parallel execution backend.
        return (Variable, (self.name,))

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant(Term):
    """A constant wrapping an arbitrary hashable Python value.

    Integers and strings cover everything in the paper; the wrapper is
    value-generic so workloads may use tuples or frozensets as atoms.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value):
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("const", value)))

    def __setattr__(self, key, value):
        raise AttributeError("Constant is immutable")

    def __reduce__(self):
        return (Constant, (self.value,))

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator[Variable]:
        return iter(())

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class Compound(Term):
    """A compound term ``functor(arg1, ..., argn)``.

    Instances are interned: constructing the same functor/args twice
    returns the same object, giving O(1) equality and hashing for
    shared structure (the list-suffix sharing of Example 4.6).
    """

    __slots__ = ("functor", "args", "_hash", "_ground", "__weakref__")

    _intern: Dict[Tuple[str, Tuple[Term, ...]], "Compound"] = {}

    def __new__(cls, functor: str, args: Iterable[Term]):
        args = tuple(args)
        key = (functor, args)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "functor", functor)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("compound", functor, args)))
        object.__setattr__(self, "_ground", all(a.is_ground() for a in args))
        cls._intern[key] = self
        return self

    def __setattr__(self, key, value):
        raise AttributeError("Compound is immutable")

    def __reduce__(self):
        # Rebuilding through __new__ re-interns, so unpickled compounds
        # keep the O(1) shared-structure equality of Example 4.6.
        return (Compound, (self.functor, self.args))

    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Compound)
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Compound({self.functor!r}, {self.args!r})"

    def __str__(self) -> str:
        from repro.datalog.pretty import pretty_term

        return pretty_term(self)


#: The empty list ``[]`` in Prolog list notation.
NIL = Constant("[]")

#: The functor used for list cells, as in Prolog (``'.'(H, T)``).
LIST_FUNCTOR = "."


def cons(head: Term, tail: Term) -> Compound:
    """Build one list cell ``[head | tail]``."""
    return Compound(LIST_FUNCTOR, (head, tail))


def make_list(elements: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Prolog list term from ``elements``, ending in ``tail``.

    ``make_list([a, b])`` is ``[a, b]``; ``make_list([a], T)`` is ``[a | T]``.
    """
    result = tail
    for element in reversed(list(elements)):
        result = cons(element, result)
    return result


def list_elements(term: Term) -> Tuple[List[Term], Term]:
    """Decompose a list term into ``(elements, tail)``.

    For a proper list the tail is :data:`NIL`; for a partial list
    (``[a, b | T]``) the tail is the trailing variable/term.
    """
    elements: List[Term] = []
    while isinstance(term, Compound) and term.functor == LIST_FUNCTOR and len(term.args) == 2:
        elements.append(term.args[0])
        term = term.args[1]
    return elements, term


def is_list_term(term: Term) -> bool:
    """True if ``term`` is a list cell or the empty list."""
    if term == NIL:
        return True
    return isinstance(term, Compound) and term.functor == LIST_FUNCTOR and len(term.args) == 2


def is_ground(term: Term) -> bool:
    """True if ``term`` contains no variables."""
    return term.is_ground()


def term_variables(terms: Union[Term, Iterable[Term]]) -> List[Variable]:
    """All variables in ``terms``, in first-occurrence order, without duplicates."""
    if isinstance(terms, Term):
        terms = (terms,)
    seen: List[Variable] = []
    seen_set = set()
    for term in terms:
        for var in term.variables():
            if var not in seen_set:
                seen_set.add(var)
                seen.append(var)
    return seen


_fresh_counter = itertools.count()


def fresh_variable(prefix: str = "V") -> Variable:
    """A variable guaranteed distinct from any previously created one.

    Fresh variables use a ``#`` in the name, which the parser never
    produces, so collisions with user variables are impossible.
    """
    return Variable(f"{prefix}#{next(_fresh_counter)}")


def constants_in(term: Term) -> Iterator[Constant]:
    """Yield every constant occurring in ``term`` (including inside compounds)."""
    if isinstance(term, Constant):
        yield term
    elif isinstance(term, Compound):
        for arg in term.args:
            yield from constants_in(arg)
