"""Pretty-printing of terms, literals, rules, and programs.

The printed form is re-parseable by :mod:`repro.datalog.parser`
(round-trip tested), with one readability concession: generated
predicate names such as ``t@bf`` or ``m_t@bf`` contain ``@``/``~``
characters, which the parser accepts inside predicate names so that
dumps of transformed programs can be re-read.
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.literals import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import (
    NIL,
    Compound,
    Constant,
    Term,
    Variable,
    is_list_term,
    list_elements,
)


def pretty_term(term: Term) -> str:
    """Render a term in Prolog-ish concrete syntax."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, str):
            if value == "[]":
                return "[]"
            if _is_plain_atom(value):
                return value
            return "'" + value.replace("'", "\\'") + "'"
        return repr(value)
    if isinstance(term, Compound):
        if is_list_term(term):
            elements, tail = list_elements(term)
            inner = ", ".join(pretty_term(e) for e in elements)
            if tail == NIL:
                return f"[{inner}]"
            return f"[{inner} | {pretty_term(tail)}]"
        args = ", ".join(pretty_term(a) for a in term.args)
        return f"{term.functor}({args})"
    raise TypeError(f"not a term: {term!r}")


def _is_plain_atom(value: str) -> bool:
    if not value:
        return False
    if not (value[0].islower() or value[0] == "_" and len(value) > 1):
        return False
    return all(ch.isalnum() or ch in "_@~" for ch in value)


def pretty_literal(literal: Literal) -> str:
    if not literal.args:
        return literal.predicate
    args = ", ".join(pretty_term(a) for a in literal.args)
    return f"{literal.predicate}({args})"


def pretty_rule(rule: Rule) -> str:
    head = pretty_literal(rule.head)
    if not rule.body:
        return f"{head}."
    body = ", ".join(pretty_literal(lit) for lit in rule.body)
    return f"{head} :- {body}."


def pretty_program(program: Iterable[Rule]) -> str:
    return "\n".join(pretty_rule(rule) for rule in program)
