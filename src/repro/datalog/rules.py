"""Rules and facts.

A :class:`Rule` is a Horn clause ``head :- body``; a :class:`Fact` is a
ground rule with an empty body.  Rules are immutable; transformation
passes build new rules rather than mutating.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.datalog.literals import Literal
from repro.datalog.terms import Term, Variable, term_variables


class Rule:
    """A Horn clause ``head :- b1, ..., bn`` (``n`` may be zero)."""

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head: Literal, body: Iterable[Literal] = ()):
        body = tuple(body)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_hash", hash((head, body)))

    def __setattr__(self, key, value):
        raise AttributeError("Rule is immutable")

    def __reduce__(self):
        # Immutability breaks pickle's slot-state default; rebuild via
        # the constructor.  Structural __eq__/__hash__ survive the trip,
        # so a worker-side PlanCache keyed on shipped rules still hits.
        return (Rule, (self.head, self.body))

    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def variables(self) -> List[Variable]:
        """All variables in the rule, head first, in first-occurrence order."""
        return term_variables(
            [arg for lit in (self.head, *self.body) for arg in lit.args]
        )

    def body_variables(self) -> List[Variable]:
        return term_variables([arg for lit in self.body for arg in lit.args])

    def head_variables(self) -> List[Variable]:
        return term_variables(self.head.args)

    def is_range_restricted(self) -> bool:
        """True if every head variable also appears in the body.

        Range restriction (safety) guarantees that bottom-up evaluation
        only derives ground facts.
        """
        body_vars = set(self.body_variables())
        return all(v in body_vars for v in self.head_variables())

    def body_literals(self, predicate: Optional[str] = None) -> List[Literal]:
        """Body literals, optionally filtered by predicate name."""
        if predicate is None:
            return list(self.body)
        return [lit for lit in self.body if lit.predicate == predicate]

    def with_body(self, body: Iterable[Literal]) -> "Rule":
        return Rule(self.head, body)

    def with_head(self, head: Literal) -> "Rule":
        return Rule(head, self.body)

    def rename_variables(self, mapping: Dict[Variable, Variable]) -> "Rule":
        """Apply a variable-to-variable renaming throughout the rule."""
        from repro.engine.unify import Substitution

        subst = Substitution(dict(mapping))
        return Rule(
            subst.apply_literal(self.head),
            tuple(subst.apply_literal(lit) for lit in self.body),
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, Rule) and other.head == self.head and other.body == self.body

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {self.body!r})"

    def __str__(self) -> str:
        from repro.datalog.pretty import pretty_rule

        return pretty_rule(self)


def Fact(predicate: str, args: Iterable[Term]) -> Rule:
    """Convenience constructor for a ground fact rule ``p(c1, ..., cn).``"""
    literal = Literal(predicate, args)
    if not literal.is_ground():
        raise ValueError(f"fact {literal} is not ground")
    return Rule(literal, ())
