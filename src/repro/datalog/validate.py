"""Static validation of programs: the library's front-door linter.

The engine assumes range-restricted (safe) rules; the optimizer assumes
consistent arities and, for factoring, unit recursions.  This module
collects those checks into structured diagnostics instead of scattered
exceptions, so applications can surface problems before evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dependency import DependencyGraph
from repro.datalog.program import Program
from repro.datalog.rules import Rule


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: str
    message: str
    rule: Optional[Rule] = None

    def __str__(self) -> str:
        location = f" in: {self.rule}" if self.rule is not None else ""
        return f"{self.severity.value}[{self.code}]: {self.message}{location}"


@dataclass
class ValidationReport:
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if not self.ok:
            raise ValueError(
                "program validation failed:\n"
                + "\n".join(str(d) for d in self.errors)
            )

    def __str__(self) -> str:
        if not self.diagnostics:
            return "ok (no diagnostics)"
        return "\n".join(str(d) for d in self.diagnostics)


#: Prefixes of generated predicate names (magic / counting / answer
#: predicates).  ``@`` (adornment separator) and ``~`` (supplementary
#: separator) are reserved characters, and ``query`` is the generated
#: answer predicate — user programs may use none of them, otherwise
#: ``split_adorned_name`` mis-splits (a user ``p@bf`` would silently
#: collide with the adorned version of ``p``) and rewrites can capture
#: or shadow user relations.
RESERVED_PREFIXES = ("m_", "cnt_", "ans_")
RESERVED_CHARACTERS = ("@", "~")
RESERVED_NAMES = ("query",)


def reserved_name_reason(predicate: str) -> Optional[str]:
    """Why ``predicate`` is reserved for generated code, or ``None``."""
    for ch in RESERVED_CHARACTERS:
        if ch in predicate:
            return (
                f"contains {ch!r}, the separator used by generated "
                "(adorned/magic/supplementary) predicate names"
            )
    for prefix in RESERVED_PREFIXES:
        if predicate.startswith(prefix):
            return (
                f"starts with {prefix!r}, the prefix used by generated "
                "(magic/counting) predicate names"
            )
    if predicate in RESERVED_NAMES:
        return "is the generated answer predicate of the magic rewrite"
    return None


def ensure_no_reserved_names(program: Program) -> None:
    """Raise ``ValueError`` if the program uses a reserved predicate name.

    The parser itself accepts these names (the test suite and the
    inspector parse *generated* programs back in); user-facing entry
    points call this before handing a program to the optimizer.
    """
    report = ValidationReport()
    _check_reserved_names(program, report)
    report.raise_on_error()


def validate_program(program: Program) -> ValidationReport:
    """Run every static check; see the individual ``_check_*`` passes."""
    report = ValidationReport()
    _check_reserved_names(program, report)
    _check_safety(program, report)
    _check_arities(program, report)
    _check_unused_body_predicates(program, report)
    _check_trivial_cycles(program, report)
    _check_singleton_variables(program, report)
    return report


def _check_reserved_names(program: Program, report: ValidationReport) -> None:
    """Reject predicate names that collide with generated predicates."""
    flagged: Set[str] = set()
    for rule in program.rules:
        for literal in (rule.head, *rule.body):
            predicate = literal.predicate
            if predicate in flagged:
                continue
            reason = reserved_name_reason(predicate)
            if reason is not None:
                flagged.add(predicate)
                report.diagnostics.append(
                    Diagnostic(
                        Severity.ERROR,
                        "reserved-name",
                        f"predicate {predicate!r} {reason}; rename it — "
                        "these names are reserved for the optimizer's "
                        "rewrites",
                        rule,
                    )
                )


def _check_safety(program: Program, report: ValidationReport) -> None:
    """Every head variable must occur in the body (range restriction).

    An unsafe rule cannot be evaluated bottom-up: the engine raises at
    run time; the paper's ``pmem`` program is intentionally unsafe and
    only evaluable after Magic Sets — the warning text says so.
    """
    for rule in program.rules:
        if not rule.is_range_restricted():
            body_vars = set(rule.body_variables())
            missing = [
                v.name for v in rule.head_variables() if v not in body_vars
            ]
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "unsafe-rule",
                    f"head variables {missing} not bound by the body; "
                    "bottom-up evaluation requires a binding-propagating "
                    "rewrite (e.g. Magic Sets) first",
                    rule,
                )
            )


def _check_arities(program: Program, report: ValidationReport) -> None:
    """A predicate used with two arities is almost always a typo."""
    arities: Dict[str, Set[int]] = {}
    for rule in program.rules:
        for literal in (rule.head, *rule.body):
            arities.setdefault(literal.predicate, set()).add(literal.arity)
    for predicate, seen in sorted(arities.items()):
        if len(seen) > 1:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "arity-conflict",
                    f"predicate {predicate!r} used with arities {sorted(seen)}",
                )
            )


def _check_unused_body_predicates(
    program: Program, report: ValidationReport
) -> None:
    """IDB predicates never used in any body or as a likely query root."""
    used = {lit.signature for rule in program.rules for lit in rule.body}
    heads = {rule.head.signature for rule in program.rules}
    for signature in sorted(heads - used):
        # A sink predicate is a legitimate query root; only note it.
        report.diagnostics.append(
            Diagnostic(
                Severity.WARNING,
                "sink-predicate",
                f"{signature[0]}/{signature[1]} is defined but never used in "
                "a body (fine if it is the query predicate)",
            )
        )


def _check_trivial_cycles(program: Program, report: ValidationReport) -> None:
    """A rule whose head appears in its own body derives nothing new."""
    for rule in program.rules:
        if rule.head in rule.body:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "tautological-rule",
                    "head literal appears in the body (Proposition 5.4 "
                    "deletes such rules)",
                    rule,
                )
            )


def _check_singleton_variables(
    program: Program, report: ValidationReport
) -> None:
    """Variables occurring once are either anonymous or typos."""
    for rule in program.rules:
        counts: Dict[str, int] = {}
        for literal in (rule.head, *rule.body):
            for var in literal.iter_variables():
                counts[var.name] = counts.get(var.name, 0) + 1
        singles = [
            name
            for name, count in counts.items()
            if count == 1 and not name.startswith(("_", "ANON"))
        ]
        if singles:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "singleton-variable",
                    f"variables {sorted(singles)} occur only once "
                    "(use '_' if intentional)",
                    rule,
                )
            )
