"""Literals: a predicate name applied to a tuple of terms."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.datalog.terms import Term, Variable, term_variables


class Literal:
    """An atom ``p(t1, ..., tn)``.

    Predicates are identified by name *and* arity; the pair is exposed
    as :attr:`signature`.  Literals are immutable and hashable so they
    can key caches (e.g. adornment work-lists) and live in sets.
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: str, args: Iterable[Term] = ()):
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"literal argument {arg!r} is not a Term")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((predicate, args)))

    def __setattr__(self, key, value):
        raise AttributeError("Literal is immutable")

    def __reduce__(self):
        # Immutability breaks pickle's slot-state default; rebuild via
        # the constructor (rules ship to process-backend workers).
        return (Literal, (self.predicate, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        return (self.predicate, len(self.args))

    def is_ground(self) -> bool:
        return all(arg.is_ground() for arg in self.args)

    def variables(self) -> List[Variable]:
        return term_variables(self.args)

    def iter_variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def with_args(self, args: Iterable[Term]) -> "Literal":
        """A copy of this literal with different arguments (same predicate)."""
        return Literal(self.predicate, args)

    def with_predicate(self, predicate: str) -> "Literal":
        """A copy of this literal with a different predicate name."""
        return Literal(predicate, self.args)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Literal({self.predicate!r}, {self.args!r})"

    def __str__(self) -> str:
        from repro.datalog.pretty import pretty_literal

        return pretty_literal(self)
