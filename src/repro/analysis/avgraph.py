"""A/V graphs and one-sided recursions (Section 6.1).

Theorem 6.1 (restated from Naughton's "One-sided recursions")
characterizes one-sided recursions of a single linear rule via the
*argument/variable graph*.  The original paper [6] is not reproduced in
the text we work from, so this module documents its reconstruction:

* nodes are the argument positions ``1..k`` of the recursive predicate
  ``t``;
* a *directed weight-1 edge* ``i -> j`` records that the variable in
  head position ``i`` reappears in body position ``j`` (one rule
  application moves the value from ``j`` to ``i``); a *fixed variable*
  (Definition 6.5) yields a weight-1 self-loop;
* positions are *connected* (undirected, weight 0) when their variables
  co-occur — directly or through chains of nonrecursive body literals.

A cycle's weight is its number of directed edges, i.e. how many rule
applications return a value to its position.  The recursion is
**one-sided** when exactly one connected component has a cycle of
nonzero weight and that component has a cycle of weight 1 (Theorem
6.1); it is **simple one-sided** when that component has exactly one
nonzero-weight cycle, of weight 1.  A simple one-sided recursion can be
*expanded* (rule self-substitution) into the canonical form (1) of
Section 6.1, which is left-linear for one full selection and
right-linear for the other — Theorem 6.2 then gives factorability via
Theorem 4.1, implemented in :mod:`repro.core.theorems`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable, fresh_variable
from repro.engine.unify import Substitution, rename_apart, unify


@dataclass
class AVGraph:
    """The argument/variable graph of one linear recursive rule."""

    rule: Rule
    predicate: str
    arity: int
    #: directed weight-1 edges (head position -> body position)
    edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: undirected connectivity classes over positions
    components: List[Set[int]] = field(default_factory=list)

    def component_of(self, position: int) -> Set[int]:
        for component in self.components:
            if position in component:
                return component
        raise KeyError(position)

    def cycle_weights(self, component: Set[int]) -> Set[int]:
        """Lengths of simple directed cycles lying inside ``component``.

        Bounded enumeration is fine: arities in the paper's setting are
        tiny, and simple cycles in a functional-ish graph are few.
        """
        weights: Set[int] = set()
        edges = [(i, j) for (i, j) in self.edges if i in component and j in component]
        adjacency: Dict[int, List[int]] = {}
        for i, j in edges:
            adjacency.setdefault(i, []).append(j)

        def walk(start: int, node: int, length: int, seen: Set[int]) -> None:
            for succ in adjacency.get(node, ()):
                if succ == start:
                    weights.add(length + 1)
                elif succ not in seen:
                    walk(start, succ, length + 1, seen | {succ})

        for position in sorted(component):
            walk(position, position, 0, {position})
        return weights


def _recursive_occurrence(rule: Rule, predicate: str) -> Optional[Literal]:
    occurrences = rule.body_literals(predicate)
    if len(occurrences) != 1:
        return None
    return occurrences[0]


def build_av_graph(rule: Rule, predicate: str) -> AVGraph:
    """Build the A/V graph of a single linear recursive rule."""
    body_occ = _recursive_occurrence(rule, predicate)
    if body_occ is None:
        raise ValueError(f"rule is not linear in {predicate}: {rule}")
    arity = rule.head.arity
    graph = AVGraph(rule=rule, predicate=predicate, arity=arity)

    head_vars = [set(arg.variables()) for arg in rule.head.args]
    body_vars = [set(arg.variables()) for arg in body_occ.args]

    for i in range(arity):
        for j in range(arity):
            if head_vars[i] & body_vars[j]:
                graph.edges.add((i, j))

    # Undirected connectivity: positions sharing variables directly or
    # through chains of nonrecursive literals.
    var_class: Dict[Variable, int] = {}
    classes: List[Set[Variable]] = []

    def merge(vars_a: Set[Variable], vars_b: Set[Variable]) -> None:
        involved = vars_a | vars_b
        merged: Set[Variable] = set(involved)
        keep: List[Set[Variable]] = []
        for cls in classes:
            if cls & involved:
                merged |= cls
            else:
                keep.append(cls)
        keep.append(merged)
        classes[:] = keep

    for literal in rule.body:
        if literal.predicate == predicate:
            continue
        lit_vars = set(literal.iter_variables())
        if lit_vars:
            merge(lit_vars, lit_vars)
    position_vars = [head_vars[i] | body_vars[i] for i in range(arity)]
    for vars_set in position_vars:
        if vars_set:
            merge(vars_set, vars_set)

    def same_class(a: Set[Variable], b: Set[Variable]) -> bool:
        if a & b:
            return True
        for cls in classes:
            if (cls & a) and (cls & b):
                return True
        return False

    remaining = set(range(arity))
    while remaining:
        seed = remaining.pop()
        component = {seed}
        changed = True
        while changed:
            changed = False
            for other in list(remaining):
                if any(
                    same_class(position_vars[member], position_vars[other])
                    for member in component
                ):
                    component.add(other)
                    remaining.discard(other)
                    changed = True
        graph.components.append(component)
    return graph


def is_one_sided(rule: Rule, predicate: str) -> bool:
    """The Theorem 6.1 characterization, operationalized.

    The rule must decompose into a *static side* — the positions lying
    in components that carry a weight-1 cycle (values persist across an
    application) — and a *dynamic side* with no persistence at all:

    * at least one component carries a cycle, and every cyclic
      component has a cycle of weight 1;
    * every directed (persistence) edge lies inside those components.

    This reading treats several independently-fixed argument positions
    as jointly forming the static side, which the canonical form (1) of
    Section 6.1 requires (its ``Ā`` may span several components); the
    deviation from the restated theorem's "only one connected
    component" is documented in DESIGN.md.
    """
    graph = build_av_graph(rule, predicate)
    cyclic = [c for c in graph.components if graph.cycle_weights(c)]
    if not cyclic:
        return False
    if any(1 not in graph.cycle_weights(c) for c in cyclic):
        return False
    static = set().union(*cyclic)
    return all(i in static and j in static for (i, j) in graph.edges)


def is_simple_one_sided(rule: Rule, predicate: str) -> bool:
    """One-sided with *only* weight-1 cycles on the static side.

    A simple one-sided recursion expands (by rule self-substitution)
    into the canonical form (1); with every cycle already of weight 1,
    no expansion is needed at all.
    """
    graph = build_av_graph(rule, predicate)
    if not is_one_sided(rule, predicate):
        return False
    cyclic = [c for c in graph.components if graph.cycle_weights(c)]
    return all(graph.cycle_weights(c) == {1} for c in cyclic)


def expand_rule(rule: Rule, predicate: str, times: int = 1) -> Rule:
    """Substitute a linear rule into its own recursive occurrence.

    One expansion replaces the body occurrence of ``predicate`` with a
    renamed copy of the whole rule body, unified with it — the device
    Section 6.1 uses to bring a simple one-sided recursion into form
    (1).
    """
    expanded = rule
    for round_index in range(times):
        occurrence = _recursive_occurrence(expanded, predicate)
        if occurrence is None:
            raise ValueError(f"rule is not linear in {predicate}: {expanded}")
        copy = rename_apart(rule, f"x{round_index}")
        subst = unify(occurrence, copy.head)
        if subst is None:
            raise ValueError(
                f"cannot unify {occurrence} with {copy.head} during expansion"
            )
        new_body: List[Literal] = []
        for literal in expanded.body:
            if literal is occurrence or literal == occurrence:
                new_body.extend(subst.apply_literal(lit) for lit in copy.body)
            else:
                new_body.append(subst.apply_literal(literal))
        expanded = Rule(subst.apply_literal(expanded.head), new_body)
    return expanded
