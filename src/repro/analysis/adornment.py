"""Adornment of programs with respect to a query, left-to-right SIP.

An adornment annotates each argument position of a derived predicate
as bound (``b``) or free (``f``) for a given query form.  This module
rewrites a program into its *adorned* version ``P^ad`` (Section 4.1),
renaming each reachable ``(predicate, adornment)`` pair to a fresh
predicate ``p@a`` and ordering nothing — the sideways information
passing strategy is the paper's left-to-right rule evaluation.

A body argument is bound when every variable in it is bound by the
head's bound arguments or by any earlier body literal (EDB literals
bind all their variables; derived literals bind all their variables
once their adorned version is solved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable

Signature = Tuple[str, int]

ADORN_SEPARATOR = "@"


class Adornment(str):
    """A string of ``b``/``f`` markers, one per argument position."""

    def bound_positions(self) -> Tuple[int, ...]:
        return tuple(i for i, ch in enumerate(self) if ch == "b")

    def free_positions(self) -> Tuple[int, ...]:
        return tuple(i for i, ch in enumerate(self) if ch == "f")

    def all_bound(self) -> bool:
        return all(ch == "b" for ch in self)

    def all_free(self) -> bool:
        return all(ch == "f" for ch in self)


def adorned_name(predicate: str, adornment: str) -> str:
    """The generated predicate name ``p@bf``."""
    return f"{predicate}{ADORN_SEPARATOR}{adornment}"


def split_adorned_name(name: str) -> Tuple[str, Optional[Adornment]]:
    """Invert :func:`adorned_name`; adornment is ``None`` for plain names.

    The empty adornment (a zero-arity predicate, ``p@``) is valid.
    User programs cannot contain ``@`` in predicate names (rejected by
    ``datalog.validate``), so the split is unambiguous for generated
    names.
    """
    if ADORN_SEPARATOR in name:
        base, adn = name.rsplit(ADORN_SEPARATOR, 1)
        if base and all(ch in "bf" for ch in adn):
            return base, Adornment(adn)
    return name, None


def adornment_from_query(goal: Literal) -> Adornment:
    """The adornment induced by a query literal: ground arguments are bound."""
    return Adornment("".join("b" if arg.is_ground() else "f" for arg in goal.args))


@dataclass
class AdornedProgram:
    """The result of adorning a program for one query form.

    ``program`` contains the adorned rules (derived predicates renamed
    to ``p@a``); ``goal`` is the adorned query literal; ``adornments``
    records every reachable adornment per original predicate, which
    Definition 4.4 (unit programs: a *single* reachable adornment)
    inspects.
    """

    program: Program
    goal: Literal
    original_goal: Literal
    adornments: Dict[Signature, Set[Adornment]] = field(default_factory=dict)

    def single_adornment_of(self, signature: Signature) -> Optional[Adornment]:
        adns = self.adornments.get(signature, set())
        if len(adns) == 1:
            return next(iter(adns))
        return None


def _term_bound(term: Term, bound_vars: Set[Variable]) -> bool:
    """A term is bound when all of its variables are bound (ground terms are)."""
    return all(v in bound_vars for v in term.variables())


def adorn_literal(literal: Literal, bound_vars: Set[Variable]) -> Adornment:
    return Adornment(
        "".join("b" if _term_bound(arg, bound_vars) else "f" for arg in literal.args)
    )


def _reorder_body(
    rule: Rule,
    initial_bound: Set[Variable],
    idb: Set[Tuple[str, int]],
    target: Adornment,
    node_budget: int = 4000,
) -> List[Literal]:
    """SIP ordering of a rule body that preserves unit programs.

    The paper treats rules as equal up to body reordering (Section
    4.1); a left-to-right SIP then determines each derived literal's
    adornment by its position.  This search looks for an order in which
    *every* derived literal of the recursive predicate receives the
    head's own adornment — the unit-program invariant of Section 4 —
    trying literals in their written order first, so any body already
    in binding order (all of the paper's examples for their primary
    query form) is returned unchanged.  When no such order exists (a
    genuinely multi-adornment program) the written order is kept.
    """
    body = list(rule.body)
    indices = list(range(len(body)))
    failed: Set[frozenset] = set()
    nodes = [0]

    def adornment_matches(literal: Literal, bound: Set[Variable]) -> bool:
        return adorn_literal(literal, bound) == target

    def search(remaining: List[int], bound: Set[Variable]) -> Optional[List[int]]:
        if not remaining:
            return []
        key = frozenset(remaining)
        if key in failed:
            return None
        nodes[0] += 1
        if nodes[0] > node_budget:
            return None
        for index in remaining:
            literal = body[index]
            # The unit-program invariant constrains only recursive
            # occurrences of the head's own predicate; other derived
            # literals may take any adornment.
            constrained = literal.signature == rule.head.signature
            if constrained and not adornment_matches(literal, bound):
                continue
            rest = [i for i in remaining if i != index]
            new_bound = bound | set(literal.iter_variables())
            tail = search(rest, new_bound)
            if tail is not None:
                return [index, *tail]
        failed.add(key)
        return None

    derived_count = sum(1 for lit in body if lit.signature in idb)
    if derived_count == 0:
        return body
    order = search(indices, set(initial_bound))
    if order is None:
        return body
    return [body[i] for i in order]


def adorn(
    program: Program, goal: Literal, adornment: Optional[str] = None
) -> AdornedProgram:
    """Adorn ``program`` for the query ``goal``.

    Returns an :class:`AdornedProgram` whose rules define only the
    reachable adorned predicates.  EDB literals are left untouched.
    Rule bodies are reordered by a stable greedy SIP (see
    :func:`_reorder_body`) so that binding passes forward regardless of
    the order the program was written in.

    ``adornment`` overrides the adornment induced by the goal's ground
    arguments — the query compiler uses this to adorn a *canonical*
    goal (all-fresh variables) with the binding pattern of the actual
    query it stands for.
    """
    idb = set(program.idb_signatures)
    if goal.signature not in idb:
        raise ValueError(f"query predicate {goal.signature} is not defined by the program")

    if adornment is None:
        query_adornment = adornment_from_query(goal)
    else:
        if len(adornment) != len(goal.args) or any(
            ch not in "bf" for ch in adornment
        ):
            raise ValueError(
                f"adornment {adornment!r} does not fit goal {goal} "
                f"(need {len(goal.args)} b/f markers)"
            )
        query_adornment = Adornment(adornment)
    worklist: List[Tuple[Signature, Adornment]] = [(goal.signature, query_adornment)]
    seen: Set[Tuple[Signature, Adornment]] = set(worklist)
    adorned_rules: List[Rule] = []
    adornments: Dict[Signature, Set[Adornment]] = {}

    while worklist:
        signature, adornment = worklist.pop()
        adornments.setdefault(signature, set()).add(adornment)
        predicate, arity = signature
        for rule in program.rules_for(predicate, arity):
            bound_vars: Set[Variable] = set()
            for position in adornment.bound_positions():
                bound_vars.update(rule.head.args[position].variables())
            ordered_body = _reorder_body(rule, bound_vars, idb, adornment)
            new_body: List[Literal] = []
            for literal in ordered_body:
                if literal.signature in idb:
                    body_adornment = adorn_literal(literal, bound_vars)
                    key = (literal.signature, body_adornment)
                    if key not in seen:
                        seen.add(key)
                        worklist.append(key)
                    new_body.append(
                        literal.with_predicate(
                            adorned_name(literal.predicate, body_adornment)
                        )
                    )
                else:
                    new_body.append(literal)
                # After solving the literal, all its variables are bound.
                for var in literal.iter_variables():
                    bound_vars.add(var)
            new_head = rule.head.with_predicate(adorned_name(predicate, adornment))
            adorned_rules.append(Rule(new_head, new_body))

    adorned_goal = goal.with_predicate(adorned_name(goal.predicate, query_adornment))
    return AdornedProgram(
        program=Program(adorned_rules),
        goal=adorned_goal,
        original_goal=goal,
        adornments=adornments,
    )
