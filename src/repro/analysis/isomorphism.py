"""Program isomorphism up to predicate and variable renaming.

Theorem 6.4 states that, for factorable programs without left-linear
literals, the factored Magic program (after deleting trivially
redundant rules) is *identical* to the Counting program with all index
fields deleted, up to predicate names.  This module decides that
identity: two programs are isomorphic when there is a bijection between
their rule lists such that paired rules are equal up to a consistent
variable renaming (per rule) and the given predicate renaming, with
bodies compared as multisets (literal order is immaterial).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Compound, Term, Variable


def _rename_predicates(literal: Literal, renaming: Dict[str, str]) -> Literal:
    return Literal(renaming.get(literal.predicate, literal.predicate), literal.args)


def _terms_match(
    a: Term, b: Term, mapping: Dict[Variable, Variable], used: set
) -> bool:
    """Extend a variable bijection so that ``a`` maps onto ``b``."""
    if isinstance(a, Variable):
        if not isinstance(b, Variable):
            return False
        bound = mapping.get(a)
        if bound is not None:
            return bound == b
        if b in used:
            return False
        mapping[a] = b
        used.add(b)
        return True
    if isinstance(a, Compound):
        if (
            not isinstance(b, Compound)
            or a.functor != b.functor
            or len(a.args) != len(b.args)
        ):
            return False
        return all(
            _terms_match(aa, bb, mapping, used) for aa, bb in zip(a.args, b.args)
        )
    return a == b  # constants


def rules_isomorphic(a: Rule, b: Rule) -> bool:
    """Equality up to variable renaming, body order ignored.

    Bodies in the paper's programs have at most a handful of literals,
    so permutation search with memoized signatures is plenty fast.
    """
    if a.head.signature != b.head.signature or len(a.body) != len(b.body):
        return False

    b_body = list(b.body)

    def extend(
        index: int, mapping: Dict[Variable, Variable], used: set, taken: List[bool]
    ) -> bool:
        if index == len(a.body):
            return True
        literal = a.body[index]
        for j, candidate in enumerate(b_body):
            if taken[j] or candidate.signature != literal.signature:
                continue
            trial = dict(mapping)
            trial_used = set(used)
            if all(
                _terms_match(x, y, trial, trial_used)
                for x, y in zip(literal.args, candidate.args)
            ):
                taken[j] = True
                if extend(index + 1, trial, trial_used, taken):
                    return True
                taken[j] = False
        return False

    mapping: Dict[Variable, Variable] = {}
    used: set = set()
    if not all(
        _terms_match(x, y, mapping, used) for x, y in zip(a.head.args, b.head.args)
    ):
        return False
    return extend(0, mapping, used, [False] * len(b_body))


def programs_isomorphic(
    a: Program,
    b: Program,
    predicate_renaming: Optional[Dict[str, str]] = None,
) -> bool:
    """Rule-multiset equality up to renaming.

    ``predicate_renaming`` maps predicate names of ``a`` onto those of
    ``b`` (e.g. ``{"cnt_p@bf": "m_p@bf", "ans_p@bf": "f_p@bf"}``).
    """
    renaming = predicate_renaming or {}
    a_rules = [
        Rule(
            _rename_predicates(rule.head, renaming),
            tuple(_rename_predicates(lit, renaming) for lit in rule.body),
        )
        for rule in a.rules
    ]
    b_rules = list(b.rules)
    if len(a_rules) != len(b_rules):
        return False
    taken = [False] * len(b_rules)

    def match(index: int) -> bool:
        if index == len(a_rules):
            return True
        for j, candidate in enumerate(b_rules):
            if taken[j]:
                continue
            if rules_isomorphic(a_rules[index], candidate):
                taken[j] = True
                if match(index + 1):
                    return True
                taken[j] = False
        return False

    return match(0)
