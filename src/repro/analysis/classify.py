"""Rule classification: left-linear, right-linear, combined (Defs 4.1-4.3).

Classification operates on an *adorned unit program* — one recursive
predicate ``p`` with one adornment — whose ``p``-literals have been put
in standard form (:mod:`repro.analysis.standard_form`).  Writing a rule
head as ``p(X̄, Ȳ)`` (bound vector, free vector):

* a **left-linear occurrence** is a body literal ``p(X̄, Ū)`` — its
  bound arguments are exactly the head's bound vector;
* a **right-linear occurrence** is a body literal ``p(V̄, Ȳ)`` — its
  free arguments are exactly the head's free vector;
* a rule is **left-linear** when every ``p``-occurrence is left-linear
  and the EDB atoms split into variable-disjoint conjunctions
  ``left(X̄)`` and ``last(Ū₁..Ūₘ, Ȳ)``;
* **right-linear** when its single ``p``-occurrence is right-linear and
  the EDB atoms split into ``first(X̄, V̄)`` and ``right(Ȳ)``;
* **combined** when it has left occurrences plus one right occurrence
  and the EDB atoms split into ``left(X̄)``, ``center(Ū, V̄)``, and
  ``right(Ȳ)``.

The split is computed by connected components of the rule's variable
co-occurrence graph, which also makes classification independent of
body literal order (the paper allows arbitrary reordering).  Global
argument permutations (Example 4.1) are searched when the identity
fails: the same permutation of bound positions and of free positions is
applied to every ``p``-literal.

The conjunctions of Definition 4.5 (``bound``, ``free``,
``bound_first``, ``free_last``, ``middle``, ``bound_exit``,
``free_exit``) are extracted as :class:`ConjunctiveQuery` objects for
the theorem checkers in :mod:`repro.core.theorems`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.adornment import Adornment
from repro.analysis.conjunctive import ConjunctiveQuery
from repro.analysis.standard_form import to_standard_form
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable


class RuleClass(Enum):
    EXIT = "exit"
    LEFT_LINEAR = "left-linear"
    RIGHT_LINEAR = "right-linear"
    COMBINED = "combined"
    UNCLASSIFIED = "unclassified"


class _UnionFind:
    """Union-find over hashable items, used for variable connectivity."""

    def __init__(self):
        self.parent: Dict = {}

    def find(self, item):
        parent = self.parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb

    def same(self, a, b) -> bool:
        return self.find(a) == self.find(b)


#: Sentinel nodes anchoring the bound / middle / free variable groups.
_BOUND = "<bound>"
_MIDDLE = "<middle>"
_FREE = "<free>"


@dataclass
class RuleClassification:
    """One rule's class plus its Definition-4.5 conjunctions."""

    rule: Rule
    rule_class: RuleClass
    #: ``bound(X̄) :- left(X̄)`` for left-linear / combined rules.
    bound: Optional[ConjunctiveQuery] = None
    #: ``free(Ȳ) :- right(Ȳ)`` for right-linear / combined rules.
    free: Optional[ConjunctiveQuery] = None
    #: ``bound_first(X̄) :- first(X̄, V̄)`` for right-linear rules.
    bound_first: Optional[ConjunctiveQuery] = None
    #: ``free_last(Ȳ) :- last(Ū₁..Ūₘ, Ȳ)`` for left-linear rules.
    free_last: Optional[ConjunctiveQuery] = None
    #: ``middle(Ū, V̄) :- center(Ū, V̄)`` for combined rules.
    middle: Optional[ConjunctiveQuery] = None
    #: ``bound_exit(X̄) :- exit(X̄, Ȳ)`` / ``free_exit(Ȳ) :- exit(X̄, Ȳ)``.
    bound_exit: Optional[ConjunctiveQuery] = None
    free_exit: Optional[ConjunctiveQuery] = None
    left_occurrences: Tuple[Literal, ...] = ()
    right_occurrence: Optional[Literal] = None
    reason: str = ""


@dataclass
class ProgramClassification:
    """Classification of a whole adorned unit program."""

    predicate: str
    adornment: Adornment
    rules: List[RuleClassification] = field(default_factory=list)
    permutation: Optional[Tuple[int, ...]] = None
    ok: bool = False
    reason: str = ""

    @property
    def exit_rules(self) -> List[RuleClassification]:
        return [rc for rc in self.rules if rc.rule_class is RuleClass.EXIT]

    @property
    def recursive_rules(self) -> List[RuleClassification]:
        return [
            rc
            for rc in self.rules
            if rc.rule_class
            in (RuleClass.LEFT_LINEAR, RuleClass.RIGHT_LINEAR, RuleClass.COMBINED)
        ]

    def is_rlc_stable(self) -> bool:
        """Definition 4.4: only L/R/C rules plus one exit rule."""
        return (
            self.ok
            and len(self.exit_rules) == 1
            and all(
                rc.rule_class is not RuleClass.UNCLASSIFIED for rc in self.rules
            )
        )


def _vector(literal: Literal, positions: Sequence[int]) -> Tuple[Term, ...]:
    return tuple(literal.args[i] for i in positions)


def _group_atoms(
    atoms: Sequence[Literal],
    anchors: Dict[str, Set[Variable]],
    floating_group: str,
) -> Optional[Dict[str, List[Literal]]]:
    """Partition EDB atoms by variable connectivity to anchor groups.

    ``anchors`` maps group names to their anchor variable sets; all
    anchor variables of one group are unioned with the group sentinel.
    Returns ``None`` when two sentinels collide (the conjunctions would
    share variables, violating disjointness) and the atom partition
    otherwise.  Atoms connected to no anchor join ``floating_group``.
    """
    uf = _UnionFind()
    for group, variables in anchors.items():
        for var in variables:
            uf.union(group, var)
    for atom in atoms:
        atom_vars = atom.variables()
        for first, second in zip(atom_vars, atom_vars[1:]):
            uf.union(first, second)
        if atom_vars:
            # Anchor the atom itself through its first variable.
            uf.union(atom_vars[0], ("atom", id(atom)))
        else:
            uf.parent.setdefault(("atom", id(atom)), ("atom", id(atom)))
    sentinels = list(anchors)
    for a, b in itertools.combinations(sentinels, 2):
        if uf.same(a, b):
            return None
    groups: Dict[str, List[Literal]] = {g: [] for g in anchors}
    groups.setdefault(floating_group, [])
    for atom in atoms:
        root_key = ("atom", id(atom))
        assigned = None
        for group in sentinels:
            if uf.same(group, root_key):
                assigned = group
                break
        if assigned is None:
            assigned = floating_group
        groups[assigned].append(atom)
    return groups


def classify_rule(
    rule: Rule,
    predicate: str,
    adornment: Adornment,
) -> RuleClassification:
    """Classify one standard-form rule of the adorned predicate."""
    bound_pos = adornment.bound_positions()
    free_pos = adornment.free_positions()
    head_bound = _vector(rule.head, bound_pos)
    head_free = _vector(rule.head, free_pos)

    p_literals = [lit for lit in rule.body if lit.predicate == predicate]
    edb_atoms = [lit for lit in rule.body if lit.predicate != predicate]

    if not p_literals:
        body = tuple(edb_atoms)
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.EXIT,
            bound_exit=ConjunctiveQuery(head_bound, body),
            free_exit=ConjunctiveQuery(head_free, body),
        )

    left_occs = [lit for lit in p_literals if _vector(lit, bound_pos) == head_bound]
    right_occs = [lit for lit in p_literals if _vector(lit, free_pos) == head_free]

    both = [lit for lit in p_literals if lit in left_occs and lit in right_occs]
    if both:
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.UNCLASSIFIED,
            reason="a p-occurrence repeats both the head's bound and free vectors "
            "(the rule is tautological)",
        )

    unmatched = [
        lit for lit in p_literals if lit not in left_occs and lit not in right_occs
    ]
    if unmatched:
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.UNCLASSIFIED,
            reason=f"p-occurrence {unmatched[0]} is neither left- nor right-linear",
        )

    x_vars = {v for t in head_bound for v in t.variables()}
    y_vars = {v for t in head_free for v in t.variables()}

    if not right_occs:
        # Candidate left-linear rule (Definition 4.1).
        u_vectors = [_vector(lit, free_pos) for lit in left_occs]
        u_vars = {v for vec in u_vectors for t in vec for v in t.variables()}
        groups = _group_atoms(
            edb_atoms,
            {_BOUND: x_vars, _FREE: u_vars | y_vars},
            floating_group=_BOUND,
        )
        if groups is None:
            return RuleClassification(
                rule=rule,
                rule_class=RuleClass.UNCLASSIFIED,
                reason="left and last conjunctions would share variables",
            )
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.LEFT_LINEAR,
            bound=ConjunctiveQuery(head_bound, tuple(groups[_BOUND])),
            free_last=ConjunctiveQuery(head_free, tuple(groups[_FREE])),
            left_occurrences=tuple(left_occs),
        )

    if len(right_occs) > 1:
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.UNCLASSIFIED,
            reason="more than one right-linear p-occurrence",
        )

    right = right_occs[0]
    v_vars = {v for t in _vector(right, bound_pos) for v in t.variables()}

    if not left_occs:
        # Candidate right-linear rule (Definition 4.2).
        groups = _group_atoms(
            edb_atoms,
            {_BOUND: x_vars | v_vars, _FREE: y_vars},
            floating_group=_BOUND,
        )
        if groups is None:
            return RuleClassification(
                rule=rule,
                rule_class=RuleClass.UNCLASSIFIED,
                reason="first and right conjunctions would share variables",
            )
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.RIGHT_LINEAR,
            bound_first=ConjunctiveQuery(head_bound, tuple(groups[_BOUND])),
            free=ConjunctiveQuery(head_free, tuple(groups[_FREE])),
            right_occurrence=right,
        )

    # Candidate combined rule (Definition 4.3).
    u_vectors = [_vector(lit, free_pos) for lit in left_occs]
    u_vars = {v for vec in u_vectors for t in vec for v in t.variables()}
    groups = _group_atoms(
        edb_atoms,
        {_BOUND: x_vars, _MIDDLE: u_vars | v_vars, _FREE: y_vars},
        floating_group=_MIDDLE,
    )
    if groups is None:
        return RuleClassification(
            rule=rule,
            rule_class=RuleClass.UNCLASSIFIED,
            reason="left / center / right conjunctions would share variables",
        )
    middle_head = tuple(
        term for vec in u_vectors for term in vec
    ) + _vector(right, bound_pos)
    return RuleClassification(
        rule=rule,
        rule_class=RuleClass.COMBINED,
        bound=ConjunctiveQuery(head_bound, tuple(groups[_BOUND])),
        free=ConjunctiveQuery(head_free, tuple(groups[_FREE])),
        middle=ConjunctiveQuery(middle_head, tuple(groups[_MIDDLE])),
        left_occurrences=tuple(left_occs),
        right_occurrence=right,
    )


def _permute_literal(literal: Literal, permutation: Sequence[int]) -> Literal:
    return literal.with_args(tuple(literal.args[i] for i in permutation))


def _permute_rule(rule: Rule, predicate: str, permutation: Sequence[int]) -> Rule:
    head = rule.head
    if head.predicate == predicate:
        head = _permute_literal(head, permutation)
    body = tuple(
        _permute_literal(lit, permutation) if lit.predicate == predicate else lit
        for lit in rule.body
    )
    return Rule(head, body)


def _candidate_permutations(
    adornment: Adornment, limit: int
) -> Iterable[Tuple[int, ...]]:
    """Global argument permutations preserving the bound/free split.

    A permutation that moved a bound position to a free one would
    change the query form, so only within-group permutations are
    candidates (the paper's "same permutation for all instances"
    allowance in Section 4.1).  The identity comes first.
    """
    bound = list(adornment.bound_positions())
    free = list(adornment.free_positions())
    count = 0
    for bound_perm in itertools.permutations(bound):
        for free_perm in itertools.permutations(free):
            mapping = dict(zip(bound, bound_perm))
            mapping.update(zip(free, free_perm))
            yield tuple(mapping[i] for i in range(len(adornment)))
            count += 1
            if count >= limit:
                return


def classify_program(
    program: Program,
    predicate: str,
    adornment: Adornment,
    permutation_limit: int = 720,
) -> ProgramClassification:
    """Classify every rule of the adorned predicate, in standard form.

    Rules whose head is not ``predicate`` are ignored (the query rule,
    magic rules).  If the identity permutation fails to classify every
    rule, global bound/free-preserving permutations are searched up to
    ``permutation_limit`` candidates.
    """
    rules = program.rules_for(predicate)
    if not rules:
        return ProgramClassification(
            predicate=predicate,
            adornment=adornment,
            ok=False,
            reason=f"no rules define {predicate}",
        )
    standard = to_standard_form(Program(rules), {predicate}).program

    best: Optional[ProgramClassification] = None
    for permutation in _candidate_permutations(adornment, permutation_limit):
        classifications = [
            classify_rule(
                _permute_rule(rule, predicate, permutation), predicate, adornment
            )
            for rule in standard.rules
        ]
        result = ProgramClassification(
            predicate=predicate,
            adornment=adornment,
            rules=classifications,
            permutation=permutation,
            ok=all(
                rc.rule_class is not RuleClass.UNCLASSIFIED for rc in classifications
            ),
        )
        if result.ok:
            return result
        if best is None:
            best = result  # report the identity permutation's diagnosis
    assert best is not None
    best.reason = "; ".join(
        rc.reason for rc in best.rules if rc.rule_class is RuleClass.UNCLASSIFIED
    )
    return best
