"""Predicate dependency graphs, SCCs, and recursion structure.

The semi-naive evaluator stratifies a program by the strongly connected
components of this graph; the classifiers use it to find the recursive
predicate of a unit program and to check linearity.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.datalog.program import Program
from repro.datalog.rules import Rule

Signature = Tuple[str, int]


def strongly_connected_components(
    nodes: Iterable, edges: Dict
) -> List[List]:
    """Tarjan's algorithm, iterative (no recursion-depth limits).

    ``edges[n]`` is the iterable of successors of ``n``.  Returns SCCs
    in reverse topological order (callees before callers), which is the
    evaluation order the engine wants.
    """
    index: Dict = {}
    lowlink: Dict = {}
    on_stack: Set = set()
    stack: List = []
    sccs: List[List] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(edges.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


class DependencyGraph:
    """Dependencies among the predicates of a program.

    There is an edge ``q -> p`` when ``q`` occurs in the body of a rule
    whose head is ``p`` (``p`` depends on ``q``).
    """

    def __init__(self, program: Program):
        self.program = program
        self.successors: Dict[Signature, Set[Signature]] = {}
        self.predecessors: Dict[Signature, Set[Signature]] = {}
        nodes: Set[Signature] = set()
        for rule in program.rules:
            head_sig = rule.head.signature
            nodes.add(head_sig)
            for lit in rule.body:
                body_sig = lit.signature
                nodes.add(body_sig)
                self.successors.setdefault(body_sig, set()).add(head_sig)
                self.predecessors.setdefault(head_sig, set()).add(body_sig)
        self.nodes: FrozenSet[Signature] = frozenset(nodes)
        self._sccs: List[List[Signature]] = strongly_connected_components(
            sorted(self.nodes), {n: sorted(self.successors.get(n, ())) for n in self.nodes}
        )
        self._scc_of: Dict[Signature, int] = {}
        for i, scc in enumerate(self._sccs):
            for sig in scc:
                self._scc_of[sig] = i

    # ------------------------------------------------------------------

    def sccs(self) -> List[List[Signature]]:
        """SCCs in evaluation order (dependencies before dependents).

        Tarjan emits components in reverse topological order of the
        condensation along ``body -> head`` edges — consumers first —
        so the evaluation order is the reverse of the emission order.
        """
        return [list(scc) for scc in reversed(self._sccs)]

    def same_scc(self, a: Signature, b: Signature) -> bool:
        return (
            a in self._scc_of
            and b in self._scc_of
            and self._scc_of[a] == self._scc_of[b]
        )

    def is_recursive(self, signature: Signature) -> bool:
        """True if the predicate depends (transitively) on itself."""
        if signature not in self._scc_of:
            return False
        scc = self._sccs[self._scc_of[signature]]
        if len(scc) > 1:
            return True
        return signature in self.successors.get(signature, ()) or self._has_self_loop(
            signature
        )

    def _has_self_loop(self, signature: Signature) -> bool:
        return signature in self.successors.get(signature, ())

    def recursive_signatures(self) -> Set[Signature]:
        return {sig for sig in self.nodes if self.is_recursive(sig)}

    def recursive_rules(self) -> List[Rule]:
        """Rules with at least one body literal mutually recursive with the head."""
        return [rule for rule in self.program.rules if self.rule_is_recursive(rule)]

    def rule_is_recursive(self, rule: Rule) -> bool:
        head = rule.head.signature
        return any(self.same_scc(head, lit.signature) for lit in rule.body) and (
            self.is_recursive(head)
        )

    def rule_is_linear(self, rule: Rule) -> bool:
        """Exactly one body literal mutually recursive with the head."""
        head = rule.head.signature
        count = sum(1 for lit in rule.body if self.same_scc(head, lit.signature))
        return count == 1 and self.is_recursive(head)

    def reachable_from(self, signature: Signature) -> Set[Signature]:
        """All signatures the given one depends on, transitively (inclusive)."""
        seen = {signature}
        frontier = [signature]
        while frontier:
            sig = frontier.pop()
            for dep in self.predecessors.get(sig, ()):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        return seen

    def unit_recursive_predicate(self) -> Signature:
        """The single recursive IDB predicate of a unit program.

        Raises ``ValueError`` when the program is not a unit program in
        the paper's sense (Section 4.1).
        """
        recursive = {sig for sig in self.recursive_signatures() if self.program.is_idb(sig)}
        if len(recursive) != 1:
            raise ValueError(
                f"expected exactly one recursive IDB predicate, found {sorted(recursive)}"
            )
        return next(iter(recursive))
