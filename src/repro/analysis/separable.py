"""Separable recursions (Section 6.2, Definitions 6.1-6.6).

A recursion ``t`` defined by linear recursive rules is *separable* when
(Definition 6.4):

1. no rule has *shifting variables* (a variable appearing at different
   ``t`` positions in head and body);
2. in every rule the head positions touching nonrecursive body
   predicates (``t_h``) equal the body positions doing so (``t_b``);
3. across rules the ``t_h`` sets are pairwise equal or disjoint;
4. removing the ``t`` instance from a rule body leaves a maximal
   connected set — read here as: the remaining nonrecursive instances
   are pairwise connected through shared variables (a single connected
   component).  This is a reconstruction of [7]'s wording; it correctly
   rejects same-generation (whose ``up``/``down`` literals are not
   connected) and accepts all one-sided rule shapes, which is what
   Theorem 6.3 consumes.

A separable recursion is *reducible* (Definition 6.6) when no fixed
variable appears in any ``t_h`` — Theorem 6.3 then shows Magic +
factoring applies to every full-selection query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable


def _single_occurrence(rule: Rule, predicate: str) -> Optional[Literal]:
    occurrences = rule.body_literals(predicate)
    if len(occurrences) != 1:
        return None
    return occurrences[0]


def shifting_variables(rule: Rule, predicate: str) -> Set[Variable]:
    """Variables at different positions in head and body ``t`` instances."""
    occurrence = _single_occurrence(rule, predicate)
    if occurrence is None:
        raise ValueError(f"rule is not linear in {predicate}: {rule}")
    shifting: Set[Variable] = set()
    for i, head_arg in enumerate(rule.head.args):
        head_set = set(head_arg.variables())
        for j, body_arg in enumerate(occurrence.args):
            if i == j:
                continue
            if head_set & set(body_arg.variables()):
                shifting |= head_set & set(body_arg.variables())
    return shifting


def fixed_variables(rule: Rule, predicate: str) -> Set[Variable]:
    """Definition 6.5: variables in the same position of head and body."""
    occurrence = _single_occurrence(rule, predicate)
    if occurrence is None:
        raise ValueError(f"rule is not linear in {predicate}: {rule}")
    fixed: Set[Variable] = set()
    for head_arg, body_arg in zip(rule.head.args, occurrence.args):
        fixed |= set(head_arg.variables()) & set(body_arg.variables())
    return fixed


def _touched_positions(literal: Literal, outside_vars: Set[Variable]) -> Set[int]:
    """Argument positions of ``literal`` sharing a variable with ``outside_vars``."""
    return {
        i
        for i, arg in enumerate(literal.args)
        if set(arg.variables()) & outside_vars
    }


def _connected_components(literals: List[Literal]) -> List[Set[int]]:
    """Connected components of literals under shared-variable adjacency."""
    n = len(literals)
    var_sets = [set(lit.iter_variables()) for lit in literals]
    remaining = set(range(n))
    components: List[Set[int]] = []
    while remaining:
        seed = remaining.pop()
        component = {seed}
        changed = True
        while changed:
            changed = False
            for other in list(remaining):
                if any(var_sets[other] & var_sets[member] for member in component):
                    component.add(other)
                    remaining.discard(other)
                    changed = True
        components.append(component)
    return components


@dataclass
class SeparabilityReport:
    """The full diagnosis of Definition 6.4 on one recursion."""

    predicate: str
    separable: bool
    reducible: bool
    reasons: List[str] = field(default_factory=list)
    t_h_sets: List[frozenset] = field(default_factory=list)
    fixed: List[Set[Variable]] = field(default_factory=list)


def analyze_separability(program: Program, predicate: str) -> SeparabilityReport:
    """Apply Definitions 6.1-6.6 to the recursion defining ``predicate``.

    Exit rules (no recursive occurrence) are ignored, as in the paper;
    every recursive rule must be linear.
    """
    reasons: List[str] = []
    recursive_rules: List[Rule] = []
    for rule in program.rules_for(predicate):
        occurrences = rule.body_literals(predicate)
        if not occurrences:
            continue
        if len(occurrences) > 1:
            reasons.append(f"rule is not linear: {rule}")
            return SeparabilityReport(predicate, False, False, reasons)
        recursive_rules.append(rule)
    if not recursive_rules:
        reasons.append("no recursive rules")
        return SeparabilityReport(predicate, False, False, reasons)

    t_h_sets: List[frozenset] = []
    fixed_sets: List[Set[Variable]] = []
    separable = True

    for rule in recursive_rules:
        occurrence = _single_occurrence(rule, predicate)
        nonrecursive = [lit for lit in rule.body if lit.predicate != predicate]
        nonrec_vars = {v for lit in nonrecursive for v in lit.iter_variables()}

        # Condition (1): no shifting variables.
        shifting = shifting_variables(rule, predicate)
        if shifting:
            separable = False
            reasons.append(f"shifting variables {sorted(v.name for v in shifting)} in {rule}")

        # Condition (2): t_h == t_b.
        t_h = frozenset(_touched_positions(rule.head, nonrec_vars))
        t_b = frozenset(_touched_positions(occurrence, nonrec_vars))
        if t_h != t_b:
            separable = False
            reasons.append(
                f"head positions {sorted(t_h)} != body positions {sorted(t_b)} in {rule}"
            )
        t_h_sets.append(t_h)
        fixed_sets.append(fixed_variables(rule, predicate))

        # Condition (4): nonrecursive literals form one connected component.
        components = _connected_components(nonrecursive)
        if len(components) > 1:
            separable = False
            reasons.append(
                f"nonrecursive literals split into {len(components)} components in {rule}"
            )

    # Condition (3): pairwise equal or disjoint t_h sets.
    for i in range(len(t_h_sets)):
        for j in range(i + 1, len(t_h_sets)):
            a, b = t_h_sets[i], t_h_sets[j]
            if a != b and (a & b):
                separable = False
                reasons.append(
                    f"t_h sets {sorted(a)} and {sorted(b)} overlap without being equal"
                )

    # Definition 6.6: reducible iff no fixed variable sits at a t_h position.
    reducible = separable
    if separable:
        for rule, t_h, fixed in zip(recursive_rules, t_h_sets, fixed_sets):
            for position in t_h:
                position_vars = set(rule.head.args[position].variables())
                if position_vars & fixed:
                    reducible = False
                    reasons.append(
                        f"fixed variable at t_h position {position} in {rule}"
                    )
    return SeparabilityReport(
        predicate=predicate,
        separable=separable,
        reducible=reducible,
        reasons=reasons,
        t_h_sets=t_h_sets,
        fixed=fixed_sets,
    )


def is_separable(program: Program, predicate: str) -> bool:
    return analyze_separability(program, predicate).separable


def is_reducible_separable(program: Program, predicate: str) -> bool:
    return analyze_separability(program, predicate).reducible
