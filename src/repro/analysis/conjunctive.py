"""Conjunctive queries, homomorphisms, containment, and equivalence.

Every class condition in Section 4 of the paper ("free-exit must be
contained in free", "the middle conjunctive queries must be
equivalent") is a containment test between conjunctive queries over EDB
predicates.  Containment is decided by the Chandra-Merlin homomorphism
criterion: ``Q1 ⊑ Q2`` iff there is a homomorphism from ``Q2`` to
``Q1`` fixing the distinguished (head) variables positionally.

The special predicate ``equal`` — the conceptually infinite EDB
relation of Section 4.1 — is handled by *normalization*: ``equal``
atoms are eliminated by unifying their arguments before the
homomorphism search, which keeps the test sound and complete in its
presence.  Other conceptually infinite predicates (``list``) are
treated as ordinary EDB predicates, which keeps the test sound (the
theorems only need sufficiency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.terms import Constant, Term, Variable
from repro.engine.unify import Substitution, unify_terms

EQUAL = "equal"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``q(head_terms) :- body``.

    ``head_terms`` are the distinguished arguments (variables or, after
    normalization, constants); ``body`` is a conjunction of positive
    atoms.  An empty body is the query *true* — it contains every query
    of the same head arity (the convention Theorem 6.2 relies on when a
    ``right`` conjunction is empty).
    """

    head_terms: Tuple[Term, ...]
    body: Tuple[Literal, ...]

    @property
    def arity(self) -> int:
        return len(self.head_terms)

    def is_trivial(self) -> bool:
        return not self.body

    def variables(self) -> List[Variable]:
        from repro.datalog.terms import term_variables

        return term_variables(
            list(self.head_terms) + [arg for lit in self.body for arg in lit.args]
        )

    def __str__(self) -> str:
        from repro.datalog.pretty import pretty_literal, pretty_term

        head = ", ".join(pretty_term(t) for t in self.head_terms)
        if not self.body:
            return f"q({head}) :- true"
        body = ", ".join(pretty_literal(lit) for lit in self.body)
        return f"q({head}) :- {body}"


class UnsatisfiableQuery(Exception):
    """Raised when ``equal`` normalization derives a contradiction.

    An unsatisfiable conjunction (e.g. ``equal(3, 5)``) is contained in
    everything; callers treat this exception accordingly.
    """


def normalize_equalities(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """Eliminate ``equal`` atoms by unifying their arguments.

    Raises :class:`UnsatisfiableQuery` when two distinct constants are
    equated.
    """
    subst = Substitution()
    rest: List[Literal] = []
    for atom in cq.body:
        if atom.predicate == EQUAL and atom.arity == 2:
            if unify_terms(atom.args[0], atom.args[1], subst) is None:
                raise UnsatisfiableQuery(str(cq))
        else:
            rest.append(atom)
    if not subst.mapping:
        return ConjunctiveQuery(cq.head_terms, tuple(rest))
    return ConjunctiveQuery(
        tuple(subst.apply(t) for t in cq.head_terms),
        tuple(subst.apply_literal(lit) for lit in rest),
    )


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Dict[Variable, Term]]:
    """A homomorphism from ``source`` into ``target``, or ``None``.

    The mapping sends variables of ``source`` to terms of ``target``,
    is the identity on constants, maps ``source.head_terms[i]`` to
    ``target.head_terms[i]``, and maps every body atom of ``source``
    onto some body atom of ``target``.
    """
    if source.arity != target.arity:
        return None
    mapping: Dict[Variable, Term] = {}

    def assign(term: Term, value: Term, trail: List[Variable]) -> bool:
        if isinstance(term, Variable):
            bound = mapping.get(term)
            if bound is None:
                mapping[term] = value
                trail.append(term)
                return True
            return bound == value
        # Constants (and ground compounds) must map to themselves.
        return term == value

    # Head terms are forced.
    trail0: List[Variable] = []
    for s_term, t_term in zip(source.head_terms, target.head_terms):
        if not assign(s_term, t_term, trail0):
            return None

    atoms = list(source.body)
    # Order atoms by selectivity: most-bound-variables first helps pruning.
    atoms.sort(key=lambda a: -sum(1 for v in a.iter_variables() if v in mapping))

    by_pred: Dict[Tuple[str, int], List[Literal]] = {}
    for atom in target.body:
        by_pred.setdefault(atom.signature, []).append(atom)

    def search(index: int) -> bool:
        if index == len(atoms):
            return True
        atom = atoms[index]
        for candidate in by_pred.get(atom.signature, ()):
            trail: List[Variable] = []
            ok = True
            for s_arg, t_arg in zip(atom.args, candidate.args):
                if not assign(s_arg, t_arg, trail):
                    ok = False
                    break
            if ok and search(index + 1):
                return True
            for var in trail:
                del mapping[var]
        return False

    if search(0):
        return dict(mapping)
    return None


def cq_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True iff ``q1 ⊑ q2``: on every database, answers(q1) ⊆ answers(q2).

    Decided by finding a homomorphism from ``q2`` into ``q1`` after
    ``equal`` normalization on both sides.
    """
    try:
        q1n = normalize_equalities(q1)
    except UnsatisfiableQuery:
        return True  # the empty result is contained in everything
    try:
        q2n = normalize_equalities(q2)
    except UnsatisfiableQuery:
        return False if q1_satisfiable(q1n) else True
    return find_homomorphism(q2n, q1n) is not None


def q1_satisfiable(q: ConjunctiveQuery) -> bool:
    """A normalized CQ without ``equal`` atoms is always satisfiable."""
    return True


def cq_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Containment in both directions."""
    return cq_contained_in(q1, q2) and cq_contained_in(q2, q1)


def evaluate_cq(cq: ConjunctiveQuery, db) -> Set[Tuple[Term, ...]]:
    """Answers of ``cq`` on a :class:`repro.engine.database.Database`.

    Used for the *instance-level* (run-time) versions of the class
    conditions, the strengthening discussed at the end of Example 4.3.
    ``equal`` atoms are normalized away first; other conceptually
    infinite predicates must be materialized in ``db`` by the caller.
    """
    import itertools

    from repro.datalog.rules import Rule
    from repro.engine.joins import join_rule

    try:
        cq = normalize_equalities(cq)
    except UnsatisfiableQuery:
        return set()
    head = Literal("q*", cq.head_terms)
    rule = Rule(head, cq.body)
    answers: Set[Tuple[Term, ...]] = set()

    # Head variables not bound by the body (unsafe) range over the
    # active domain, mirroring the homomorphism convention that an
    # unconstrained distinguished variable is unconstrained.
    body_vars = {v for lit in cq.body for v in lit.iter_variables()}
    unsafe = [
        t
        for t in cq.head_terms
        if isinstance(t, Variable) and t not in body_vars
    ]
    domain: Set[Term] = set()
    if unsafe:
        for rel in db.relations.values():
            for fact in rel:
                domain.update(fact)

    def emit(bindings):
        out = []
        for term in cq.head_terms:
            if isinstance(term, Variable):
                out.append(bindings[term])
            else:
                out.append(term)
        answers.add(tuple(out))

    def on_match(bindings):
        if not unsafe:
            emit(bindings)
            return
        for values in itertools.product(domain, repeat=len(unsafe)):
            extended = dict(bindings)
            extended.update(zip(unsafe, values))
            emit(extended)

    if cq.body:
        join_rule(db, rule, on_match)
    else:
        on_match({})
    return answers


def instance_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery, db) -> bool:
    """True iff answers(q1) ⊆ answers(q2) on the specific database ``db``.

    A trivial (empty-body) ``q2`` contains everything; a trivial ``q1``
    is only contained in a trivial ``q2`` (its answer set is the full
    cross product, which we cannot enumerate).
    """
    if q2.is_trivial():
        return True
    if q1.is_trivial():
        return False
    return evaluate_cq(q1, db) <= evaluate_cq(q2, db)
