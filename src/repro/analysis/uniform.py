"""Uniform containment and equivalence of Datalog programs (Sagiv [13]).

Program ``P1`` is *uniformly contained* in ``P2`` when, for every
database ``D`` (over EDB *and* IDB predicates), the least model of
``P1 ∪ D`` is contained in that of ``P2 ∪ D``.  Uniform containment is
decidable by the chase: ``P1 ⊑u P2`` iff for every rule ``H :- B`` of
``P1``, evaluating ``P2`` over the *frozen* body ``B`` (variables
replaced by fresh constants) rederives the frozen head.

The Section 5 simplifier uses the rule-level test (deleting ``r`` from
``P`` is sound when ``P \\ {r} ⊒u P``, i.e. the remaining rules
rederive ``r``); Example 5.3's final step is exactly this.  The module
exposes the program-level relation as well, which makes statements like
"these two rewritings are interchangeable" checkable.

Only Datalog is supported: with function symbols the chase may not
terminate, and callers receive ``UniformUndecidedError`` instead of a
wrong answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Compound, Constant, Variable
from repro.engine.database import Database
from repro.engine.naive import naive_eval
from repro.engine.stats import NonTerminationError
from repro.engine.unify import Substitution


class UniformUndecidedError(RuntimeError):
    """The chase could not run (function symbols or budget exhausted)."""


def _uses_compounds(rule: Rule) -> bool:
    return any(
        isinstance(arg, Compound)
        for literal in (rule.head, *rule.body)
        for arg in literal.args
    )


def freeze_rule(rule: Rule) -> Tuple[Literal, Database]:
    """Freeze a rule's variables to fresh constants.

    Returns the frozen head and a database holding the frozen body
    atoms (of every predicate — uniform containment quantifies over
    IDB-containing databases).
    """
    mapping = {
        var: Constant(f"~frozen~{i}") for i, var in enumerate(rule.variables())
    }
    subst = Substitution(dict(mapping))
    db = Database()
    for literal in rule.body:
        ground = subst.apply_literal(literal)
        db.relation(ground.predicate, ground.arity).add(ground.args)
    return subst.apply_literal(rule.head), db


def chase_derives(
    program: Program,
    rule: Rule,
    max_iterations: int = 200,
    max_facts: int = 200_000,
) -> bool:
    """Does ``program`` rederive ``rule``'s frozen head from its body?"""
    if _uses_compounds(rule) or any(_uses_compounds(r) for r in program.rules):
        raise UniformUndecidedError(
            "the chase requires pure Datalog (no function symbols)"
        )
    head, db = freeze_rule(rule)
    try:
        result, _ = naive_eval(
            program, db, max_iterations=max_iterations, max_facts=max_facts
        )
    except NonTerminationError as err:
        raise UniformUndecidedError(str(err)) from err
    return head.args in result.facts(head.predicate, head.arity)


def uniformly_contained(p1: Program, p2: Program, **kwargs) -> bool:
    """``P1 ⊑u P2``: every rule of P1 is chase-derivable from P2.

    Facts of ``P1`` must appear (as facts or be derivable) in ``P2``.
    """
    for rule in p1.rules:
        if not rule.body:
            # A fact is derivable iff P2 ∪ {} produces it.
            try:
                db, _ = naive_eval(
                    p2,
                    Database(),
                    max_iterations=kwargs.get("max_iterations", 200),
                    max_facts=kwargs.get("max_facts", 200_000),
                )
            except NonTerminationError as err:
                raise UniformUndecidedError(str(err)) from err
            if rule.head.args not in db.facts(
                rule.head.predicate, rule.head.arity
            ):
                return False
            continue
        if not chase_derives(p2, rule, **kwargs):
            return False
    return True


def uniformly_equivalent(p1: Program, p2: Program, **kwargs) -> bool:
    return uniformly_contained(p1, p2, **kwargs) and uniformly_contained(
        p2, p1, **kwargs
    )


def redundant_rules(program: Program, **kwargs) -> List[Rule]:
    """Rules deletable one at a time under uniform equivalence.

    Returns the rules removed by the greedy left-to-right policy the
    simplifier uses (Section 7.4 notes the outcome can be
    order-dependent; this order is the documented, reproducible one).
    """
    if any(_uses_compounds(rule) for rule in program.rules):
        raise UniformUndecidedError(
            "the chase requires pure Datalog (no function symbols)"
        )
    rules = list(program.rules)
    removed: List[Rule] = []
    changed = True
    while changed:
        changed = False
        for rule in list(rules):
            if not rule.body:
                continue
            rest = Program([r for r in rules if r is not rule])
            if chase_derives(rest, rule, **kwargs):
                rules.remove(rule)
                removed.append(rule)
                changed = True
                break
    return removed


def minimize_program(program: Program, **kwargs) -> Program:
    """Delete every uniformly redundant rule (greedy, reproducible).

    Filtering is by object identity, not equality: a program containing
    a duplicated rule keeps exactly one copy.
    """
    dropped_ids = {id(rule) for rule in redundant_rules(program, **kwargs)}
    return Program([r for r in program.rules if id(r) not in dropped_ids])
