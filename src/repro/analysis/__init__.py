"""Program analyses: dependency graphs, adornment, conjunctive-query
containment, standard form, rule classification, A/V graphs, and
separable-recursion tests.

These are the compile-time tools the paper's Section 4-6 recognizers
are built from.
"""

from repro.analysis.dependency import DependencyGraph, strongly_connected_components
from repro.analysis.adornment import (
    Adornment,
    adorn,
    AdornedProgram,
    adorned_name,
    split_adorned_name,
    adornment_from_query,
)
from repro.analysis.conjunctive import (
    ConjunctiveQuery,
    find_homomorphism,
    cq_contained_in,
    cq_equivalent,
)
from repro.analysis.standard_form import to_standard_form, StandardFormResult
from repro.analysis.classify import (
    RuleClass,
    RuleClassification,
    ProgramClassification,
    classify_rule,
    classify_program,
)
from repro.analysis.avgraph import AVGraph, is_one_sided, is_simple_one_sided, expand_rule
from repro.analysis.uniform import (
    uniformly_contained,
    uniformly_equivalent,
    minimize_program,
    redundant_rules,
    UniformUndecidedError,
)
from repro.analysis.isomorphism import programs_isomorphic, rules_isomorphic
from repro.analysis.separable import (
    SeparabilityReport,
    is_separable,
    is_reducible_separable,
    shifting_variables,
    fixed_variables,
)

__all__ = [
    "DependencyGraph",
    "strongly_connected_components",
    "Adornment",
    "adorn",
    "AdornedProgram",
    "adorned_name",
    "split_adorned_name",
    "adornment_from_query",
    "ConjunctiveQuery",
    "find_homomorphism",
    "cq_contained_in",
    "cq_equivalent",
    "to_standard_form",
    "StandardFormResult",
    "RuleClass",
    "RuleClassification",
    "ProgramClassification",
    "classify_rule",
    "classify_program",
    "AVGraph",
    "is_one_sided",
    "is_simple_one_sided",
    "expand_rule",
    "SeparabilityReport",
    "is_separable",
    "is_reducible_separable",
    "shifting_variables",
    "fixed_variables",
    "uniformly_contained",
    "uniformly_equivalent",
    "minimize_program",
    "redundant_rules",
    "UniformUndecidedError",
    "programs_isomorphic",
    "rules_isomorphic",
]
