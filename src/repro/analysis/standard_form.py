"""Standard form (Section 4.1).

A rule is in *standard form* with respect to the recursive predicate
``p`` when every argument of every ``p``-literal (head or body) is a
variable and no variable appears in two arguments of the same
``p``-literal.  The paper removes constants and repeated variables
with the conceptually infinite EDB predicate ``equal``, and function
terms with predicates such as ``list`` (one per functor):

    p(X, X, 5, Y)   becomes   p(X, U, V, Y), equal(X, U), equal(V, 5)
    p(X.Y, Z)       becomes   p(U, Z), list(X, Y, U)

The translation is purely syntactic and used only at compile time to
test factorability; the evaluated program stays in its original form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import (
    Compound,
    Constant,
    LIST_FUNCTOR,
    Term,
    Variable,
    fresh_variable,
)

EQUAL = "equal"
LIST = "list"


def functor_predicate(functor: str, arity: int) -> str:
    """The flattening predicate for a functor.

    The binary list constructor maps to the paper's ``list`` predicate
    (``list(H, T, L)`` meaning ``L = [H | T]``); other functors ``f/k``
    map to ``fn_f`` with ``k + 1`` arguments, the last being the whole
    term.
    """
    if functor == LIST_FUNCTOR and arity == 2:
        return LIST
    return f"fn_{functor}"


@dataclass
class StandardFormResult:
    """A program in standard form plus the bookkeeping of the rewrite."""

    program: Program
    #: Signatures of the conceptually infinite predicates introduced.
    infinite_predicates: Set[Tuple[str, int]] = field(default_factory=set)
    changed: bool = False


def _flatten_term(
    term: Term,
    extra: List[Literal],
    infinite: Set[Tuple[str, int]],
) -> Term:
    """Replace a non-variable term by a fresh variable plus defining atoms."""
    if isinstance(term, Variable):
        return term
    if isinstance(term, Constant):
        var = fresh_variable("C")
        extra.append(Literal(EQUAL, (var, term)))
        infinite.add((EQUAL, 2))
        return var
    if isinstance(term, Compound):
        arg_vars = []
        for arg in term.args:
            if isinstance(arg, Variable):
                arg_vars.append(arg)
            else:
                arg_vars.append(_flatten_term(arg, extra, infinite))
        var = fresh_variable("F")
        predicate = functor_predicate(term.functor, len(term.args))
        extra.append(Literal(predicate, (*arg_vars, var)))
        infinite.add((predicate, len(term.args) + 1))
        return var
    raise TypeError(f"not a term: {term!r}")


def _standardize_literal(
    literal: Literal,
    extra: List[Literal],
    infinite: Set[Tuple[str, int]],
) -> Literal:
    """Make every argument a distinct variable, emitting defining atoms."""
    seen: Set[Variable] = set()
    new_args: List[Term] = []
    for arg in literal.args:
        if isinstance(arg, Variable):
            if arg in seen:
                var = fresh_variable("R")
                extra.append(Literal(EQUAL, (arg, var)))
                infinite.add((EQUAL, 2))
                new_args.append(var)
                seen.add(var)
            else:
                seen.add(arg)
                new_args.append(arg)
        else:
            var = _flatten_term(arg, extra, infinite)
            new_args.append(var)
            seen.add(var)
    return Literal(literal.predicate, new_args)


def to_standard_form(program: Program, predicates: Set[str]) -> StandardFormResult:
    """Rewrite every literal of the named predicates into standard form.

    ``predicates`` names the recursive (adorned) predicates whose
    literals must be standardized; other literals are left alone, as in
    the paper.
    """
    infinite: Set[Tuple[str, int]] = set()
    new_rules: List[Rule] = []
    changed = False
    for rule in program.rules:
        extra: List[Literal] = []
        head = rule.head
        if head.predicate in predicates:
            head = _standardize_literal(head, extra, infinite)
        body: List[Literal] = []
        for literal in rule.body:
            if literal.predicate in predicates:
                body.append(_standardize_literal(literal, extra, infinite))
            else:
                body.append(literal)
        if extra or head != rule.head:
            changed = True
        new_rules.append(Rule(head, (*body, *extra)))
    return StandardFormResult(
        program=Program(new_rules),
        infinite_predicates=infinite,
        changed=changed,
    )
