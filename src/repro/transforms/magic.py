"""The Magic Sets transformation (Section 2.1; [2, 3, 10]).

Given an adorned program and the query goal, this produces ``P^mg``:

* a **magic seed** — the ground bound arguments of the query;
* for every adorned rule and every derived body literal ``q^b`` at
  position ``i``, a **magic rule**
  ``m_q^b(bound args of q) :- m_p^a(head bound args), B_1 .. B_{i-1}``
  (the left-to-right SIP: everything before the occurrence passes
  information);
* every original rule **modified** by the guard
  ``m_p^a(head bound args)`` prepended to its body;
* the paper-style ``query`` rule over the adorned goal.

Function symbols are supported (Example 4.6's ``pmem`` program): magic
facts are arbitrary ground terms, exactly the "magic templates" view of
[10] restricted to ground tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.adornment import (
    AdornedProgram,
    Adornment,
    adorn,
    split_adorned_name,
)
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable, term_variables

QUERY_PREDICATE = "query"
MAGIC_PREFIX = "m_"


def magic_name(adorned_predicate: str) -> str:
    """The magic predicate for an adorned predicate (``m_p@bf``)."""
    return f"{MAGIC_PREFIX}{adorned_predicate}"


def _bound_args(literal: Literal, adornment: Adornment) -> Tuple[Term, ...]:
    return tuple(literal.args[i] for i in adornment.bound_positions())


@dataclass
class MagicResult:
    """``P^mg`` plus the bookkeeping the factoring stage needs."""

    program: Program
    #: the adorned query goal, e.g. ``t@bf(5, Y)``
    goal: Literal
    #: the magic seed fact, e.g. ``m_t@bf(5)``
    seed: Literal
    #: the paper-style answer rule head, e.g. ``query(Y)``
    query_head: Literal
    #: original -> adorned bookkeeping
    adorned: AdornedProgram
    #: adornment for each adorned predicate name appearing in the program
    adornments: Dict[str, Adornment]

    def answers(self, db) -> Set[Tuple[Term, ...]]:
        """Query-variable bindings present in an evaluated database."""
        return db.query(self.query_head)


def magic_sets(adorned: AdornedProgram, include_seed: bool = True) -> MagicResult:
    """Apply Magic Sets to an adorned program.

    The result contains the seed as a fact rule, all magic rules, all
    modified rules, and the rule ``query(free vars) :- goal`` that the
    paper carries through its examples (and that factoring rewrites).

    With ``include_seed=False`` the seed rule is left out of the
    program (and the bound query arguments need not be ground): the
    caller injects the seed as a database fact at evaluation time.
    The query compiler uses this to compile one program per
    (query-form, adornment) and reuse it across constants.
    """
    program = adorned.program
    goal = adorned.goal
    idb_names: Dict[str, Adornment] = {}
    for rule in program.rules:
        base, adn = split_adorned_name(rule.head.predicate)
        if adn is None:
            raise ValueError(f"rule head {rule.head} is not an adorned predicate")
        idb_names[rule.head.predicate] = adn

    goal_base, goal_adn = split_adorned_name(goal.predicate)
    if goal_adn is None:
        raise ValueError(f"goal {goal} is not adorned")

    rules: List[Rule] = []

    # Seed: the ground bound arguments of the query.
    seed_args = _bound_args(goal, goal_adn)
    if include_seed:
        for arg in seed_args:
            if not arg.is_ground():
                raise ValueError(f"bound query argument {arg} is not ground")
    seed = Literal(magic_name(goal.predicate), seed_args)
    if include_seed:
        rules.append(Rule(seed, ()))

    for rule in program.rules:
        head_adn = idb_names[rule.head.predicate]
        guard = Literal(
            magic_name(rule.head.predicate), _bound_args(rule.head, head_adn)
        )
        # Magic rules: one per derived body occurrence.
        for i, literal in enumerate(rule.body):
            body_adn = idb_names.get(literal.predicate)
            if body_adn is None:
                continue  # EDB literal
            magic_head = Literal(
                magic_name(literal.predicate), _bound_args(literal, body_adn)
            )
            magic_body = (guard, *rule.body[:i])
            rules.append(Rule(magic_head, magic_body))
        # Modified rule: original body guarded by the magic literal.
        rules.append(Rule(rule.head, (guard, *rule.body)))

    # The paper-style answer rule: query(Ȳ) :- p^a(x̄0, Ȳ).
    free_vars = term_variables(
        [goal.args[i] for i in goal_adn.free_positions()]
    )
    query_head = Literal(QUERY_PREDICATE, tuple(free_vars))
    rules.append(Rule(query_head, (goal,)))

    return MagicResult(
        program=Program(rules),
        goal=goal,
        seed=seed,
        query_head=query_head,
        adorned=adorned,
        adornments=idb_names,
    )


def magic_transform(program: Program, goal: Literal) -> MagicResult:
    """Convenience: adorn then apply Magic Sets in one call."""
    return magic_sets(adorn(program, goal))
