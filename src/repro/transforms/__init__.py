"""Program transformations: Magic Sets and Counting.

The paper's core contribution (factoring) lives in :mod:`repro.core`;
this package holds the transformations it composes with.
"""

from repro.transforms.magic import MagicResult, magic_sets, magic_name
from repro.transforms.counting import (
    CountingResult,
    counting,
    delete_index_fields,
    counting_diverges,
    refine_counting,
)
from repro.transforms.supplementary import supplementary_magic_sets

__all__ = [
    "MagicResult",
    "magic_sets",
    "magic_name",
    "CountingResult",
    "counting",
    "delete_index_fields",
    "counting_diverges",
    "refine_counting",
    "supplementary_magic_sets",
]
