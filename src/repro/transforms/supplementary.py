"""Supplementary Magic Sets (the Beeri-Ramakrishnan refinement of [3]).

Plain Magic Sets re-evaluates each rule-body prefix once per magic rule
and once in the modified rule.  The supplementary variant materializes
the prefixes as *supplementary predicates*::

    sup_{r,0}(X̄)  :- m_p(X̄).
    sup_{r,i}(V̄i) :- sup_{r,i-1}(V̄{i-1}), B_i.
    m_q(bound(B_{i+1})) :- sup_{r,i}(V̄i).          (per derived B_{i+1})
    p(head)       :- sup_{r,n}(V̄n).

where ``V̄i`` keeps exactly the variables needed later (by the head or
by literals after position ``i``).  The transformation shares prefix
work between magic rules and the modified rule at the cost of extra
intermediate relations — the trade-off the ablation benchmark
(``benchmarks/bench_ablation.py``) measures against plain Magic.

Supplementary predicates are only introduced for rules with at least
one derived body literal; other rules keep the plain form.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.adornment import AdornedProgram, Adornment, split_adorned_name
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable, term_variables
from repro.transforms.magic import MagicResult, QUERY_PREDICATE, magic_name


def _bound_args(literal: Literal, adornment: Adornment) -> Tuple[Term, ...]:
    return tuple(literal.args[i] for i in adornment.bound_positions())


def supplementary_magic_sets(adorned: AdornedProgram) -> MagicResult:
    """Apply the supplementary-predicate Magic Sets rewriting.

    Returns a :class:`MagicResult` (same shape as plain
    :func:`repro.transforms.magic.magic_sets`) so the two are
    interchangeable downstream.
    """
    program = adorned.program
    goal = adorned.goal
    idb_names: Dict[str, Adornment] = {}
    for rule in program.rules:
        base, adn = split_adorned_name(rule.head.predicate)
        if adn is None:
            raise ValueError(f"rule head {rule.head} is not an adorned predicate")
        idb_names[rule.head.predicate] = adn

    goal_base, goal_adn = split_adorned_name(goal.predicate)
    if goal_adn is None:
        raise ValueError(f"goal {goal} is not adorned")

    rules: List[Rule] = []
    seed_args = _bound_args(goal, goal_adn)
    for arg in seed_args:
        if not arg.is_ground():
            raise ValueError(f"bound query argument {arg} is not ground")
    seed = Literal(magic_name(goal.predicate), seed_args)
    rules.append(Rule(seed, ()))

    for rule_index, rule in enumerate(program.rules):
        head_adn = idb_names[rule.head.predicate]
        guard = Literal(
            magic_name(rule.head.predicate), _bound_args(rule.head, head_adn)
        )
        derived_positions = [
            i for i, lit in enumerate(rule.body) if lit.predicate in idb_names
        ]
        if not derived_positions:
            rules.append(Rule(rule.head, (guard, *rule.body)))
            continue

        # Variables needed strictly after body position i (head included).
        needed_after: List[Set[Variable]] = []
        future: Set[Variable] = set(rule.head.iter_variables())
        for literal in reversed(rule.body):
            needed_after.insert(0, set(future))
            future |= set(literal.iter_variables())

        sup_base = f"sup~{rule.head.predicate}~{rule_index}"
        bound_vars = term_variables(_bound_args(rule.head, head_adn))
        previous = Literal(f"{sup_base}~0", tuple(bound_vars))
        rules.append(Rule(previous, (guard,)))

        available: Set[Variable] = set(bound_vars)
        for i, literal in enumerate(rule.body):
            if literal.predicate in idb_names:
                body_adn = idb_names[literal.predicate]
                magic_head = Literal(
                    magic_name(literal.predicate), _bound_args(literal, body_adn)
                )
                rules.append(Rule(magic_head, (previous,)))
            available |= set(literal.iter_variables())
            keep = [
                v
                for v in term_variables(
                    [*previous.args, *literal.args]
                )
                if v in needed_after[i] and v in available
            ]
            next_sup = Literal(f"{sup_base}~{i + 1}", tuple(keep))
            rules.append(Rule(next_sup, (previous, literal)))
            previous = next_sup
        rules.append(Rule(rule.head, (previous,)))

    free_vars = term_variables([goal.args[i] for i in goal_adn.free_positions()])
    query_head = Literal(QUERY_PREDICATE, tuple(free_vars))
    rules.append(Rule(query_head, (goal,)))

    return MagicResult(
        program=Program(rules),
        goal=goal,
        seed=seed,
        query_head=query_head,
        adorned=adorned,
        adornments=idb_names,
    )
