"""The Counting transformation (Section 6.4; [2, 3, 12]).

Counting augments the Magic Sets predicates with *index fields* that
encode the derivation: "the value of the index encodes the sequence of
rule applications, and the literal that is expanded at each step".  It
then deletes the bound argument fields from answer predicates, so —
when it terminates — it achieves the same arity reduction as factoring.

**Index representation.**  The paper writes arithmetic indices
``(I + 1, k * i + J)``.  The engine is pure Horn logic, so indices are
represented as ground *path terms*: the empty path ``[]`` for the
query, and ``[step(i, j) | J]`` for "rule ``i``, occurrence ``j``,
invoked from the goal with index ``J``".  The level ``I`` is the path
length and the paper's ``k*i+J`` packing is the path itself, so the
encoding carries strictly the same information (documented as a
substitution in DESIGN.md).

For every adorned recursive rule ``r_i`` with ``p``-occurrences at body
positions ``q_1 .. q_m``:

* goal rules (one per occurrence ``j``) —
  ``cnt_p(ū_j, [step(i,j)|J]) :- cnt_p(X̄, J), prefix``, where
  ``prefix`` is the body before ``q_j`` with each earlier occurrence
  ``j'`` replaced by the answer literal ``ans_p(w̄_{j'}, [step(i,j')|J])``;
* an answer rule —
  ``ans_p(Ȳ, J) :- cnt_p(X̄, J), full body with occurrences replaced``;
* the exit rule maps to ``ans_p(Ȳ, J) :- cnt_p(X̄, J), exit-body``;
* seed ``cnt_p(x̄0, [])`` and answers read from ``ans_p(Ȳ, [])``.

On a left-linear rule the goal rule degenerates to
``cnt_p(X̄, [step|J]) :- cnt_p(X̄, J)`` — the self-loop whose fixpoint
"does not terminate" (Section 6.4); :func:`counting_diverges` detects
it syntactically and the evaluators' budgets observe it dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.adornment import AdornedProgram, Adornment, split_adorned_name
from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import (
    Compound,
    Constant,
    NIL,
    Term,
    Variable,
    cons,
    term_variables,
)

COUNT_PREFIX = "cnt_"
ANSWER_PREFIX = "ans_"
STEP_FUNCTOR = "step"
QUERY_PREDICATE = "query"


def count_name(adorned_predicate: str) -> str:
    return f"{COUNT_PREFIX}{adorned_predicate}"


def answer_name(adorned_predicate: str) -> str:
    return f"{ANSWER_PREFIX}{adorned_predicate}"


def _step(rule_index: int, occurrence_index: int, path: Term) -> Term:
    step = Compound(STEP_FUNCTOR, (Constant(rule_index), Constant(occurrence_index)))
    return cons(step, path)


@dataclass
class CountingResult:
    """The counting program plus its answer head."""

    program: Program
    goal: Literal
    seed: Literal
    query_head: Literal
    predicate: str  # the adorned recursive predicate
    adornment: Adornment

    def answers(self, db) -> Set[Tuple[Term, ...]]:
        return db.query(self.query_head)


def counting(adorned: AdornedProgram, include_seed: bool = True) -> CountingResult:
    """Apply the Counting transformation to an adorned unit program.

    ``adorned`` must define a single adorned recursive predicate (the
    paper's setting for Section 6.4).

    With ``include_seed=False`` the seed rule is left out (and the
    bound query arguments need not be ground); the caller injects
    ``cnt_p(x̄0, [])`` as a database fact at evaluation time.
    """
    program = adorned.program
    goal = adorned.goal
    goal_pred = goal.predicate
    base, adornment = split_adorned_name(goal_pred)
    if adornment is None:
        raise ValueError(f"goal {goal} is not adorned")
    for rule in program.rules:
        if rule.head.predicate != goal_pred:
            raise ValueError(
                "counting requires a unit program; found rule for "
                f"{rule.head.predicate}"
            )

    bound_pos = adornment.bound_positions()
    free_pos = adornment.free_positions()
    path_var = Variable("J")

    rules: List[Rule] = []
    seed_args = tuple(goal.args[i] for i in bound_pos)
    if include_seed:
        for arg in seed_args:
            if not arg.is_ground():
                raise ValueError(f"bound query argument {arg} is not ground")
    seed = Literal(count_name(goal_pred), (*seed_args, NIL))
    if include_seed:
        rules.append(Rule(seed, ()))

    for rule_index, rule in enumerate(program.rules):
        head_bound = tuple(rule.head.args[i] for i in bound_pos)
        head_free = tuple(rule.head.args[i] for i in free_pos)
        occurrences = [
            (i, lit) for i, lit in enumerate(rule.body) if lit.predicate == goal_pred
        ]
        guard = Literal(count_name(goal_pred), (*head_bound, path_var))

        def answer_literal(occurrence_index: int, literal: Literal) -> Literal:
            free_args = tuple(literal.args[i] for i in free_pos)
            path = _step(rule_index, occurrence_index, path_var)
            return Literal(answer_name(goal_pred), (*free_args, path))

        # Goal (cnt) rules: one per occurrence.
        for j, (body_pos, literal) in enumerate(occurrences):
            cnt_args = tuple(literal.args[i] for i in bound_pos)
            cnt_head = Literal(
                count_name(goal_pred), (*cnt_args, _step(rule_index, j, path_var))
            )
            prefix: List[Literal] = [guard]
            for k, body_lit in enumerate(rule.body[:body_pos]):
                if body_lit.predicate == goal_pred:
                    j_prev = next(
                        jj for jj, (pos, _) in enumerate(occurrences) if pos == k
                    )
                    prefix.append(answer_literal(j_prev, body_lit))
                else:
                    prefix.append(body_lit)
            rules.append(Rule(cnt_head, prefix))

        # Answer (ans) rule: the full body with occurrences replaced.
        ans_head = Literal(answer_name(goal_pred), (*head_free, path_var))
        ans_body: List[Literal] = [guard]
        for k, body_lit in enumerate(rule.body):
            if body_lit.predicate == goal_pred:
                j_here = next(
                    jj for jj, (pos, _) in enumerate(occurrences) if pos == k
                )
                ans_body.append(answer_literal(j_here, body_lit))
            else:
                ans_body.append(body_lit)
        rules.append(Rule(ans_head, ans_body))

    free_vars = term_variables([goal.args[i] for i in free_pos])
    query_head = Literal(QUERY_PREDICATE, tuple(free_vars))
    query_goal = Literal(
        answer_name(goal_pred),
        (*tuple(goal.args[i] for i in free_pos), NIL),
    )
    rules.append(Rule(query_head, (query_goal,)))

    return CountingResult(
        program=Program(rules),
        goal=goal,
        seed=seed,
        query_head=query_head,
        predicate=goal_pred,
        adornment=adornment,
    )


def refine_counting(result: CountingResult) -> CountingResult:
    """Delete the bound-side literals the index fields make redundant.

    In the paper's Section 6.4 example the answer rule derived from a
    right-linear rule is ``p_cnt(Ȳ, I, J) :- p_cnt(Ȳ, I+1, k*i+J),
    right(Ȳ)`` — the ``cnt`` guard and the ``first`` conjunction are
    gone, because an answer carrying index ``[step|J]`` can only exist
    if the goal with that index was generated, which already required
    them.  This pass performs that deletion: in an answer rule with a
    single ``p``-occurrence, body literals not connected to the free
    side are dropped, provided each dropped literal also occurs in the
    body of the occurrence's goal (``cnt``) rule — the syntactic
    justification that the index chain implies them.
    """
    cnt = count_name(result.predicate)
    ans = answer_name(result.predicate)
    program = result.program

    # Collect goal-rule bodies keyed by their head path term's step.
    cnt_bodies: List[Tuple[Literal, Tuple[Literal, ...]]] = [
        (rule.head, rule.body)
        for rule in program.rules
        if rule.head.predicate == cnt and rule.body
    ]

    new_rules: List[Rule] = []
    for rule in program.rules:
        if rule.head.predicate != ans:
            new_rules.append(rule)
            continue
        ans_literals = [lit for lit in rule.body if lit.predicate == ans]
        if len(ans_literals) != 1:
            new_rules.append(rule)
            continue
        occurrence = ans_literals[0]
        # Variables connected to the free side (head + the answer literal).
        keep_vars = set(rule.head.iter_variables()) | set(
            occurrence.iter_variables()
        )
        changed = True
        keep: List[Literal] = [occurrence]
        remaining = [lit for lit in rule.body if lit is not occurrence]
        while changed:
            changed = False
            for lit in list(remaining):
                if lit.predicate == ans:
                    continue
                if set(lit.iter_variables()) & keep_vars:
                    keep.append(lit)
                    keep_vars |= set(lit.iter_variables())
                    remaining.remove(lit)
                    changed = True
        dropped = remaining
        # Justification: every dropped literal must appear in some goal
        # rule whose head step matches the occurrence's path.
        justified = True
        for lit in dropped:
            if lit.predicate == cnt:
                continue  # the guard is implied by the answer's existence
            if not any(lit in body for (_, body) in cnt_bodies):
                justified = False
                break
        if not justified:
            new_rules.append(rule)
            continue
        ordered = [lit for lit in rule.body if lit in keep]
        new_rules.append(Rule(rule.head, ordered))
    return CountingResult(
        program=Program(new_rules),
        goal=result.goal,
        seed=result.seed,
        query_head=result.query_head,
        predicate=result.predicate,
        adornment=result.adornment,
    )


def counting_diverges(result: CountingResult) -> bool:
    """Syntactic divergence check (Section 6.4).

    The counting program diverges when some ``cnt`` rule re-derives the
    same bound arguments with a strictly longer path — i.e. a goal rule
    whose head and body ``cnt`` literals carry identical bound argument
    vectors.  This is exactly the magic self-loop produced by
    left-linear occurrences.
    """
    cnt = count_name(result.predicate)
    for rule in result.program.rules:
        if rule.head.predicate != cnt:
            continue
        head_bound = rule.head.args[:-1]
        for literal in rule.body:
            if literal.predicate == cnt and literal.args[:-1] == head_bound:
                return True
    return False


def delete_index_fields(result: CountingResult) -> Tuple[Program, Literal]:
    """Drop the index argument everywhere (the Theorem 6.4 refinement).

    Rules that become tautological (head literal in its own body, e.g.
    ``ans_p(Ȳ) :- ans_p(Ȳ), right(Ȳ)``) are deleted, matching the
    paper's "deleting trivially redundant rules".  Returns the program
    and the new query head.
    """
    cnt = count_name(result.predicate)
    ans = answer_name(result.predicate)

    def strip(literal: Literal) -> Literal:
        if literal.predicate in (cnt, ans):
            return Literal(literal.predicate, literal.args[:-1])
        return literal

    rules: List[Rule] = []
    for rule in result.program.rules:
        head = strip(rule.head)
        body = tuple(strip(lit) for lit in rule.body)
        if head in body:
            continue  # trivially redundant after index deletion
        rules.append(Rule(head, body))
    return Program(rules), result.query_head
