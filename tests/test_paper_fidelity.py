"""Paper-fidelity tests: the exact artifacts printed in the paper.

Each test pins one program or derivation the paper shows explicitly,
so regressions in any pipeline stage surface as a diff against the
published artifact (up to the systematic renaming documented in
DESIGN.md: ``tbf → t@bf``, ``m_tbf → m_t@bf``, ``bt/ft → b_t@bf/f_t@bf``).
"""

import pytest

from repro.analysis.adornment import adorn
from repro.core.factoring import factor_magic
from repro.core.pipeline import optimize
from repro.core.simplify import simplify_factored
from repro.datalog.parser import parse_query, parse_rule
from repro.transforms.magic import magic_sets
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.lists import pmem_program, pmem_query


class TestFigure1:
    """P^mg for the three-rule transitive closure (Fig. 1)."""

    @pytest.fixture
    def magic(self):
        return magic_sets(adorn(three_rule_tc_program(), parse_query("t(5, Y)")))

    def test_seed(self, magic):
        assert parse_rule("m_t@bf(5).") in magic.program.rules

    def test_magic_rules(self, magic):
        """Fig. 1 lists m_tbf(W) :- m_tbf(X), tbf(X, W) and
        m_tbf(W) :- m_tbf(X), e(X, W); the nonlinear rule contributes
        one magic rule per occurrence under the left-to-right SIP."""
        magic_rules = {
            str(r) for r in magic.program.rules_for("m_t@bf") if r.body
        }
        assert "m_t@bf(W) :- m_t@bf(X), t@bf(X, W)." in magic_rules
        assert "m_t@bf(W) :- m_t@bf(X), e(X, W)." in magic_rules

    def test_modified_rules(self, magic):
        modified = {str(r) for r in magic.program.rules_for("t@bf")}
        assert modified == {
            "t@bf(X, Y) :- m_t@bf(X), t@bf(X, W), t@bf(W, Y).",
            "t@bf(X, Y) :- m_t@bf(X), e(X, W), t@bf(W, Y).",
            "t@bf(X, Y) :- m_t@bf(X), t@bf(X, W), e(W, Y).",
            "t@bf(X, Y) :- m_t@bf(X), e(X, Y).",
        }

    def test_query_rule(self, magic):
        assert str(magic.program.rules_for("query")[0]) == "query(Y) :- t@bf(5, Y)."


class TestFigure2:
    """The factored version of P^mg (Fig. 2)."""

    def test_rule_counts(self):
        magic = magic_sets(adorn(three_rule_tc_program(), parse_query("t(5, Y)")))
        factored = factor_magic(magic)
        # Fig. 2: 3 magic rules + seed, 4 bt rules, 4 ft rules, query.
        assert len(factored.program.rules_for("b_t@bf")) == 4
        assert len(factored.program.rules_for("f_t@bf")) == 4
        assert len([r for r in factored.program.rules_for("m_t@bf") if r.body]) == 4

    def test_first_bt_rule_shape(self):
        """bt(X) :- m_tbf(X), bt(X), ft(W), bt(W), ft(Y)."""
        magic = magic_sets(adorn(three_rule_tc_program(), parse_query("t(5, Y)")))
        factored = factor_magic(magic)
        rules = {str(r) for r in factored.program.rules_for("b_t@bf")}
        assert (
            "b_t@bf(X) :- m_t@bf(X), b_t@bf(X), f_t@bf(W), b_t@bf(W), f_t@bf(Y)."
            in rules
        )

    def test_query_rule(self):
        """query(Y) :- bt(5), ft(Y)."""
        magic = magic_sets(adorn(three_rule_tc_program(), parse_query("t(5, Y)")))
        factored = factor_magic(magic)
        assert (
            str(factored.program.rules_for("query")[0])
            == "query(Y) :- b_t@bf(5), f_t@bf(Y)."
        )


class TestExample42Final:
    """The unary program closing Example 4.2 / 5.3."""

    def test_exact_program(self):
        result = optimize(three_rule_tc_program(), parse_query("t(5, Y)"))
        assert {str(r) for r in result.simplified.program} == {
            "m_t@bf(5).",
            "m_t@bf(W) :- f_t@bf(W).",
            "f_t@bf(Y) :- m_t@bf(X), e(X, Y).",
            "query(Y) :- f_t@bf(Y).",
        }


class TestExample46Final:
    """The linear pmem program closing Example 4.6."""

    def test_magic_rules_match_paper(self):
        result = optimize(pmem_program(), pmem_query(4))
        rules = {str(r) for r in result.simplified.program}
        assert "m_pmem@fb([0, 1, 2, 3])." in rules
        assert "m_pmem@fb(T) :- m_pmem@fb([H | T])." in rules
        assert "f_pmem@fb(X) :- m_pmem@fb([X | T]), p(X)." in rules
        assert "query(X) :- f_pmem@fb(X)." in rules
        assert len(rules) == 4

    def test_intermediate_factored_form(self):
        """Example 4.6's factored (pre-optimization) program has the
        bpmem/fpmem rule pairs the paper prints."""
        magic = magic_sets(adorn(pmem_program(), pmem_query(2)))
        factored = factor_magic(magic)
        rules = {str(r) for r in factored.program}
        assert "b_pmem@fb([X | T]) :- m_pmem@fb([X | T]), p(X)." in rules
        assert "f_pmem@fb(X) :- m_pmem@fb([X | T]), p(X)." in rules
        # the recursive pair: bpmem([H|T]) :- m_pmem([H|T]), fpmem(X), bpmem(T)
        assert any(
            r.startswith("b_pmem@fb([H | T]) :-") and "b_pmem@fb(T)" in r
            for r in rules
        )


class TestExample43Programs:
    """Example 4.3's Magic and final factored programs (shape-level)."""

    def test_magic_program_rules(self):
        from repro.workloads.examples import example_43_program

        magic = magic_sets(adorn(example_43_program(), parse_query("p(5, Y)")))
        rules = {str(r) for r in magic.program}
        assert "m_p@bf(5)." in rules
        assert "m_p@bf(V) :- m_p@bf(X), f(X, V)." in rules
        assert (
            "m_p@bf(V) :- m_p@bf(X), l1(X), p@bf(X, U), c1(U, V)." in rules
        )

    def test_factored_simplified_shape(self):
        """The paper's final program keeps: three magic rules + seed,
        two bp rules (right-linear recursion + exit), one fp exit rule,
        and query(Y) :- fp(Y)."""
        from repro.workloads.examples import example_43_edb, example_43_program

        result = optimize(
            example_43_program(), parse_query("p(5, Y)"), edb=example_43_edb()
        )
        program = result.simplified.program
        assert str(program.rules_for("query")[0]) == "query(Y) :- f_p@bf(Y)."
        assert len(program.rules_for("b_p@bf")) == 2
        assert len(program.rules_for("f_p@bf")) == 1
        # Proposition 5.1 fired inside the combined-rule magic rules:
        combined_magic = [
            r
            for r in program.rules_for("m_p@bf")
            if any(l.predicate == "b_p@bf" for l in r.body)
        ]
        assert combined_magic
        for rule in combined_magic:
            assert all(l.predicate != "m_p@bf" for l in rule.body)


class TestTheorem31Tuples:
    """The proof's concrete tuples (Theorem 3.1)."""

    def test_exact_answer_sets(self):
        from repro.core.undecidability import (
            answers,
            containment_gadget,
            proof_counterexample_edb,
        )
        from tests.conftest import answer_values

        gadget = containment_gadget()
        edb = proof_counterexample_edb()
        assert answer_values(answers(gadget.original, gadget.goal, edb)) == {
            (1, 2, 3),
            (1, 4, 5),
        }
        assert answer_values(answers(gadget.factored_12_3, gadget.goal, edb)) == {
            (1, 2, 3),
            (1, 4, 5),
            (1, 2, 5),
            (1, 4, 3),
        }
