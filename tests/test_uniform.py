"""Tests for uniform containment/equivalence (Sagiv's chase)."""

import pytest

from repro.analysis.uniform import (
    UniformUndecidedError,
    chase_derives,
    freeze_rule,
    minimize_program,
    redundant_rules,
    uniformly_contained,
    uniformly_equivalent,
)
from repro.datalog.parser import parse_program, parse_rule


class TestFreeze:
    def test_freeze_grounds_everything(self):
        head, db = freeze_rule(parse_rule("p(X, Y) :- q(X, W), r(W, Y)."))
        assert head.is_ground()
        assert db.total_facts() == 2

    def test_shared_variables_share_constants(self):
        head, db = freeze_rule(parse_rule("p(X) :- q(X), r(X)."))
        q_fact = next(iter(db.facts("q")))
        r_fact = next(iter(db.facts("r")))
        assert q_fact == r_fact == (head.args[0],)


class TestChase:
    def test_derivable_rule(self):
        program = parse_program("p(X) :- a(X).\na(X) :- b(X).")
        # p(X) :- b(X) is implied
        assert chase_derives(program, parse_rule("p(X) :- b(X)."))

    def test_underivable_rule(self):
        program = parse_program("p(X) :- a(X).")
        assert not chase_derives(program, parse_rule("p(X) :- b(X)."))

    def test_function_symbols_rejected(self):
        program = parse_program("p(X) :- a(X).")
        with pytest.raises(UniformUndecidedError):
            chase_derives(program, parse_rule("p(X) :- a(f(X))."))


class TestContainment:
    def test_reflexive(self):
        program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
        assert uniformly_contained(program, program)

    def test_left_vs_right_linear_tc_not_uniform(self):
        """The classic separation: left- and right-linear TC compute the
        same queries over every EDB, but are NOT uniformly equivalent —
        uniform containment also quantifies over databases containing
        arbitrary t facts, where one chaining direction cannot simulate
        the other in a single rule application."""
        left = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), e(W, Y)."
        )
        right = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y)."
        )
        assert not uniformly_contained(left, right)
        assert not uniformly_contained(right, left)

    def test_linear_contained_in_nonlinear(self):
        """Linear TC ⊑u nonlinear TC, but not conversely: the nonlinear
        rule's frozen body (two t facts) gives the linear program no e
        fact to chain through."""
        nonlinear = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y)."
        )
        linear = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y)."
        )
        assert uniformly_contained(linear, nonlinear)
        assert not uniformly_contained(nonlinear, linear)

    def test_strict_containment(self):
        one_step = parse_program("t(X, Y) :- e(X, Y).")
        closure = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y)."
        )
        assert uniformly_contained(one_step, closure)
        assert not uniformly_contained(closure, one_step)

    def test_facts_considered(self):
        with_fact = parse_program("m(5).\nm(Y) :- m(X), e(X, Y).")
        without = parse_program("m(Y) :- m(X), e(X, Y).")
        assert uniformly_contained(without, with_fact)
        assert not uniformly_contained(with_fact, without)


class TestRedundancy:
    def test_example_53_rules(self):
        """The two rules Example 5.3 deletes are found redundant."""
        program = parse_program(
            """
            m(W) :- f(W).
            m(W) :- m(X), e(X, W).
            m(5).
            f(Y) :- f(W), e(W, Y).
            f(Y) :- m(X), e(X, Y).
            q(Y) :- f(Y).
            """
        )
        removed = {str(r) for r in redundant_rules(program)}
        assert removed == {
            "m(W) :- m(X), e(X, W).",
            "f(Y) :- f(W), e(W, Y).",
        }

    def test_minimize(self):
        program = parse_program(
            """
            m(W) :- f(W).
            m(W) :- m(X), e(X, W).
            m(5).
            f(Y) :- m(X), e(X, Y).
            q(Y) :- f(Y).
            """
        )
        minimal = minimize_program(program)
        assert len(minimal) == 4
        assert uniformly_equivalent(program, minimal)

    def test_facts_never_removed(self):
        program = parse_program("m(5).\nm(6).")
        assert redundant_rules(program) == []

    def test_duplicate_rule_removed(self):
        program = parse_program("p(X) :- e(X).\np(X) :- e(X).")
        assert len(minimize_program(program)) == 1
