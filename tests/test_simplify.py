"""Tests for the Section 5 simplifier."""

import pytest

from repro.core.factoring import factor_magic
from repro.core.pipeline import optimize
from repro.core.simplify import simplify_factored
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.engine.seminaive import seminaive_eval
from repro.transforms.magic import magic_transform
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb, random_digraph_edb
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

from tests.conftest import oracle_answers


def tc_simplified(goal_text="t(5, Y)", **kwargs):
    magic = magic_transform(three_rule_tc_program(), parse_query(goal_text))
    factored = factor_magic(magic)
    return simplify_factored(factored, **kwargs)


class TestExample53:
    """The paper's Example 5.3 walk-through, end state checked exactly."""

    def test_final_unary_program(self):
        simplified, trace = tc_simplified()
        text = {str(rule) for rule in simplified.program}
        assert text == {
            "m_t@bf(5).",
            "m_t@bf(W) :- f_t@bf(W).",
            "f_t@bf(Y) :- m_t@bf(X), e(X, Y).",
            "query(Y) :- f_t@bf(Y).",
        }

    def test_trace_records_each_proposition(self):
        _, trace = tc_simplified()
        passes = {step.split("]")[0].strip("[") for step in trace.steps}
        assert {"prop-5.4a", "prop-5.1", "prop-5.2", "prop-5.3",
                "prop-5.4b", "uniform"} <= passes

    def test_without_uniform_equivalence(self):
        simplified, _ = tc_simplified(use_uniform_equivalence=False)
        # the redundant recursive rules survive
        rules = {str(r) for r in simplified.program}
        assert "m_t@bf(W) :- m_t@bf(X), e(X, W)." in rules
        assert len(simplified.program) == 6

    def test_simplified_preserves_answers(self):
        simplified, _ = tc_simplified("t(0, Y)")
        edb = random_digraph_edb(12, 30, seed=4)
        db, _ = seminaive_eval(simplified.program, edb)
        assert db.query(simplified.query_head) == oracle_answers(
            three_rule_tc_program(), parse_query("t(0, Y)"), edb
        )


class TestExample46:
    def test_pmem_final_program(self):
        """Example 4.6's final program: the linear m_pmem recursion."""
        magic = magic_transform(pmem_program(), pmem_query(3))
        simplified, trace = simplify_factored(factor_magic(magic))
        rules = {str(r) for r in simplified.program}
        assert rules == {
            "m_pmem@fb([0, 1, 2]).",
            "m_pmem@fb(T) :- m_pmem@fb([H | T]).",
            "f_pmem@fb(X) :- m_pmem@fb([X | T]), p(X).",
            "query(X) :- f_pmem@fb(X).",
        }
        assert any("skipped" in s and "function symbols" in s for s in trace.steps)

    def test_pmem_simplified_answers(self):
        magic = magic_transform(pmem_program(), pmem_query(6))
        simplified, _ = simplify_factored(factor_magic(magic))
        db, _ = seminaive_eval(simplified.program, pmem_edb(6, satisfying=[1, 3]))
        values = {t[0].value for t in db.query(simplified.query_head)}
        assert values == {1, 3}


class TestPassSafety:
    def test_no_mutual_bp_fp_deletion(self):
        """A body must keep at least one of its bp/fp witnesses."""
        from repro.core.factoring import FactoredProgram
        from repro.datalog.program import Program

        program = parse_program("flag :- b_p(X), f_p(Y).\nquery(Z) :- f_p(Z), flag.")
        factored = FactoredProgram(
            program=program,
            predicate="p",
            first_name="b_p",
            second_name="f_p",
            first_positions=(0,),
            second_positions=(1,),
            magic_predicate="m_p",
            seed_args=None,
            query_head=parse_query("query(Z)"),
        )
        simplified, _ = simplify_factored(factored, use_uniform_equivalence=False)
        flag_rules = simplified.program.rules_for("flag")
        assert flag_rules and len(flag_rules[0].body) >= 1

    def test_seeds_never_deleted(self):
        simplified, _ = tc_simplified()
        assert parse_rule("m_t@bf(5).") in simplified.program.rules

    def test_idempotent(self):
        simplified, _ = tc_simplified()
        again, trace = simplify_factored(simplified)
        assert again.program == simplified.program
