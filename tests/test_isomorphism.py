"""Tests for rule/program isomorphism (the Theorem 6.4 comparator)."""

from repro.analysis.isomorphism import programs_isomorphic, rules_isomorphic
from repro.datalog.parser import parse_program, parse_rule


class TestRulesIsomorphic:
    def test_variable_renaming(self):
        a = parse_rule("p(X, Y) :- q(X, Z), r(Z, Y).")
        b = parse_rule("p(A, B) :- q(A, C), r(C, B).")
        assert rules_isomorphic(a, b)

    def test_body_order_ignored(self):
        a = parse_rule("p(X) :- q(X), r(X).")
        b = parse_rule("p(X) :- r(X), q(X).")
        assert rules_isomorphic(a, b)

    def test_renaming_must_be_bijective(self):
        a = parse_rule("p(X, Y) :- q(X, Y).")
        b = parse_rule("p(A, A) :- q(A, A).")
        assert not rules_isomorphic(a, b)
        assert not rules_isomorphic(b, a)

    def test_constants_fixed(self):
        a = parse_rule("p(X) :- q(X, 5).")
        b = parse_rule("p(X) :- q(X, 6).")
        assert not rules_isomorphic(a, b)

    def test_compound_terms(self):
        a = parse_rule("m(T) :- m([H | T]).")
        b = parse_rule("m(B) :- m([A | B]).")
        assert not rules_isomorphic(a, parse_rule("m(T) :- m([T | H])."))
        assert rules_isomorphic(a, b)

    def test_different_lengths(self):
        a = parse_rule("p(X) :- q(X).")
        b = parse_rule("p(X) :- q(X), q(X).")
        assert not rules_isomorphic(a, b)


class TestProgramsIsomorphic:
    def test_rule_order_ignored(self):
        a = parse_program("p(X) :- q(X).\nr(X) :- s(X).")
        b = parse_program("r(X) :- s(X).\np(X) :- q(X).")
        assert programs_isomorphic(a, b)

    def test_predicate_renaming(self):
        a = parse_program("cnt(X) :- cnt(Y), e(Y, X).\ncnt(5).")
        b = parse_program("m(X) :- m(Y), e(Y, X).\nm(5).")
        assert programs_isomorphic(a, b, {"cnt": "m"})
        assert not programs_isomorphic(a, b)

    def test_extra_rule_detected(self):
        a = parse_program("p(X) :- q(X).")
        b = parse_program("p(X) :- q(X).\np(X) :- r(X).")
        assert not programs_isomorphic(a, b)
