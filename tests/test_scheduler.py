"""Tests for the shared SCC scheduler: batching, parallelism, staging.

Covers the satellite checklist for the unified evaluation core:
``strongly_connected_components`` on long chains (no recursion-limit
regressions), self-loop vs. singleton non-recursive components, a
property test that depth batches respect every dependency edge, the
``jobs`` knob's determinism, and the write-isolation staging on
:class:`~repro.engine.database.Database`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dependency import DependencyGraph, strongly_connected_components
from repro.datalog.parser import parse_program
from repro.engine.database import Database
from repro.engine.naive import naive_eval
from repro.engine.scheduler import (
    JOBS_ENV,
    SCCScheduler,
    component_depths,
    resolve_jobs,
)
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats
from repro.workloads.graphs import chain_edb
from repro.workloads.synthetic import (
    random_edb,
    random_program,
    wide_dag_edb,
    wide_dag_program,
)


class TestTarjanScaling:
    def test_long_path_graph_no_recursion_limit(self):
        """10k-node path: the iterative Tarjan never hits sys limits."""
        n = 10_000
        edges = {i: [i + 1] for i in range(n - 1)}
        sccs = strongly_connected_components(range(n), edges)
        assert len(sccs) == n
        assert all(len(scc) == 1 for scc in sccs)

    def test_long_cycle_single_component(self):
        n = 5_000
        edges = {i: [(i + 1) % n] for i in range(n)}
        sccs = strongly_connected_components(range(n), edges)
        assert len(sccs) == 1 and len(sccs[0]) == n

    def test_long_predicate_chain_program(self):
        """A 300-stratum program evaluates without recursion errors."""
        depth = 300
        lines = ["p0(X) :- e(X)."]
        lines += [f"p{i}(X) :- p{i - 1}(X)." for i in range(1, depth)]
        program = parse_program("\n".join(lines))
        edb = Database()
        edb.add_fact("e", (1,))
        db, stats = seminaive_eval(program, edb)
        assert db.has_fact(f"p{depth - 1}", (1,))
        assert stats.scc_count == depth
        # a pure chain offers no parallelism anywhere
        assert stats.scc_parallel_batches == 0


class TestComponentShapes:
    def test_self_loop_is_recursive_component(self):
        program = parse_program("p(X) :- e(X).\np(X) :- p(X).")
        scheduler = SCCScheduler(program)
        (task,) = scheduler.tasks
        assert task.recursive
        assert task.sigs == frozenset({("p", 1)})

    def test_singleton_without_self_loop_is_single_pass(self):
        program = parse_program("p(X) :- e(X).")
        scheduler = SCCScheduler(program)
        (task,) = scheduler.tasks
        assert not task.recursive

    def test_self_loop_vs_singleton_iterations(self):
        """The self-loop iterates to fixpoint; the plain rule fires once."""
        edb = Database.from_dict({"e": [(1,), (2,)]})
        plain = parse_program("p(X) :- e(X).")
        loop = parse_program("p(X) :- e(X).\np(X) :- p(X).")
        plain_db, plain_stats = seminaive_eval(plain, edb)
        loop_db, loop_stats = seminaive_eval(loop, edb)
        assert plain_stats.iterations == 1
        assert loop_stats.iterations > 1
        assert plain_db == loop_db
        assert len(loop_db.facts("p")) == 2

    def test_mutual_recursion_one_component(self):
        program = parse_program(
            "even(Y) :- odd(X), succ(X, Y).\n"
            "odd(Y) :- even(X), succ(X, Y).\n"
            "even(X) :- zero(X).\n"
        )
        scheduler = SCCScheduler(program)
        sigs = {frozenset(task.sigs) for task in scheduler.tasks}
        assert frozenset({("even", 1), ("odd", 1)}) in sigs

    def test_edb_only_components_are_skipped(self):
        program = parse_program("p(X, Y) :- e(X, Y), f(Y).")
        scheduler = SCCScheduler(program)
        assert [task.sigs for task in scheduler.tasks] == [
            frozenset({("p", 2)})
        ]


class TestDepthBatches:
    @settings(max_examples=60, deadline=None)
    @given(program_seed=st.integers(0, 10_000), rules=st.integers(1, 4))
    def test_batches_respect_every_dependency_edge(self, program_seed, rules):
        """Every body -> head edge crosses non-decreasing depth, strictly
        increasing unless both ends share a component."""
        program = random_program(program_seed, rules=rules)
        graph = DependencyGraph(program)
        sccs = graph.sccs()
        depths = component_depths(sccs, graph.predecessors)
        scc_of = {sig: i for i, scc in enumerate(sccs) for sig in scc}
        for rule in program.proper_rules():
            head = rule.head.signature
            for lit in rule.body:
                body = lit.signature
                if scc_of[body] == scc_of[head]:
                    continue
                assert depths[scc_of[body]] < depths[scc_of[head]], (
                    f"edge {body} -> {head} does not climb depths"
                )

    @settings(max_examples=40, deadline=None)
    @given(program_seed=st.integers(0, 10_000))
    def test_batches_partition_tasks(self, program_seed):
        program = random_program(program_seed)
        scheduler = SCCScheduler(program)
        seen = []
        last_depth = -1
        for batch in scheduler.batches:
            assert batch, "no empty batches"
            depth = batch[0].depth
            assert depth > last_depth
            assert all(task.depth == depth for task in batch)
            seen.extend(batch)
            last_depth = depth
        assert sorted(id(t) for t in seen) == sorted(
            id(t) for t in scheduler.tasks
        )

    def test_wide_dag_components_share_one_batch(self):
        scheduler = SCCScheduler(wide_dag_program(4))
        widths = [len(batch) for batch in scheduler.batches]
        assert widths == [4, 1]  # four closures, then the collector


class TestParallelEvaluation:
    def test_jobs_counter_identical_on_wide_dag(self):
        program, edb = wide_dag_program(4), wide_dag_edb(4, 20)
        db1, s1 = seminaive_eval(program, edb, jobs=1)
        db2, s2 = seminaive_eval(program, edb, jobs=2)
        db4, s4 = seminaive_eval(program, edb, jobs=4)
        assert db1 == db2 == db4
        for stats in (s2, s4):
            assert (stats.facts, stats.inferences, stats.iterations) == (
                s1.facts,
                s1.inferences,
                s1.iterations,
            )
        assert s1.scc_count == 5
        assert s1.scc_parallel_batches == 1

    def test_jobs_counter_identical_naive(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        db1, s1 = naive_eval(program, edb, jobs=1)
        db2, s2 = naive_eval(program, edb, jobs=3)
        assert db1 == db2
        assert (s1.facts, s1.inferences) == (s2.facts, s2.inferences)

    @settings(max_examples=25, deadline=None)
    @given(
        program_seed=st.integers(0, 10_000),
        edb_seed=st.integers(0, 2_000),
        n=st.integers(3, 8),
    )
    def test_jobs_matches_sequential_on_random_programs(
        self, program_seed, edb_seed, n
    ):
        program = random_program(program_seed)
        edb = random_edb(edb_seed, n=n)
        db1, s1 = seminaive_eval(program, edb, jobs=1)
        db2, s2 = seminaive_eval(program, edb, jobs=2)
        assert db1 == db2
        assert (s1.facts, s1.inferences, s1.iterations) == (
            s2.facts,
            s2.inferences,
            s2.iterations,
        )

    def test_parallel_budget_still_raises(self):
        from repro.engine.stats import NonTerminationError

        lines = []
        for i in range(3):
            lines.append(f"p{i}(s(X)) :- p{i}(X).")
        program = parse_program("\n".join(lines))
        edb = Database()
        for i in range(3):
            edb.add_fact(f"p{i}", (0,))
        with pytest.raises(NonTerminationError):
            seminaive_eval(program, edb, max_facts=30, jobs=2)

    def test_iteration_budget_is_per_component(self):
        """max_iterations bounds one component's rounds: a program with
        several independent deep recursions must not exhaust the budget
        just by having more components."""
        from repro.engine.stats import NonTerminationError

        program, edb = wide_dag_program(3), wide_dag_edb(3, 30)
        # each closure needs ~31 rounds; the sum (~93) exceeds 40, but
        # no single component does
        for evaluator in (seminaive_eval, naive_eval):
            db, stats = evaluator(program, edb, max_iterations=40)
            assert stats.iterations > 40  # cumulative counter unchanged
            with pytest.raises(NonTerminationError):
                evaluator(program, edb, max_iterations=10)

    def test_parallel_batch_respects_collective_budget(self):
        """A batch whose components only jointly exceed max_facts must
        still raise — the barrier re-checks the absorbed totals."""
        from repro.engine.stats import NonTerminationError

        program, edb = wide_dag_program(2), wide_dag_edb(2, 6)
        _, stats = seminaive_eval(program, edb)
        budget = stats.facts - 1  # each component alone stays under
        with pytest.raises(NonTerminationError):
            seminaive_eval(program, edb, max_facts=budget, jobs=1)
        with pytest.raises(NonTerminationError):
            seminaive_eval(program, edb, max_facts=budget, jobs=2)


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestStaging:
    def test_stage_isolates_writes(self):
        db = Database.from_dict({"e": [(1, 2)], "t": [(0, 0)]})
        stage = db.stage([("t", 2)])
        stage.add_fact("t", (5, 6))
        assert stage.has_fact("t", (0, 0))  # staged copy keeps seed facts
        assert not db.has_fact("t", (5, 6))
        # non-staged relations are shared by reference
        assert stage.get("e", 2) is db.get("e", 2)

    def test_adopt_stage_folds_back(self):
        db = Database.from_dict({"e": [(1, 2)]})
        stage = db.stage([("t", 2)])
        stage.add_fact("t", (1, 2))
        db.adopt_stage(stage, [("t", 2)])
        assert db.has_fact("t", (1, 2))

    def test_stage_of_missing_relation_is_empty(self):
        db = Database()
        stage = db.stage([("t", 2)])
        assert len(stage.relation("t", 2)) == 0


class TestSchedulerStats:
    def test_scc_counters_surface_in_stats(self):
        program, edb = wide_dag_program(2), wide_dag_edb(2, 6)
        _, stats = seminaive_eval(program, edb)
        assert stats.scc_count == 3
        assert stats.scc_parallel_batches == 1
        merged = stats.merge(EvalStats(scc_count=1))
        assert merged.scc_count == 4

    def test_absorb_accumulates(self):
        a = EvalStats(facts=2, inferences=4, provenance_plan_ratio=1.0)
        b = EvalStats(facts=3, inferences=4, provenance_plan_ratio=0.0)
        a.absorb(b)
        assert a.facts == 5 and a.inferences == 8
        assert a.provenance_plan_ratio == pytest.approx(0.5)
