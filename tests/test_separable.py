"""Tests for separable recursions (Section 6.2)."""

from repro.analysis.separable import (
    analyze_separability,
    fixed_variables,
    is_reducible_separable,
    is_separable,
    shifting_variables,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.terms import Variable
from repro.workloads.examples import same_generation_program


class TestVariableKinds:
    def test_fixed(self):
        rule = parse_rule("t(X, Y) :- t(X, W), e(W, Y).")
        assert fixed_variables(rule, "t") == {Variable("X")}

    def test_shifting(self):
        rule = parse_rule("t(X, Y) :- t(Y, W), e(W, X).")
        assert Variable("Y") in shifting_variables(rule, "t")

    def test_no_shifting_in_tc(self):
        rule = parse_rule("t(X, Y) :- e(X, U), t(U, Y).")
        assert shifting_variables(rule, "t") == set()


class TestSeparability:
    def test_two_sided_tc_separable_and_reducible(self):
        program = parse_program(
            """
            t(X, Y) :- t(X, W), down(W, Y).
            t(X, Y) :- up(X, U), t(U, Y).
            t(X, Y) :- flat(X, Y).
            """
        )
        report = analyze_separability(program, "t")
        assert report.separable
        assert report.reducible
        # the two rules touch disjoint position groups {1} and {0}
        assert set(report.t_h_sets) == {frozenset({1}), frozenset({0})}

    def test_same_generation_not_separable(self):
        report = analyze_separability(same_generation_program(), "sg")
        assert not report.separable
        assert any("components" in reason for reason in report.reasons)

    def test_shifting_blocks(self):
        program = parse_program(
            "t(X, Y) :- t(Y, W), e(W, X).\nt(X, Y) :- e(X, Y)."
        )
        report = analyze_separability(program, "t")
        assert not report.separable
        assert any("shifting" in reason for reason in report.reasons)

    def test_nonlinear_blocks(self):
        program = parse_program(
            "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y)."
        )
        assert not is_separable(program, "t")

    def test_fixed_variable_in_th_not_reducible(self):
        # a(X) touches the fixed variable X's position: separable but
        # not reducible (the A-nonempty case of Section 6.2).
        program = parse_program(
            "t(X, Y) :- a(X, W), t(X, W2), b(W2, W, Y).\nt(X, Y) :- e(X, Y)."
        )
        report = analyze_separability(program, "t")
        if report.separable:
            assert not report.reducible

    def test_t_h_mismatch_blocks(self):
        # body position 1 touches d but head position 1 touches nothing
        program = parse_program(
            "t(X, Y) :- t(X, W), d(W).\nt(X, Y) :- e(X, Y)."
        )
        report = analyze_separability(program, "t")
        assert not report.separable

    def test_helpers(self):
        program = parse_program(
            "t(X, Y) :- t(X, W), down(W, Y).\nt(X, Y) :- flat(X, Y)."
        )
        assert is_separable(program, "t")
        assert is_reducible_separable(program, "t")
