"""Unit tests for relations and databases."""

import pytest

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_literal, parse_program
from repro.datalog.terms import Constant, Variable
from repro.engine.database import Database, Relation, load_program_facts

from tests.conftest import answer_values


class TestRelation:
    def test_add_and_contains(self):
        rel = Relation("e", 2)
        assert rel.add((Constant(1), Constant(2)))
        assert not rel.add((Constant(1), Constant(2)))
        assert (Constant(1), Constant(2)) in rel
        assert len(rel) == 1

    def test_arity_check(self):
        rel = Relation("e", 2)
        with pytest.raises(ValueError):
            rel.add((Constant(1),))

    def test_lookup_full_scan(self):
        rel = Relation("e", 1)
        rel.add((Constant(1),))
        assert set(rel.lookup((), ())) == {(Constant(1),)}

    def test_lookup_indexed(self):
        rel = Relation("e", 2)
        for i in range(10):
            rel.add((Constant(i % 3), Constant(i)))
        hits = rel.lookup((0,), (Constant(1),))
        assert all(t[0] == Constant(1) for t in hits)
        assert len(list(hits)) == len([i for i in range(10) if i % 3 == 1])

    def test_index_maintained_after_add(self):
        rel = Relation("e", 2)
        rel.add((Constant(1), Constant(2)))
        rel.lookup((0,), (Constant(1),))  # build index
        rel.add((Constant(1), Constant(3)))  # must update it
        assert len(rel.lookup((0,), (Constant(1),))) == 2

    def test_copy_independent(self):
        rel = Relation("e", 1)
        rel.add((Constant(1),))
        dup = rel.copy()
        dup.add((Constant(2),))
        assert len(rel) == 1 and len(dup) == 2

    def test_statistics_track_cardinality_and_distinct_keys(self):
        rel = Relation("e", 2)
        for i in range(12):
            rel.add((Constant(i % 3), Constant(i)))
        assert rel.statistics().cardinality == 12
        assert rel.distinct_count((0,)) is None  # no index: nothing known
        rel.ensure_index((0,))
        assert rel.distinct_count((0,)) == 3
        rel.add((Constant(99), Constant(99)))  # maintained on insert
        assert rel.distinct_count((0,)) == 4
        assert rel.statistics().distinct((0,)) == 4

    def test_copy_carries_statistics(self):
        """Statistics must survive copy() even for dropped cold indexes,
        so Database.copy()-based pipelines plan from warm estimates."""
        rel = Relation("e", 2)
        for i in range(10):
            rel.add((Constant(i % 5), Constant(i)))
        rel.ensure_index((0,))  # built but never reused: copy drops it
        rel.ensure_index((1,))
        rel.ensure_index((1,))  # reused: copy keeps it live
        dup = rel.copy()
        assert dup.statistics().cardinality == 10
        assert dup.distinct_count((0,)) == 5  # carried estimate
        assert dup.distinct_count((1,)) == 10  # live index
        # Carried estimates survive a second copy too.
        assert dup.copy().distinct_count((0,)) == 5

    def test_view_statistics(self):
        rel = Relation("e", 2)
        for i in range(8):
            rel.add((Constant(i % 2), Constant(i)))
        view = rel.view(2, 8)
        assert view.statistics().cardinality == 6
        assert view.distinct_count((0,)) is None
        view.ensure_index((0,))
        assert view.distinct_count((0,)) == 2


class TestDatabase:
    def test_add_fact_wraps_values(self):
        db = Database()
        db.add_fact("e", (1, "a"))
        assert db.has_fact("e", (1, "a"))

    def test_rejects_nonground(self):
        db = Database()
        with pytest.raises(ValueError):
            db.add_fact("e", (Variable("X"),))

    def test_from_dict(self):
        db = Database.from_dict({"e": [(1, 2), (2, 3)], "v": [(1,)]})
        assert db.total_facts() == 3

    def test_query_with_variables(self):
        db = Database.from_dict({"e": [(1, 2), (1, 3), (2, 3)]})
        answers = db.query(parse_literal("e(1, Y)"))
        assert answer_values(answers) == {(2,), (3,)}

    def test_query_ground_goal(self):
        db = Database.from_dict({"e": [(1, 2)]})
        assert db.query(parse_literal("e(1, 2)")) == {()}
        assert db.query(parse_literal("e(2, 1)")) == set()

    def test_query_repeated_variable(self):
        db = Database.from_dict({"e": [(1, 1), (1, 2)]})
        assert answer_values(db.query(parse_literal("e(X, X)"))) == {(1,)}

    def test_merge(self):
        a = Database.from_dict({"e": [(1, 2)]})
        b = Database.from_dict({"e": [(2, 3)], "v": [(9,)]})
        merged = a.merge(b)
        assert merged.total_facts() == 3
        assert a.total_facts() == 1  # inputs untouched

    def test_restrict(self):
        db = Database.from_dict({"e": [(1, 2)], "v": [(1,)]})
        only_e = db.restrict([("e", 2)])
        assert only_e.get("v", 1) is None

    def test_equality_ignores_empty_relations(self):
        a = Database.from_dict({"e": [(1, 2)]})
        b = Database.from_dict({"e": [(1, 2)]})
        b.relation("unused", 1)
        assert a == b

    def test_copy_independent(self):
        a = Database.from_dict({"e": [(1, 2)]})
        b = a.copy()
        b.add_fact("e", (3, 4))
        assert a.total_facts() == 1


class TestLoadProgramFacts:
    def test_loads_seed_facts(self):
        program = parse_program("m(5).\nt(X) :- m(X).")
        db = Database()
        assert load_program_facts(program, db) == 1
        assert db.has_fact("m", (5,))

    def test_skips_rules(self):
        program = parse_program("t(X) :- m(X).")
        db = Database()
        assert load_program_facts(program, db) == 0
