"""Unit and property tests for substitutions, matching, unification."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_literal, parse_term
from repro.datalog.terms import Compound, Constant, Variable, make_list
from repro.engine.unify import (
    Substitution,
    match,
    match_term,
    rename_apart,
    unify,
    unify_terms,
)


class TestMatch:
    def test_variable_binds(self):
        bindings = {}
        assert match_term(Variable("X"), Constant(1), bindings)
        assert bindings[Variable("X")] == Constant(1)

    def test_repeated_variable_consistent(self):
        lit = parse_literal("p(X, X)")
        assert match(lit, (Constant(1), Constant(1)), {}) is not None
        assert match(lit, (Constant(1), Constant(2)), {}) is None

    def test_constant_mismatch(self):
        assert not match_term(Constant(1), Constant(2), {})

    def test_compound_decomposition(self):
        pattern = parse_term("[H | T]")
        fact = make_list([Constant(1), Constant(2)])
        bindings = {}
        assert match_term(pattern, fact, bindings)
        assert bindings[Variable("H")] == Constant(1)
        assert bindings[Variable("T")] == make_list([Constant(2)])

    def test_input_bindings_not_mutated(self):
        lit = parse_literal("p(X)")
        original = {}
        out = match(lit, (Constant(1),), original)
        assert original == {} and out is not None

    def test_prebound_respected(self):
        lit = parse_literal("p(X)")
        pre = {Variable("X"): Constant(2)}
        assert match(lit, (Constant(1),), pre) is None
        assert match(lit, (Constant(2),), pre) is not None


class TestUnify:
    def test_symmetric_success(self):
        a = parse_literal("p(X, 1)")
        b = parse_literal("p(2, Y)")
        subst = unify(a, b)
        assert subst.apply_literal(a) == subst.apply_literal(b)

    def test_different_predicates(self):
        assert unify(parse_literal("p(X)"), parse_literal("q(X)")) is None

    def test_occurs_check(self):
        x = Variable("X")
        assert unify_terms(x, Compound("f", (x,))) is None

    def test_compound_unification(self):
        a = parse_term("f(X, g(Y))")
        b = parse_term("f(1, g(2))")
        subst = unify_terms(a, b, Substitution())
        assert subst.apply(a) == b

    def test_shared_variable_chains(self):
        subst = Substitution()
        assert unify_terms(Variable("X"), Variable("Y"), subst) is not None
        assert unify_terms(Variable("Y"), Constant(3), subst) is not None
        assert subst.apply(Variable("X")) == Constant(3)

    def test_unify_lists(self):
        a = parse_term("[H | T]")
        b = make_list([Constant(i) for i in range(3)])
        subst = unify_terms(a, b, Substitution())
        assert subst.apply(Variable("H")) == Constant(0)


class TestSubstitution:
    def test_apply_literal_identity_fastpath(self):
        lit = parse_literal("p(a, b)")
        assert Substitution().apply_literal(lit) is lit

    def test_apply_rule(self):
        from repro.datalog.parser import parse_rule

        rule = parse_rule("p(X) :- q(X).")
        subst = Substitution({Variable("X"): Constant(7)})
        applied = subst.apply_rule(rule)
        assert applied.head == parse_literal("p(7)")

    def test_copy_is_independent(self):
        subst = Substitution({Variable("X"): Constant(1)})
        dup = subst.copy()
        dup.bind(Variable("Y"), Constant(2))
        assert Variable("Y") not in subst


class TestRenameApart:
    def test_renames_all_variables(self):
        from repro.datalog.parser import parse_rule

        rule = parse_rule("p(X, Y) :- q(X, Z).")
        renamed = rename_apart(rule, "s")
        assert not set(rule.variables()) & set(renamed.variables())

    def test_preserves_structure(self):
        from repro.datalog.parser import parse_rule

        rule = parse_rule("p(X, X) :- q(X).")
        renamed = rename_apart(rule, "s")
        assert renamed.head.args[0] == renamed.head.args[1]
        assert renamed.head.args[0] == renamed.body[0].args[0]


# -- properties ---------------------------------------------------------

_ground = st.one_of(
    st.integers(-5, 5).map(Constant),
    st.sampled_from(["a", "b"]).map(Constant),
)
_terms = st.one_of(
    _ground,
    st.sampled_from(["X", "Y", "Z"]).map(Variable),
    st.builds(
        Compound,
        st.just("f"),
        st.tuples(
            st.one_of(_ground, st.sampled_from(["X", "Y"]).map(Variable))
        ),
    ),
)


@given(_terms, _terms)
def test_unify_mgu_is_unifier(a, b):
    """Whenever unification succeeds, applying the mgu equalizes terms."""
    subst = unify_terms(a, b, Substitution())
    if subst is not None:
        assert subst.apply(a) == subst.apply(b)


@given(_terms, _terms)
def test_unify_symmetric(a, b):
    """unify(a, b) succeeds iff unify(b, a) does."""
    assert (unify_terms(a, b, Substitution()) is None) == (
        unify_terms(b, a, Substitution()) is None
    )


@given(_terms)
def test_match_against_own_ground_instance(term):
    """Grounding a pattern then matching recovers consistent bindings."""
    grounding = Substitution(
        {v: Constant(f"g{v.name}") for v in term.variables()}
    )
    ground = grounding.apply(term)
    bindings = {}
    assert match_term(term, ground, bindings)
    for var, value in bindings.items():
        assert grounding.apply(var) == value
