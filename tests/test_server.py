"""Concurrent serving layer: snapshot isolation under a single writer.

The load-bearing property is *prefix consistency*: with one writer
applying batches and K reader threads answering queries, every answer
set a reader ever observes must equal the from-scratch oracle of some
prefix of the committed batch history — never a mid-batch state, and
never a batch that failed and rolled back.  ``TestPrefixConsistency``
enforces this against 200 randomized writer scripts (poison batches
included) with K=4 racing readers; the deterministic tests pin down
the individual guarantees (view immutability, abort invisibility,
journal compensation, the socket framing).
"""

import random
import socket
import threading

import pytest

from repro.datalog.parser import parse_program
from repro.engine.database import Database
from repro.engine.incremental import IncrementalSession
from repro.engine.journal import Journal, recover_session
from repro.engine.server import DatalogServer, SocketFront, handle_line
from repro.engine.stats import MaintenanceError

TC_TEXT = """
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, Z), t(Z, Y).
"""

BASE = {"e": [(1, 2), (2, 3)]}

#: A chained-edge batch that blows a ``max_iterations=10`` round
#: budget: applying it raises ``MaintenanceError`` and rolls back.
POISON = [("e", (100 + i, 101 + i)) for i in range(25)]


def make_server(base=BASE, **knobs):
    program = parse_program(TC_TEXT)
    session = IncrementalSession(program, Database.from_dict(base), **knobs)
    return DatalogServer(session)


def oracle(edb_facts):
    """From-scratch answers for the probe query at one prefix."""
    program = parse_program(TC_TEXT)
    session = IncrementalSession(program, Database.from_dict(edb_facts))
    return frozenset(session.query("t(X, Y)"))


# ----------------------------------------------------------------------
# The randomized concurrency harness (the tentpole property)
# ----------------------------------------------------------------------


class TestPrefixConsistency:
    """K reader threads racing a scripted writer never observe a state
    outside the committed-prefix history."""

    READERS = 4
    ITERATIONS = 200

    @staticmethod
    def _random_script(rng):
        """A writer script: list of (inserts, deletes, poisoned) batches.

        Facts live on 6 nodes so chains stay far below the round
        budget; poisoned batches append the deterministic blow-up.
        """
        stored = [tuple(f) for f in BASE["e"]]
        script = []
        for _ in range(rng.randrange(3, 6)):
            if rng.random() < 0.25:
                script.append((list(POISON), [], True))
                continue
            inserts, deletes = [], []
            # Delete before choosing inserts so no batch both inserts
            # and deletes the same fact (ordering would be ambiguous).
            if stored and rng.random() < 0.4:
                victim = stored.pop(rng.randrange(len(stored)))
                deletes.append(("e", victim))
            for _ in range(rng.randrange(1, 3)):
                fact = (rng.randrange(6), rng.randrange(6))
                if fact not in stored and ("e", fact) not in deletes:
                    inserts.append(("e", fact))
                    stored.append(fact)
            if inserts or deletes:
                script.append((inserts, deletes, False))
        return script

    @staticmethod
    def _prefix_oracles(script):
        """Answer sets for every committed prefix, indexed by version."""
        edb = [("e", tuple(f)) for f in BASE["e"]]
        oracles = [oracle({"e": [args for _, args in edb]})]
        for inserts, deletes, poisoned in script:
            if poisoned:
                continue
            edb = [f for f in edb if f not in deletes] + inserts
            oracles.append(oracle({"e": [args for _, args in edb]}))
        return oracles

    def _run_round(self, seed):
        rng = random.Random(seed)
        script = self._random_script(rng)
        oracles = self._prefix_oracles(script)
        server = make_server(max_iterations=10)
        done = threading.Event()
        observed = [[] for _ in range(self.READERS)]
        errors = []

        def reader(slot):
            # Half the readers use the materialized view, half the
            # goal-directed compiled path; both must be prefix-consistent.
            goal_directed = slot % 2 == 1
            try:
                while True:
                    view = server.view()
                    if goal_directed:
                        answers = frozenset(server.query_goal("t(X, Y)"))
                    else:
                        answers = frozenset(view.query("t(X, Y)"))
                    observed[slot].append((view.version, answers))
                    if done.is_set():
                        break
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(self.READERS)
        ]
        for thread in threads:
            thread.start()
        committed = aborted = 0
        for inserts, deletes, poisoned in script:
            if poisoned:
                with pytest.raises(MaintenanceError):
                    server.apply_batch(inserts=inserts)
                aborted += 1
            else:
                server.apply_batch(
                    inserts=inserts or None, deletes=deletes or None
                )
                committed += 1
        done.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "reader thread hung"
        assert not errors, errors

        valid = set(oracles)
        for slot, history in enumerate(observed):
            assert history, f"reader {slot} never completed a query"
            last_version = -1
            for version, answers in history:
                # Never a mid-batch or rolled-back state: every answer
                # set is the oracle of *some* committed prefix...
                assert answers in valid, (
                    f"seed {seed}: reader {slot} saw an answer set "
                    f"matching no committed prefix"
                )
                # ...and the materialized readers' pinned view pairs the
                # version with exactly that prefix's oracle.
                if slot % 2 == 0:
                    assert answers == oracles[version], (
                        f"seed {seed}: view version {version} answered "
                        f"a different prefix"
                    )
                assert version >= last_version, (
                    f"seed {seed}: reader {slot} saw versions go backwards"
                )
                last_version = version
        assert server.stats.version == committed
        assert server.stats.batches_committed == committed
        assert server.stats.batches_aborted == aborted
        assert frozenset(server.query("t(X, Y)")) == oracles[-1]

    def test_200_randomized_rounds(self):
        for seed in range(self.ITERATIONS):
            self._run_round(seed)


# ----------------------------------------------------------------------
# Deterministic guarantees
# ----------------------------------------------------------------------


class TestReadViews:
    def test_initial_view_answers_the_materialization(self):
        server = make_server()
        assert server.view().version == 0
        assert server.query("t(1, Y)") == {(2,), (3,)}
        assert server.holds("t(1, 3)")
        assert not server.holds("t(3, 1)")

    def test_old_views_stay_pinned_across_commits(self):
        server = make_server()
        before = server.view()
        old_answers = before.query("t(X, Y)")
        server.insert("e(3, 4).")
        after = server.view()
        assert after.version == before.version + 1
        # The old view is frozen: identical answers after the commit.
        assert before.query("t(X, Y)") == old_answers
        assert (3, 4) in after.query("t(X, Y)")
        assert (3, 4) not in before.query("t(X, Y)")

    def test_aborted_batches_are_never_published(self):
        server = make_server(max_iterations=10)
        before = server.view()
        with pytest.raises(MaintenanceError):
            server.apply_batch(inserts=POISON)
        assert server.view() is before  # same object: nothing published
        assert server.stats.batches_aborted == 1
        assert server.stats.version == 0
        assert server.query("t(X, Y)") == before.query("t(X, Y)")

    def test_query_goal_tracks_the_published_version(self):
        server = make_server()
        assert server.query_goal("t(1, Y)") == {(2,), (3,)}
        server.insert("e(3, 4).")
        # Same thread, same cached compiler: the new version must
        # invalidate the compiled entry and see the insert.
        assert server.query_goal("t(1, Y)") == {(2,), (3,), (4,)}
        server.delete("e(3, 4).")
        assert server.query_goal("t(1, Y)") == {(2,), (3,)}

    def test_snapshot_age_resets_on_publication(self):
        server = make_server()
        server.insert("e(3, 4).")
        assert 0 <= server.snapshot_age() < 60
        assert server.stats.queries_served == 0
        server.query("t(1, Y)")
        server.query_goal("t(1, Y)")
        assert server.stats.queries_served == 2

    def test_checkpoint_every_validation(self):
        session = IncrementalSession(
            parse_program(TC_TEXT), Database.from_dict(BASE)
        )
        with pytest.raises(ValueError, match="checkpoint_every"):
            DatalogServer(session, checkpoint_every=0)


class TestJournaledServer:
    def test_commits_and_aborts_are_compensated(self, tmp_path):
        path = tmp_path / "wal.rjn"
        program = parse_program(TC_TEXT)
        session = IncrementalSession(
            program, Database.from_dict(BASE), max_iterations=10
        )
        with DatalogServer(session, journal=Journal(path)) as server:
            server.insert("e(3, 4).")
            with pytest.raises(MaintenanceError):
                server.apply_batch(inserts=POISON)
            server.delete("e(1, 2).")
        recovered, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE), max_iterations=10
        )
        journal.close()
        assert replayed == 2  # the poisoned batch was compensated
        assert recovered.database == session.database
        assert recovered.edb == session.edb

    def test_checkpoint_every_counts_committed_batches_only(self, tmp_path):
        path = tmp_path / "wal.rjn"
        program = parse_program(TC_TEXT)
        session = IncrementalSession(
            program, Database.from_dict(BASE), max_iterations=10
        )
        server = DatalogServer(
            session, journal=Journal(path), checkpoint_every=2
        )
        with server:
            server.insert("e(3, 4).")
            with pytest.raises(MaintenanceError):
                server.apply_batch(inserts=POISON)
            assert server.stats.checkpoints == 0  # abort does not count
            server.insert("e(4, 5).")
            assert server.stats.checkpoints == 1


class TestLineProtocol:
    def test_grammar_round_trip(self):
        server = make_server()
        payload, status, quitting = handle_line(server, "? t(1, Y)")
        assert payload == ["2", "3"]
        assert status == "ok 2 answers"
        assert not quitting
        payload, status, _ = handle_line(server, "+ e(3, 4).")
        assert payload == []
        assert status.startswith("ok +")
        payload, status, _ = handle_line(server, "stats")
        assert any("batches=1 committed" in line for line in payload)
        payload, status, quitting = handle_line(server, "quit")
        assert status == "ok bye" and quitting

    def test_errors_report_without_mutating(self):
        server = make_server()
        _, status, _ = handle_line(server, "bogus")
        assert status.startswith("error: unknown command")
        _, status, _ = handle_line(server, "+ e(1,")
        assert status.startswith("error:")
        assert server.stats.version == 0

    def test_workers_validation(self):
        server = make_server()
        with pytest.raises(ValueError, match="workers"):
            SocketFront(server, workers=0)


class TestSocketFront:
    @staticmethod
    def _exchange(sock_file, sock, line):
        """Send one command; collect payload lines and the status."""
        sock.sendall((line + "\n").encode("utf-8"))
        payload = []
        while True:
            reply = sock_file.readline().rstrip("\n")
            if reply.startswith("= "):
                payload.append(reply[2:])
            else:
                return payload, reply

    def test_served_session_over_tcp(self):
        server = make_server()
        with SocketFront(server, workers=2) as front:
            with socket.create_connection(
                (front.host, front.port), timeout=10
            ) as sock, sock.makefile("r", encoding="utf-8") as reader:
                payload, status = self._exchange(reader, sock, "? t(1, Y)")
                assert payload == ["2", "3"]
                assert status == "ok 2 answers"
                payload, status = self._exchange(reader, sock, "+ e(3, 4).")
                assert status.startswith("ok +")
                payload, status = self._exchange(reader, sock, "? t(1, Y)")
                assert payload == ["2", "3", "4"]
                payload, status = self._exchange(reader, sock, "quit")
                assert status == "ok bye"

    def test_concurrent_clients_share_one_writer(self):
        server = make_server()
        with SocketFront(server, workers=4) as front:
            def client(k):
                with socket.create_connection(
                    (front.host, front.port), timeout=10
                ) as sock, sock.makefile("r", encoding="utf-8") as reader:
                    _, status = self._exchange(
                        reader, sock, f"+ e(1, {10 + k})."
                    )
                    assert status.startswith("ok +")
                    payload, status = self._exchange(reader, sock, "? t(1, Y)")
                    assert status.endswith("answers")

            threads = [
                threading.Thread(target=client, args=(k,)) for k in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
        # All four inserts committed, serialized by the writer lock.
        assert server.stats.batches_committed == 4
        answers = server.query("t(1, Y)")
        assert {(10,), (11,), (12,), (13,)} <= answers
