"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Set, Tuple

import pytest

from repro.datalog.literals import Literal
from repro.datalog.program import Program
from repro.engine.database import Database
from repro.engine.naive import naive_eval


def answer_values(answers: Set[Tuple]) -> Set[Tuple]:
    """Unwrap Constant values for readable assertions."""
    out = set()
    for row in answers:
        out.add(tuple(getattr(term, "value", term) for term in row))
    return out


def oracle_answers(program: Program, goal: Literal, edb: Database) -> Set[Tuple]:
    """Naive-evaluation ground truth for a query."""
    db, _ = naive_eval(program, edb)
    return db.query(goal)


@pytest.fixture
def tc_program():
    from repro.workloads.examples import three_rule_tc_program

    return three_rule_tc_program()


@pytest.fixture
def tc_goal():
    from repro.datalog.parser import parse_query

    return parse_query("t(0, Y)")
