"""Tests for optimize()'s options and result surface."""

import pytest

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb

from tests.conftest import oracle_answers


class TestOptions:
    def test_simplify_false(self):
        result = optimize(
            three_rule_tc_program(), parse_query("t(0, Y)"), simplify=False
        )
        assert result.factored is not None
        assert result.simplified is None and result.trace is None

    def test_no_uniform_equivalence(self):
        result = optimize(
            three_rule_tc_program(),
            parse_query("t(0, Y)"),
            use_uniform_equivalence=False,
        )
        # the redundant recursive m rule survives; answers still correct
        assert len(result.simplified.program) == 6
        edb = chain_edb(8)
        answers, _ = result.answers(edb)
        assert answers == oracle_answers(
            three_rule_tc_program(), parse_query("t(0, Y)"), edb
        )

    def test_try_reduction_false(self):
        from repro.workloads.examples import example_51_program

        result = optimize(
            example_51_program(), parse_query("p(5, 6, U)"), try_reduction=False
        )
        assert result.reduction is None
        assert result.factored is None  # unclassifiable without reduction

    def test_force_factor_marks_forced(self):
        from repro.workloads.examples import example_43_program

        result = optimize(
            example_43_program(), parse_query("p(5, Y)"), force_factor=True
        )
        assert result.factored is not None
        assert result.forced
        assert not result.factorable  # forced ≠ certified

    def test_force_factor_on_certified_is_not_forced(self):
        result = optimize(
            three_rule_tc_program(), parse_query("t(0, Y)"), force_factor=True
        )
        assert not result.forced
        assert result.factorable


class TestResultSurface:
    def test_stats_returned(self):
        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
        _, stats = result.answers(chain_edb(5))
        assert stats.facts > 0 and stats.seconds >= 0

    def test_evaluate_stage_names(self):
        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
        with pytest.raises(ValueError):
            result.evaluate_stage("nope", chain_edb(3))

    def test_original_stage_uses_original_goal(self):
        result = optimize(three_rule_tc_program(), parse_query("t(2, Y)"))
        answers, _ = result.evaluate_stage("original", chain_edb(6))
        assert answers == oracle_answers(
            three_rule_tc_program(), parse_query("t(2, Y)"), chain_edb(6)
        )

    def test_classification_attached(self):
        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
        assert result.classification is not None
        assert result.classification.is_rlc_stable()

    def test_magic_always_available(self):
        program = parse_program("a(X) :- e(X).")
        result = optimize(program, parse_query("a(X)"))
        assert result.magic is not None
        answers, _ = result.answers(chain_edb(3))
        # e is binary in chain_edb; a/1 over e/1 yields nothing — and
        # that must be a clean empty set, not an error.
        assert answers == set()

    def test_evaluator_kwargs_forwarded(self):
        from repro.engine.stats import NonTerminationError

        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
        with pytest.raises(NonTerminationError):
            result.evaluate_stage("magic", chain_edb(40), max_facts=5)
