"""Tests for Section 7.3: factoring inner predicates (Example 7.2)."""

import random

import pytest

from repro.core.nonunit import (
    decouples_subgoals,
    factor_inner,
    inner_factoring_valid_on,
)
from repro.datalog.parser import parse_program, parse_query
from repro.engine.database import Database

P1 = """
p(X, Y) :- b(X, U), p(U, Y).
p(X, Y) :- e(X, Y).
"""

P2 = """
p(X, Y) :- l(X), p(X, U), c(U, V), p(V, Y).
p(X, Y) :- d(X, Y).
"""

OUTER_UNARY = "q(Y) :- a(X, Z), p(Z, Y).\n"
OUTER_BINARY = "q(X, Y) :- a(X, Z), p(Z, Y).\n"


def example_72_edb(seed=0, n=8):
    rng = random.Random(seed)
    db = Database.from_dict(
        {
            "a": [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
            "b": [(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)],
            "e": [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
            "d": [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
            "l": [(i,) for i in range(n)],
            "c": [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
        }
    )
    return db


class TestExample72:
    def test_unary_query_with_p1_valid(self):
        """P ∪ P1 with q(Y): factoring p@bf preserves the answers."""
        program = parse_program(OUTER_UNARY + P1)
        goal = parse_query("q(Y)")
        for seed in range(5):
            assert inner_factoring_valid_on(
                program, goal, "p", example_72_edb(seed)
            ), seed

    def test_binary_query_with_p1_invalid(self):
        """q(X, Y) correlates subgoals with answers: factoring breaks."""
        program = parse_program(OUTER_BINARY + P1)
        goal = parse_query("q(X, Y)")
        broken = [
            seed
            for seed in range(8)
            if not inner_factoring_valid_on(program, goal, "p", example_72_edb(seed))
        ]
        assert broken, "some EDB must expose the correlation loss"

    def test_p2_invalid_even_for_unary_query(self):
        """The combined-rule P2 correlates internally (Example 7.2).

        With several seeds, an fp answer of one subgoal feeds another
        subgoal's combined rule, generating a spurious magic fact and a
        spurious answer.  The EDB is built to exhibit exactly that:
        seed 0 answers 1; seed 5 (the only l member) answers 2; the
        factored magic rule combines l(5), bp(5), fp(1), c(1, 7) into
        the spurious subgoal 7, whose exit answer 99 pollutes q.
        """
        program = parse_program(OUTER_UNARY + P2)
        goal = parse_query("q(Y)")
        edb = Database.from_dict(
            {
                "a": [(9, 0), (9, 5)],
                "l": [(5,)],
                "d": [(0, 1), (5, 2), (7, 99)],
                "c": [(1, 7)],
            }
        )
        candidate = factor_inner(program, goal, "p")
        magic_answers, _ = candidate.answers_magic(edb)
        factored_answers, _ = candidate.answers_factored(edb)
        assert magic_answers < factored_answers
        assert not inner_factoring_valid_on(program, goal, "p", edb)


class TestHeuristic:
    def test_unary_query_decouples(self):
        program = parse_program(OUTER_UNARY + P1)
        assert decouples_subgoals(program, parse_query("q(Y)"), "p")

    def test_binary_query_couples(self):
        program = parse_program(OUTER_BINARY + P1)
        assert not decouples_subgoals(program, parse_query("q(X, Y)"), "p")

    def test_direct_correlation_couples(self):
        # a(Z) binds Z before p (so p is p@bf) and Z reaches the head.
        program = parse_program("q(Z, Y) :- a0(Z), p(Z, Y).\n" + P1)
        assert not decouples_subgoals(program, parse_query("q(Z, Y)"), "p")


class TestFactorInner:
    def test_structure(self):
        program = parse_program(OUTER_UNARY + P1)
        candidate = factor_inner(program, parse_query("q(Y)"), "p")
        assert candidate.predicate == "p@bf"
        body_preds = {
            l.predicate for r in candidate.factored for l in r.body
        }
        assert "b_p@bf" in body_preds and "f_p@bf" in body_preds
        assert "p@bf" not in body_preds

    def test_multiple_adornments_rejected(self):
        program = parse_program(
            "q(Y) :- p(1, Y).\nq(Y) :- p(Y, 1).\n" + P1
        )
        with pytest.raises(ValueError):
            factor_inner(program, parse_query("q(Y)"), "p")

    def test_trivial_adornment_rejected(self):
        program = parse_program("q(X, Y) :- p(X, Y).\n" + P1)
        with pytest.raises(ValueError):
            factor_inner(program, parse_query("q(X, Y)"), "p")
