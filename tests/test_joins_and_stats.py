"""Unit tests for the join machinery, statistics, and bench harness."""

import pytest

from repro.bench.harness import Measurement, Series, bench_scale, render_table, speedup
from repro.datalog.parser import parse_literal, parse_rule
from repro.datalog.terms import Compound, Constant, Variable
from repro.engine.database import Database
from repro.engine.joins import (
    bound_positions,
    candidates,
    instantiate_head,
    join_rule,
    relation_from_tuples,
)
from repro.engine.stats import EvalStats


class TestBoundPositions:
    def test_constants_always_bound(self):
        lit = parse_literal("e(1, X)")
        positions, key = bound_positions(lit, {})
        assert positions == (0,)
        assert key == [Constant(1)]

    def test_bound_variables(self):
        lit = parse_literal("e(X, Y)")
        positions, key = bound_positions(lit, {Variable("X"): Constant(7)})
        assert positions == (0,)
        assert key == [Constant(7)]

    def test_compound_partially_bound(self):
        lit = parse_literal("p(f(X, Y))")
        positions, _ = bound_positions(lit, {Variable("X"): Constant(1)})
        assert positions == ()  # Y unbound -> the term is not ground
        positions, key = bound_positions(
            lit, {Variable("X"): Constant(1), Variable("Y"): Constant(2)}
        )
        assert positions == (0,)
        assert key[0] == Compound("f", (Constant(1), Constant(2)))


class TestJoinRule:
    def test_full_enumeration(self):
        db = Database.from_dict({"e": [(1, 2), (2, 3)], "f": [(2,), (3,)]})
        rule = parse_rule("out(X, Y) :- e(X, Y), f(Y).")
        results = []
        join_rule(db, rule, lambda b: results.append(instantiate_head(rule, b)))
        assert set(results) == {
            (Constant(1), Constant(2)),
            (Constant(2), Constant(3)),
        }

    def test_override_relation(self):
        db = Database.from_dict({"e": [(1, 2), (2, 3)]})
        rule = parse_rule("out(X, Y) :- e(X, Y).")
        delta = relation_from_tuples("e", 2, [(Constant(2), Constant(3))])
        results = []
        join_rule(
            db,
            rule,
            lambda b: results.append(instantiate_head(rule, b)),
            overrides={0: delta},
        )
        assert results == [(Constant(2), Constant(3))]

    def test_missing_relation_yields_nothing(self):
        db = Database()
        rule = parse_rule("out(X) :- nothing(X).")
        results = []
        join_rule(db, rule, lambda b: results.append(b))
        assert results == []

    def test_unsafe_head_raises(self):
        db = Database.from_dict({"e": [(1,)]})
        rule = parse_rule("out(X, Z) :- e(X).")
        with pytest.raises(ValueError):
            join_rule(
                db, rule, lambda b: instantiate_head(rule, b)
            )

    def test_zero_arity_literal(self):
        db = Database.from_dict({"go": [()]})
        rule = parse_rule("out(X) :- go, e(X).")
        db.add_fact("e", (5,))
        results = []
        join_rule(db, rule, lambda b: results.append(instantiate_head(rule, b)))
        assert results == [(Constant(5),)]


class TestEvalStats:
    def test_record_and_per_predicate(self):
        stats = EvalStats()
        stats.record_fact(("t", 2))
        stats.record_fact(("t", 2))
        stats.record_fact(("m", 1))
        assert stats.facts == 3
        assert stats.per_predicate[("t", 2)] == 2

    def test_merge(self):
        a = EvalStats(facts=2, inferences=5, iterations=1, seconds=0.5)
        a.per_predicate[("t", 2)] = 2
        b = EvalStats(facts=1, inferences=3, iterations=2, seconds=0.25)
        b.per_predicate[("t", 2)] = 1
        merged = a.merge(b)
        assert merged.facts == 3
        assert merged.inferences == 8
        assert merged.per_predicate[("t", 2)] == 3
        assert a.facts == 2  # inputs untouched

    def test_str(self):
        assert "facts=0" in str(EvalStats())


class TestHarness:
    def test_measurement_rows_align_with_header(self):
        m = Measurement(label="x", n=5, extra={"k": "v"})
        assert len(m.row()) == len(m.header())
        assert "k" in m.header()

    def test_series_render(self):
        series = Series("demo")
        series.add(Measurement(label="a", n=1, facts=10))
        series.note("a note")
        text = series.render()
        assert "demo" in text and "a note" in text and "10" in text

    def test_empty_series(self):
        assert "no measurements" in Series("empty").render()

    def test_render_table_alignment(self):
        table = render_table(["col", "n"], [["a", "1"], ["long-label", "22"]])
        lines = table.splitlines()
        assert len({len(line) for line in lines if line.strip()}) <= 2

    def test_speedup(self):
        base = Measurement(label="b", n=1, inferences=100)
        fast = Measurement(label="f", n=1, inferences=10)
        assert speedup(base, fast) == 10.0
        zero = Measurement(label="z", n=1, inferences=0)
        assert speedup(base, zero) == float("inf")

    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "junk")
        with pytest.warns(RuntimeWarning, match="REPRO_BENCH_SCALE='junk'"):
            assert bench_scale() == 1.0
