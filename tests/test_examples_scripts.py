"""Smoke tests: every example script runs and prints sensible output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExampleScripts:
    def test_quickstart(self):
        result = run_example("quickstart.py", "30")
        assert result.returncode == 0, result.stderr
        assert "Theorem 4.1" in result.stdout
        assert "m_t@bf(0)." in result.stdout

    def test_list_membership(self):
        result = run_example("list_membership.py", "12")
        assert result.returncode == 0, result.stderr
        assert "table entries" in result.stdout
        assert "Same answers" in result.stdout

    def test_flight_routes(self):
        result = run_example("flight_routes.py")
        assert result.returncode == 0, result.stderr
        assert "reachable from MSN" in result.stdout
        assert "factored" in result.stdout

    def test_bill_of_materials(self):
        result = run_example("bill_of_materials.py")
        assert result.returncode == 0, result.stderr
        assert "widget transitively uses" in result.stdout
        assert "magnet? yes" in result.stdout

    def test_derivation_trees(self):
        result = run_example("derivation_trees.py")
        assert result.returncode == 0, result.stderr
        assert "f_route@bf(hnl)" in result.stdout
        assert "[via" in result.stdout

    def test_program_inspector_builtin(self):
        result = run_example("program_inspector.py", "--example", "tc", "t(5, Y)")
        assert result.returncode == 0, result.stderr
        assert "FACTORABLE" in result.stdout

    def test_program_inspector_negative(self):
        result = run_example("program_inspector.py", "--example", "sg", "sg(1, Y)")
        assert result.returncode == 0, result.stderr
        assert "not factorable" in result.stdout

    def test_program_inspector_from_file(self, tmp_path):
        source = tmp_path / "prog.dl"
        source.write_text(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n"
        )
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "program_inspector.py"),
                str(source),
                "t(1, Y)",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "FACTORABLE" in result.stdout

    def test_usage_message(self):
        result = run_example("program_inspector.py")
        assert result.returncode == 1
        assert "Usage" in result.stdout
