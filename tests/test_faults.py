"""Fault-injection harness tests and the differential fault property.

Covers the `REPRO_FAULTS` grammar and its loud-failure validation, the
deterministic fire semantics of :class:`FaultPlan`, and the robustness
properties the harness exists to check:

* **Atomic rollback** — after any injected fault inside a maintenance
  batch, the session's visible state is bit-identical to a from-scratch
  evaluation of the *pre-batch* EDB (statistics and provenance
  included), and retrying without the fault reaches the *post-batch*
  oracle.  Never anything in between.
* **Backend fault tolerance** — a killed pool worker produces a retry
  (and eventually a graceful degrade to the serial backend) instead of
  a failed evaluation, with identical results and the event logged in
  ``EvalStats``.
* **Watchdog** — a delayed component plus a wall-clock budget turns a
  would-be hang into a clean rollback.
"""

import pytest

from repro.datalog.parser import parse_program
from repro.engine import faults
from repro.engine.backends import (
    BrokenExecutor,
    ProcessBackend,
    SerialBackend,
    resolve_retries,
)
from repro.engine.database import Database
from repro.engine.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    parse_faults,
    resolve_faults,
)
from repro.engine.incremental import IncrementalSession
from repro.engine.provenance import provenance_eval
from repro.engine.scheduler import TIMEOUT_ENV, resolve_timeout
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import ComponentTimeout, MaintenanceError
from repro.workloads.synthetic import wide_dag_edb, wide_dag_program

TC_TEXT = """
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, Z), t(Z, Y).
"""


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends with no installed fault plan."""
    faults.clear()
    yield
    faults.clear()


def tc_session(**kwargs) -> IncrementalSession:
    program = parse_program(TC_TEXT)
    edb = Database.from_dict({"e": [(1, 2), (2, 3), (3, 4)]})
    return IncrementalSession(program, edb, **kwargs)


def visible_state(session):
    """Everything a batch must leave untouched on failure."""
    relations = {
        sig: frozenset(rel.tuples)
        for sig, rel in session.database.relations.items()
        if rel.tuples
    }
    edb = {
        sig: frozenset(rel.tuples)
        for sig, rel in session.edb.relations.items()
        if rel.tuples
    }
    derivs = (
        dict(session._derivations) if session._derivations is not None else None
    )
    counters = (session.stats.facts, session.stats.inferences)
    return relations, edb, derivs, counters


class TestParseFaults:
    def test_single_event(self):
        plan = parse_faults("component:raise:2")
        assert plan.events == (faults.FaultEvent("component", "raise", 2),)

    def test_multiple_events_and_delay(self):
        plan = parse_faults("worker:kill:1, journal:torn:3, component:delay:2:0.5")
        assert len(plan.events) == 3
        assert plan.events[2].delay == 0.5

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "garbage",
            "bogus:raise:1",            # unknown site
            "component:explode:1",      # unknown kind
            "component:raise:zero",     # non-integer position
            "component:raise:0",        # position < 1
            "component:torn:1",         # torn outside the journal site
            "component:delay:1",        # delay without seconds
            "component:delay:1:-1",     # non-positive delay
            "component:raise:1:0.5",    # fourth field on a non-delay
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError, match="site:kind:nth"):
            parse_faults(spec)

    def test_error_lists_accepted_sites_and_kinds(self):
        with pytest.raises(ValueError) as exc_info:
            parse_faults("nope:raise:1")
        message = str(exc_info.value)
        for name in faults.SITES + faults.KINDS:
            assert name in message

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve_faults() is None
        monkeypatch.setenv(FAULTS_ENV, "  ")
        assert resolve_faults() is None
        monkeypatch.setenv(FAULTS_ENV, "component:raise:1")
        plan = resolve_faults()
        assert plan is not None and plan.events[0].site == "component"

    def test_bad_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "junk")
        with pytest.raises(ValueError, match=FAULTS_ENV):
            resolve_faults()


class TestFirePlan:
    def test_fires_at_exact_hit_only(self):
        plan = parse_faults("component:raise:3")
        plan.fire("component")
        plan.fire("component")
        plan.fire("worker")  # separate counter
        with pytest.raises(FaultInjected, match="boundary #3"):
            plan.fire("component")
        plan.fire("component")  # hit 4: past the event, quiet again

    def test_reset_restarts_counters(self):
        plan = parse_faults("component:raise:1")
        with pytest.raises(FaultInjected):
            plan.fire("component")
        plan.fire("component")
        plan.reset()
        with pytest.raises(FaultInjected):
            plan.fire("component")

    def test_torn_returns_a_cut_inside_the_record(self):
        plan = parse_faults("journal:torn:1")
        cut = plan.fire("journal", torn_length=100)
        assert 1 <= cut < 100

    def test_module_fire_is_noop_without_plan(self):
        faults.install(None)
        assert faults.fire("component") is None

    def test_install_resets_counters(self):
        plan = parse_faults("component:raise:1")
        with pytest.raises(FaultInjected):
            plan.fire("component")
        faults.install(plan)
        with pytest.raises(FaultInjected):
            faults.fire("component")


class TestKnobValidation:
    """Satellite: new knobs fail as loudly as REPRO_BACKEND."""

    @pytest.mark.parametrize("bad", ["abc", "0", "-1", "nan"])
    def test_timeout_rejects_bad_values(self, bad):
        with pytest.raises(ValueError, match="positive number of seconds"):
            resolve_timeout(bad)

    def test_timeout_env(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        assert resolve_timeout() == 2.5
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match=TIMEOUT_ENV):
            resolve_timeout()
        monkeypatch.delenv(TIMEOUT_ENV)
        assert resolve_timeout() is None

    @pytest.mark.parametrize("bad", ["x", "-1", "1.5"])
    def test_retries_rejects_bad_values(self, bad):
        with pytest.raises(ValueError, match="non-negative integer"):
            resolve_retries(bad)

    def test_retries_env_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert resolve_retries() == 2
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert resolve_retries() == 0
        monkeypatch.setenv("REPRO_RETRIES", "many")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            resolve_retries()


class TestDifferentialFaultProperty:
    """Post-fault state == pre-batch oracle; retry == post-batch oracle."""

    @pytest.mark.parametrize("provenance", [False, True])
    @pytest.mark.parametrize("nth", [1, 2])
    def test_component_raise_rolls_back_cleanly(self, provenance, nth):
        session = tc_session(record_provenance=provenance)
        before = visible_state(session)
        pre_oracle, _ = seminaive_eval(session.program, session.edb)
        assert session.database == pre_oracle

        faults.install(parse_faults(f"component:raise:{nth}"))
        with pytest.raises(MaintenanceError) as exc_info:
            session.apply_batch(
                inserts=[("e", (4, 5)), ("e", (5, 6))],
                deletes=[("e", (1, 2))],
            )
        assert isinstance(exc_info.value.__cause__, FaultInjected)
        faults.install(None)

        assert visible_state(session) == before
        assert session.database == pre_oracle  # pre-batch oracle holds

        # Retrying without the fault lands exactly on the post-batch oracle.
        session.apply_batch(
            inserts=[("e", (4, 5)), ("e", (5, 6))], deletes=[("e", (1, 2))]
        )
        post_edb = Database.from_dict(
            {"e": [(2, 3), (3, 4), (4, 5), (5, 6)]}
        )
        if provenance:
            post = provenance_eval(session.program, post_edb)
            assert session.database == post.database
            assert session._derivations == post.derivations
        else:
            post_oracle, _ = seminaive_eval(session.program, post_edb)
            assert session.database == post_oracle

    @pytest.mark.parametrize("provenance", [False, True])
    def test_failed_batch_leaves_session_statistics_untouched(self, provenance):
        session = tc_session(record_provenance=provenance)
        counters = (session.stats.facts, session.stats.inferences)
        faults.install(parse_faults("component:raise:1"))
        with pytest.raises(MaintenanceError):
            session.insert([("e", (4, 5))])
        assert (session.stats.facts, session.stats.inferences) == counters

    def test_timeout_turns_delay_into_clean_rollback(self):
        session = tc_session(max_seconds=0.02)
        before = visible_state(session)
        faults.install(parse_faults("component:delay:1:0.1"))
        with pytest.raises(MaintenanceError) as exc_info:
            session.insert([("e", (4, 5))])
        assert isinstance(exc_info.value.__cause__, ComponentTimeout)
        assert exc_info.value.phase == "insert"
        assert visible_state(session) == before

    def test_rollback_drops_relations_created_by_the_batch(self):
        program = parse_program("p(X) :- q(X).")
        session = IncrementalSession(program, Database())
        faults.install(parse_faults("component:raise:1"))
        with pytest.raises(MaintenanceError):
            session.insert([("q", (1,))])
        faults.install(None)
        assert session.database.facts("p") == set()
        assert session.database.facts("q") == set()
        assert session.edb.facts("q") == set()


class _FlakyOnce(ProcessBackend):
    """Fails the first batch submission with a broken pool, then recovers."""

    def __init__(self):
        super().__init__(retries=2, backoff=0.0)
        self.failures = 1

    def _run_batch_once(self, scheduler, batch, db, stats):
        if self.failures:
            self.failures -= 1
            raise BrokenExecutor("simulated worker loss")
        SerialBackend().run_batch(scheduler, batch, db, stats)


class _AlwaysBroken(ProcessBackend):
    def __init__(self, retries):
        super().__init__(retries=retries, backoff=0.0)
        self.attempts = 0

    def _run_batch_once(self, scheduler, batch, db, stats):
        self.attempts += 1
        raise BrokenExecutor("simulated worker loss")


class TestBackendFaultTolerance:
    def test_retry_recovers_from_one_worker_loss(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        base_db, base = seminaive_eval(program, edb, jobs=1)
        backend = _FlakyOnce()
        db, stats = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db == base_db
        assert (stats.facts, stats.inferences) == (base.facts, base.inferences)
        assert stats.backend_retries == 1
        assert stats.backend_fallbacks == 0

    def test_exhausted_retries_degrade_to_serial(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        base_db, base = seminaive_eval(program, edb, jobs=1)
        backend = _AlwaysBroken(retries=2)
        db, stats = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db == base_db
        assert (stats.facts, stats.inferences) == (base.facts, base.inferences)
        assert backend.attempts >= 3  # initial + 2 retries per batch
        assert stats.backend_retries >= 2
        assert stats.backend_fallbacks >= 1

    def test_zero_retries_degrades_immediately(self):
        program, edb = wide_dag_program(2), wide_dag_edb(2, 6)
        base_db, _ = seminaive_eval(program, edb, jobs=1)
        backend = _AlwaysBroken(retries=0)
        db, stats = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db == base_db
        assert stats.backend_retries == 0
        assert stats.backend_fallbacks >= 1

    def test_injected_worker_kill_degrades_to_serial(self, monkeypatch):
        """A real SIGKILL'd pool worker: retries re-kill (fresh worker
        processes restart their fault counters), so the run must fall
        back to the serial backend in the parent — which never fires
        the worker-only site — and still produce the exact fixpoint."""
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        base_db, base = seminaive_eval(program, edb, jobs=1)
        monkeypatch.setenv(FAULTS_ENV, "worker:kill:1")
        faults.clear()  # re-arm the env lookup in this (parent) process
        backend = ProcessBackend(retries=1, backoff=0.0)
        db, stats = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db == base_db
        assert (stats.facts, stats.inferences) == (base.facts, base.inferences)
        assert stats.backend_fallbacks >= 1

    def test_real_errors_are_not_retried(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        backend = ProcessBackend(retries=2, backoff=0.0)
        from repro.engine.stats import NonTerminationError

        with pytest.raises(NonTerminationError):
            seminaive_eval(
                program, edb, max_facts=10, jobs=2, backend=backend
            )
