"""Tests for the factoring transformation (Proposition 3.1)."""

import pytest

from repro.analysis.adornment import adorn
from repro.core.factoring import (
    bound_name,
    factor_magic,
    factor_predicate,
    free_name,
)
from repro.datalog.parser import parse_program, parse_query
from repro.engine.seminaive import seminaive_eval
from repro.transforms.magic import magic_transform
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb

from tests.conftest import oracle_answers


class TestFactorPredicate:
    def test_replaces_head_with_two_rules(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        factored = factor_predicate(program, "t", 2, (0,), (1,))
        heads = [r.head.predicate for r in factored.program]
        assert heads == ["t:1", "t:2"]

    def test_replaces_body_literal_with_pair(self):
        program = parse_program("q(X, Y) :- t(X, Y), g(Y).")
        factored = factor_predicate(program, "t", 2, (0,), (1,))
        body = factored.program.rules[0].body
        assert [l.predicate for l in body] == ["t:1", "t:2", "g"]

    def test_projection_argument_selection(self):
        program = parse_program("q(A) :- t(A, B, C).")
        factored = factor_predicate(program, "t", 3, (0, 2), (1,))
        body = factored.program.rules[0].body
        assert [str(a) for a in body[0].args] == ["A", "C"]
        assert [str(a) for a in body[1].args] == ["B"]

    def test_rejects_trivial(self):
        program = parse_program("q(A) :- t(A, B).")
        with pytest.raises(ValueError):
            factor_predicate(program, "t", 2, (0, 1), ())

    def test_rejects_overlap(self):
        program = parse_program("q(A) :- t(A, B).")
        with pytest.raises(ValueError):
            factor_predicate(program, "t", 2, (0, 1), (1,))

    def test_rejects_gap(self):
        program = parse_program("q(A) :- t(A, B, C).")
        with pytest.raises(ValueError):
            factor_predicate(program, "t", 3, (0,), (1,))

    def test_other_arity_untouched(self):
        program = parse_program("q(A) :- t(A), t(A, B).")
        factored = factor_predicate(program, "t", 2, (0,), (1,))
        preds = [l.predicate for l in factored.program.rules[0].body]
        assert preds == ["t", "t:1", "t:2"]


class TestFactorMagic:
    def test_figure_2_shape(self):
        """Factoring the Fig. 1 Magic program produces Fig. 2's shape."""
        magic = magic_transform(three_rule_tc_program(), parse_query("t(5, Y)"))
        factored = factor_magic(magic)
        bt, ft = bound_name("t@bf"), free_name("t@bf")
        # Every original t@bf rule split in two.
        assert len(factored.program.rules_for(bt)) == 4
        assert len(factored.program.rules_for(ft)) == 4
        # Query rule rewritten to bp(5), fp(Y).
        query_rule = factored.program.rules_for("query")[0]
        assert [l.predicate for l in query_rule.body] == [bt, ft]
        assert factored.seed_args is not None

    def test_factored_answers_match_magic(self, tc_program):
        goal = parse_query("t(0, Y)")
        magic = magic_transform(tc_program, goal)
        factored = factor_magic(magic)
        edb = chain_edb(12)
        magic_db, _ = seminaive_eval(magic.program, edb)
        factored_db, _ = seminaive_eval(factored.program, edb)
        assert magic_db.query(magic.query_head) == factored_db.query(
            magic.query_head
        )
        assert factored_db.query(magic.query_head) == oracle_answers(
            tc_program, goal, edb
        )

    def test_arity_reduced(self, tc_program):
        goal = parse_query("t(0, Y)")
        factored = factor_magic(magic_transform(tc_program, goal))
        bt, ft = bound_name("t@bf"), free_name("t@bf")
        for rule in factored.program:
            for lit in (rule.head, *rule.body):
                if lit.predicate in (bt, ft):
                    assert lit.arity == 1

    def test_requires_adorned_goal(self):
        magic = magic_transform(
            parse_program("t(X, Y) :- e(X, Y)."), parse_query("t(1, Y)")
        )
        object.__setattr__  # keep lint quiet; construct a broken goal:
        from dataclasses import replace
        from repro.datalog.parser import parse_literal

        broken = replace(magic, goal=parse_literal("t(1, Y)"))
        with pytest.raises(ValueError):
            factor_magic(broken)
