"""Tests for conjunctive-query containment (the Chandra-Merlin core)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.conjunctive import (
    ConjunctiveQuery,
    cq_contained_in,
    cq_equivalent,
    evaluate_cq,
    find_homomorphism,
    instance_contained_in,
    normalize_equalities,
)
from repro.datalog.literals import Literal
from repro.datalog.parser import parse_literal
from repro.datalog.terms import Constant, Variable
from repro.engine.database import Database


def cq(head_vars, *atoms):
    return ConjunctiveQuery(
        tuple(Variable(v) for v in head_vars),
        tuple(parse_literal(a) for a in atoms),
    )


class TestHomomorphism:
    def test_identity(self):
        q = cq(["X"], "e(X, Y)")
        assert find_homomorphism(q, q) is not None

    def test_into_more_specific(self):
        general = cq(["X"], "e(X, Y)")
        specific = cq(["X"], "e(X, Y)", "e(Y, Z)")
        # general maps into specific (specific ⊑ general)
        assert find_homomorphism(general, specific) is not None
        # but not vice versa: specific needs a 2-path ... via folding!
        # e(X,Y), e(Y,Z) maps into e(X,Y) only if Y can fold — it cannot,
        # since h(X) must be X and e(h(Y), h(Z)) must be an atom of the
        # target; h(Y)=Y forces e(Y, h(Z)) which is absent.
        assert find_homomorphism(specific, general) is None

    def test_folding_homomorphism(self):
        # Self-loop target absorbs a path source.
        loop = cq(["X"], "e(X, X)")
        path = cq(["X"], "e(X, Y)")
        # path maps into loop: Y -> X
        assert find_homomorphism(path, loop) is not None

    def test_constants_must_match(self):
        q1 = cq(["X"], "e(X, 5)")
        q2 = cq(["X"], "e(X, 6)")
        assert find_homomorphism(q1, q2) is None

    def test_arity_mismatch(self):
        assert find_homomorphism(cq(["X"], "a(X)"), cq(["X", "Y"], "a(X)")) is None


class TestContainment:
    def test_specific_in_general(self):
        general = cq(["X"], "e(X, Y)")
        specific = cq(["X"], "e(X, Y)", "e(Y, Z)")
        assert cq_contained_in(specific, general)
        assert not cq_contained_in(general, specific)

    def test_trivial_contains_everything(self):
        true_q = cq(["X"])  # empty body
        anything = cq(["X"], "r1(X)")
        assert cq_contained_in(anything, true_q)
        assert not cq_contained_in(true_q, anything)

    def test_different_predicates_incomparable(self):
        a = cq(["X"], "r1(X)")
        b = cq(["X"], "r2(X)")
        assert not cq_contained_in(a, b)
        assert not cq_contained_in(b, a)

    def test_equivalence_with_redundant_atom(self):
        a = cq(["X"], "e(X, Y)")
        b = cq(["X"], "e(X, Y)", "e(X, Z)")
        assert cq_equivalent(a, b)

    def test_equal_normalization(self):
        with_eq = cq(["X"], "equal(X, Y)", "r(Y)")
        plain = cq(["X"], "r(X)")
        assert cq_equivalent(with_eq, plain)

    def test_unsatisfiable_equal(self):
        bad = ConjunctiveQuery(
            (Variable("X"),),
            (Literal("equal", (Constant(1), Constant(2))), parse_literal("r(X)")),
        )
        anything = cq(["X"], "r(X)")
        assert cq_contained_in(bad, anything)
        assert not cq_contained_in(anything, bad)

    def test_normalize_substitutes_constants(self):
        q = ConjunctiveQuery(
            (Variable("X"),),
            (Literal("equal", (Variable("X"), Constant(5))), parse_literal("r(X)")),
        )
        normalized = normalize_equalities(q)
        assert normalized.head_terms == (Constant(5),)


class TestInstanceMode:
    def test_evaluate_cq(self):
        db = Database.from_dict({"e": [(1, 2), (2, 3)]})
        q = cq(["X"], "e(X, Y)", "e(Y, Z)")
        values = {tuple(t.value for t in row) for row in evaluate_cq(q, db)}
        assert values == {(1,)}

    def test_instance_containment_holds(self):
        db = Database.from_dict({"e": [(1, 2)], "r": [(2,)]})
        exit_targets = cq(["Y"], "e(X, Y)")
        r_filter = cq(["Y"], "r(Y)")
        assert instance_contained_in(exit_targets, r_filter, db)

    def test_instance_containment_fails(self):
        db = Database.from_dict({"e": [(1, 2)], "r": [(9,)]})
        exit_targets = cq(["Y"], "e(X, Y)")
        r_filter = cq(["Y"], "r(Y)")
        assert not instance_contained_in(exit_targets, r_filter, db)

    def test_trivial_target(self):
        db = Database()
        assert instance_contained_in(cq(["Y"], "e(X, Y)"), cq(["Y"]), db)
        assert not instance_contained_in(cq(["Y"]), cq(["Y"], "e(X, Y)"), db)


# -- soundness property: syntactic containment implies instance containment


def _random_cq(rng, preds, num_atoms):
    variables = ["X", "Y", "Z", "W"]
    head = (Variable("X"),)
    atoms = []
    for _ in range(num_atoms):
        pred = rng.choice(preds)
        atoms.append(
            Literal(
                pred,
                (Variable(rng.choice(variables)), Variable(rng.choice(variables))),
            )
        )
    return ConjunctiveQuery(head, tuple(atoms))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_containment_sound_on_random_instances(seed):
    rng = random.Random(seed)
    q1 = _random_cq(rng, ["e", "f"], rng.randint(1, 3))
    q2 = _random_cq(rng, ["e", "f"], rng.randint(1, 3))
    db = Database.from_dict(
        {
            "e": [(rng.randrange(4), rng.randrange(4)) for _ in range(6)],
            "f": [(rng.randrange(4), rng.randrange(4)) for _ in range(6)],
        }
    )
    if cq_contained_in(q1, q2):
        assert evaluate_cq(q1, db) <= evaluate_cq(q2, db)
