"""Tests for left-/right-/combined-linear rule classification."""

import pytest

from repro.analysis.adornment import Adornment, adorn
from repro.analysis.classify import (
    RuleClass,
    classify_program,
    classify_rule,
)
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.workloads.examples import (
    example_43_program,
    example_44_program,
    example_45_program,
    same_generation_program,
    three_rule_tc_program,
)
from repro.workloads.lists import pmem_program, pmem_query


def classify_tc_rule(text, adornment="bf", predicate="t@bf"):
    rule = parse_rule(text)
    return classify_rule(rule, predicate, Adornment(adornment))


class TestClassifyRule:
    def test_exit(self):
        rc = classify_tc_rule("t@bf(X, Y) :- e(X, Y).")
        assert rc.rule_class is RuleClass.EXIT
        assert rc.bound_exit.head_terms[0].name == "X"
        assert rc.free_exit.head_terms[0].name == "Y"

    def test_left_linear(self):
        rc = classify_tc_rule("t@bf(X, Y) :- t@bf(X, W), e(W, Y).")
        assert rc.rule_class is RuleClass.LEFT_LINEAR
        assert rc.bound.is_trivial()  # empty left conjunction
        assert len(rc.free_last.body) == 1

    def test_right_linear(self):
        rc = classify_tc_rule("t@bf(X, Y) :- e(X, W), t@bf(W, Y).")
        assert rc.rule_class is RuleClass.RIGHT_LINEAR
        assert len(rc.bound_first.body) == 1
        assert rc.free.is_trivial()

    def test_combined_nonlinear(self):
        rc = classify_tc_rule("t@bf(X, Y) :- t@bf(X, W), t@bf(W, Y).")
        assert rc.rule_class is RuleClass.COMBINED
        assert len(rc.left_occurrences) == 1
        assert rc.right_occurrence is not None

    def test_combined_with_conjunctions(self):
        rc = classify_tc_rule(
            "p@bf(X, Y) :- l1(X), p@bf(X, U), c1(U, V), p@bf(V, Y), r1(Y).",
            predicate="p@bf",
        )
        assert rc.rule_class is RuleClass.COMBINED
        assert len(rc.bound.body) == 1
        assert len(rc.middle.body) == 1
        assert len(rc.free.body) == 1

    def test_shifting_unclassified(self):
        rc = classify_tc_rule("sg@bf(X, Y) :- up(X, U), sg@bf(U, V), down(V, Y).",
                              predicate="sg@bf")
        assert rc.rule_class is RuleClass.UNCLASSIFIED

    def test_tautology_unclassified(self):
        rc = classify_tc_rule("t@bf(X, Y) :- t@bf(X, Y), e(X, Y).")
        assert rc.rule_class is RuleClass.UNCLASSIFIED

    def test_left_and_last_sharing_fails(self):
        # d(W, X, Z) connects the bound X to the free side: not
        # left-linear as written (Example 5.2's pseudo-left-linear).
        rc = classify_tc_rule(
            "p@bbf(X, Y, Z) :- p@bbf(X, Y, W), d(W, X, Z).",
            adornment="bbf",
            predicate="p@bbf",
        )
        assert rc.rule_class is RuleClass.UNCLASSIFIED

    def test_multi_left_linear(self):
        rc = classify_tc_rule(
            "t@bf(X, Y) :- t@bf(X, U), t@bf(X, V), last(U, V, Y)."
        )
        assert rc.rule_class is RuleClass.LEFT_LINEAR
        assert len(rc.left_occurrences) == 2

    def test_example_41_rule_right_linear(self):
        """Example 4.1's rule fits directly via connectivity grouping."""
        rc = classify_tc_rule(
            "t@bbf(X, Y, Z) :- e(Y, W), t@bbf(X, W, Z).",
            adornment="bbf",
            predicate="t@bbf",
        )
        assert rc.rule_class is RuleClass.RIGHT_LINEAR


class TestClassifyProgram:
    def test_three_rule_tc(self):
        adorned = adorn(three_rule_tc_program(), parse_query("t(5, Y)"))
        classification = classify_program(adorned.program, "t@bf", Adornment("bf"))
        assert classification.ok
        assert classification.is_rlc_stable()
        classes = [rc.rule_class for rc in classification.rules]
        assert classes == [
            RuleClass.COMBINED,
            RuleClass.RIGHT_LINEAR,
            RuleClass.LEFT_LINEAR,
            RuleClass.EXIT,
        ]

    def test_pmem(self):
        adorned = adorn(pmem_program(), pmem_query(3))
        classification = classify_program(
            adorned.program, "pmem@fb", Adornment("fb")
        )
        assert classification.ok
        classes = {rc.rule_class for rc in classification.rules}
        assert RuleClass.RIGHT_LINEAR in classes
        assert RuleClass.EXIT in classes

    def test_example_programs(self):
        for program, expected in [
            (example_43_program(), True),
            (example_44_program(), True),
            (example_45_program(), True),
            (same_generation_program(), False),
        ]:
            goal = parse_query(f"{program.rules[0].head.predicate}(5, Y)")
            adorned = adorn(program, goal)
            classification = classify_program(
                adorned.program, adorned.goal.predicate, Adornment("bf")
            )
            assert classification.ok is expected

    def test_missing_predicate(self):
        adorned = adorn(three_rule_tc_program(), parse_query("t(5, Y)"))
        result = classify_program(adorned.program, "zzz@bf", Adornment("bf"))
        assert not result.ok

    def test_exit_rule_count_matters(self):
        program = parse_program(
            """
            t@bf(X, Y) :- t@bf(X, W), e(W, Y).
            t@bf(X, Y) :- e(X, Y).
            t@bf(X, Y) :- e2(X, Y).
            """
        )
        classification = classify_program(program, "t@bf", Adornment("bf"))
        assert classification.ok  # each rule classifies
        assert not classification.is_rlc_stable()  # but two exit rules

    def test_permutation_search(self):
        """A program needing a consistent bound-position swap."""
        program = parse_program(
            """
            p@bbf(X, Y, Z) :- a(Y, X, V, W), p@bbf(V, W, Z).
            p@bbf(X, Y, Z) :- e(X, Y, Z).
            """
        )
        classification = classify_program(program, "p@bbf", Adornment("bbf"))
        assert classification.ok
