"""Tests for intra-component hash-partitioned delta execution.

Covers the partitioning satellite checklist: the disjoint-cover
property of :func:`~repro.engine.partition.split_indices` (every delta
row lands in exactly one partition, equal keys co-locate), safe
fallback on keyless / constant-bound / tiny-delta plans, the
``partitions=`` / ``--partitions`` / ``REPRO_PARTITIONS`` validation
mirroring the backend knobs, process-group failure degradation,
thread-backend grouped shipping of small same-depth components, the
``partition_rounds`` / ``partition_skew`` counters, and the
``repro run --stats`` report.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.datalog.parser import parse_program
from repro.engine.database import Database
from repro.engine.partition import (
    PARTITIONS_ENV,
    ProcessPartitionExecutor,
    SerialPartitionExecutor,
    ThreadPartitionExecutor,
    make_partition_executor,
    resolve_partitions,
    split_indices,
)
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats
from repro.workloads.synthetic import (
    coarse_components_edb,
    coarse_components_program,
)


class TestResolvePartitions:
    def test_default_is_unpartitioned(self, monkeypatch):
        monkeypatch.delenv(PARTITIONS_ENV, raising=False)
        assert resolve_partitions() == 1

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(PARTITIONS_ENV, "8")
        assert resolve_partitions(2) == 2

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(PARTITIONS_ENV, " 3 ")
        assert resolve_partitions() == 3

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(PARTITIONS_ENV, "many")
        with pytest.raises(ValueError, match=PARTITIONS_ENV):
            resolve_partitions()

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_nonpositive_raises(self, bad):
        with pytest.raises(ValueError, match="partitions"):
            resolve_partitions(bad)

    def test_evaluator_validates(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        with pytest.raises(ValueError, match="partitions"):
            seminaive_eval(program, Database(), partitions=0)

    def test_evaluator_validates_env(self, monkeypatch):
        monkeypatch.setenv(PARTITIONS_ENV, "junk")
        program = parse_program("t(X, Y) :- e(X, Y).")
        with pytest.raises(ValueError, match=PARTITIONS_ENV):
            seminaive_eval(program, Database())


class TestSplitIndices:
    """Every delta row lands in exactly one partition."""

    @settings(max_examples=200, deadline=None)
    @given(
        items=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40
        ),
        nparts=st.integers(1, 6),
        cols=st.sampled_from([None, (0,), (1,), (0, 1)]),
    )
    def test_disjoint_exact_cover(self, items, nparts, cols):
        buckets = split_indices(items, cols, nparts)
        assert len(buckets) == nparts
        flat = [i for bucket in buckets for i in bucket]
        assert sorted(flat) == list(range(len(items)))
        for bucket in buckets:  # log order survives inside a bucket
            assert bucket == sorted(bucket)

    @settings(max_examples=200, deadline=None)
    @given(
        items=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=40
        ),
        nparts=st.integers(1, 6),
        cols=st.sampled_from([None, (0,), (1,), (0, 1)]),
    )
    def test_equal_keys_colocate(self, items, nparts, cols):
        buckets = split_indices(items, cols, nparts)
        owner = {}
        for part, bucket in enumerate(buckets):
            for i in bucket:
                key = (
                    items[i]
                    if cols is None
                    else tuple(items[i][c] for c in cols)
                )
                assert owner.setdefault(key, part) == part, (
                    "one join key split across partitions"
                )


def _run_matrix(program, edb, **base):
    """The unpartitioned reference next to a partitions=3 run."""
    ref_db, ref_stats = seminaive_eval(program, edb, partitions=1, **base)
    part_db, part_stats = seminaive_eval(program, edb, partitions=3, **base)
    assert part_db == ref_db
    for counter in ("facts", "inferences", "iterations"):
        assert getattr(part_stats, counter) == getattr(ref_stats, counter)
    return ref_stats, part_stats


class TestFallbacks:
    """Keyless, constant-bound, and tiny-delta plans stay safe."""

    def test_cross_product_recursion_whole_row_hash(self):
        # The recursive join reads nothing from the delta, so there is
        # no join key; whole-row hashing must still partition safely.
        program = parse_program(
            """
            g(X, Y) :- e(X, Y).
            g(X, Y) :- g(X, Z), h(Y).
            """
        )
        edb = Database()
        for i in range(6):
            edb.add_fact("e", (i, i + 1))
            edb.add_fact("h", (i,))
        _run_matrix(program, edb)

    def test_constant_bound_probe_whole_row_hash(self):
        # The only later step probes on a constant, never a delta slot.
        program = parse_program(
            """
            q(X) :- s(X).
            q(Y) :- q(X), f(0, Y).
            """
        )
        edb = Database()
        for i in range(5):
            edb.add_fact("s", (i,))
            edb.add_fact("f", (0, i + 10))
        _run_matrix(program, edb)

    def test_single_fact_deltas_decline(self):
        # A frontier of one fact per round never splits: partitioning
        # declines (len(delta) < 2) and the counters stay untouched.
        program = parse_program(
            """
            r(X) :- start(X).
            r(Y) :- r(X), e(X, Y).
            """
        )
        edb = Database()
        edb.add_fact("start", (0,))
        for i in range(6):
            edb.add_fact("e", (i, i + 1))
        _, part_stats = _run_matrix(program, edb)
        assert part_stats.partition_rounds == 0
        assert part_stats.partition_skew == 0.0

    def test_nonrecursive_components_never_partition(self):
        program = parse_program("t(X, Y) :- e(X, Y), e(Y, X).")
        edb = Database()
        for i in range(8):
            edb.add_fact("e", (i, (i + 1) % 8))
            edb.add_fact("e", ((i + 1) % 8, i))
        _, part_stats = _run_matrix(program, edb)
        assert part_stats.partition_rounds == 0


class TestExecutorSelection:
    def test_one_partition_is_none(self):
        assert make_partition_executor(1, "process") is None

    def test_family_follows_backend_name(self):
        assert type(make_partition_executor(2, "serial")) is SerialPartitionExecutor
        assert type(make_partition_executor(2, "thread")) is ThreadPartitionExecutor
        ex = make_partition_executor(2, "process")
        assert type(ex) is ProcessPartitionExecutor
        ex.close()


class TestProcessGroup:
    def test_worker_failure_degrades_and_counts(self):
        # A reply the parent cannot accept breaks the group: the run
        # returns None (caller re-executes unpartitioned), the failure
        # counts one backend_fallbacks, and the executor declines every
        # later round instead of respawning mid-fixpoint.
        db = Database()
        rel = db.relation("d", 1)
        rel.add(("a",))
        rel.add(("b",))
        view = rel.view(0, 2)
        ex = ProcessPartitionExecutor(2, "tuple", None)

        class BadPlan:
            steps = ()
            rule = "not a rule"
            roles = None

        stats = EvalStats()
        out = ex._execute(
            BadPlan, db, {0: view}, 0, view, view.scan(),
            [[0], [1]], stats, False,
        )
        assert out is None
        assert ex._failed
        assert stats.backend_fallbacks == 1
        assert ex._declines(db, {0: view})
        ex.close()

    def test_ad_hoc_overrides_decline(self):
        # Only windows over live database relations have a wire form.
        db = Database()
        rel = db.relation("d", 1)
        rel.add(("a",))
        ex = ProcessPartitionExecutor(2, "tuple", None)
        try:
            assert ex._declines(db, {0: rel})  # bare Relation, not a view
            from repro.engine.database import Relation

            stray = Relation("d", 1)
            stray.add(("b",))
            assert ex._declines(db, {0: stray.view(0, 1)})  # not live
            assert not ex._declines(db, {0: rel.view(0, 1)})
        finally:
            ex.close()


class TestThreadGroupedShipping:
    def test_small_components_share_one_submission(self):
        width = 5
        program = coarse_components_program(width=width)
        edb = coarse_components_edb(width=width, length=6)
        ref_db, ref_stats = seminaive_eval(program, edb, jobs=1)
        assert ref_stats.scc_batches_shipped == 0
        db, stats = seminaive_eval(program, edb, jobs=2, backend="thread")
        assert db == ref_db
        assert stats.facts == ref_stats.facts
        assert stats.inferences == ref_stats.inferences
        # All five closures are tiny, same-depth components: one pool
        # submission carries the whole group.
        assert stats.scc_batches_shipped == 1

    def test_large_components_ship_alone(self):
        # Two components over >SMALL_COMPONENT_FACTS facts each plus
        # three tiny ones: the big ones get their own submissions, the
        # small ones still share one grouped submission.
        lines = []
        edb = Database()
        for i in range(2):
            lines.append(f"t{i}(X, Y) :- e{i}(X, Y).")
            lines.append(f"t{i}(X, Y) :- t{i}(X, Z), e{i}(Z, Y).")
            for j in range(600):
                edb.add_fact(f"e{i}", (j, j + 10_000))
        for i in range(2, 5):
            lines.append(f"t{i}(X, Y) :- e{i}(X, Y).")
            lines.append(f"t{i}(X, Y) :- t{i}(X, Z), e{i}(Z, Y).")
            for j in range(4):
                edb.add_fact(f"e{i}", (j, j + 1))
        program = parse_program("\n".join(lines))
        ref_db, ref_stats = seminaive_eval(program, edb, jobs=1)
        db, stats = seminaive_eval(program, edb, jobs=2, backend="thread")
        assert db == ref_db
        assert stats.facts == ref_stats.facts
        assert stats.scc_batches_shipped == 1


class TestPartitionCounters:
    def _tc(self, n=12):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            """
        )
        edb = Database()
        for i in range(n):
            edb.add_fact("e", (i, i + 1))
        return program, edb

    def test_counters_engage_on_partitioned_rounds(self):
        program, edb = self._tc()
        _, stats = seminaive_eval(program, edb, partitions=2)
        assert stats.partition_rounds > 0
        assert stats.partition_skew >= 1.0

    def test_counters_stay_zero_unpartitioned(self):
        program, edb = self._tc()
        _, stats = seminaive_eval(program, edb, partitions=1)
        assert stats.partition_rounds == 0
        assert stats.partition_skew == 0.0

    def test_absorb_sums_rounds_and_maxes_skew(self):
        a = EvalStats()
        a.partition_rounds, a.partition_skew = 3, 2.0
        b = EvalStats()
        b.partition_rounds, b.partition_skew = 4, 1.5
        a.absorb(b)
        assert a.partition_rounds == 7
        assert a.partition_skew == 2.0
        b.partition_skew = 2.5
        a.absorb(b)
        assert a.partition_rounds == 11
        assert a.partition_skew == 2.5

    def test_counters_identical_across_partition_backends(self):
        program, edb = self._tc()
        _, ref = seminaive_eval(program, edb, partitions=2, backend="serial")
        for backend in ("thread", "process"):
            _, stats = seminaive_eval(
                program, edb, partitions=2, backend=backend
            )
            assert stats.partition_rounds == ref.partition_rounds
            assert stats.partition_skew == ref.partition_skew
            assert stats.probes == ref.probes  # same split, same work


class TestPartitionsCLI:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "tc.dl"
        path.write_text(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, Z), e(Z, Y).\n"
        )
        return str(path)

    @pytest.fixture
    def facts_file(self, tmp_path):
        # A binary tree from node 0: the reachability frontier holds
        # several facts per round, so partitioned rounds actually occur
        # even under the goal-directed (magic) rewrite.
        path = tmp_path / "facts.dl"
        path.write_text(
            "".join(
                f"e({i}, {2 * i + 1}).\ne({i}, {2 * i + 2}).\n"
                for i in range(7)
            )
        )
        return str(path)

    def test_run_with_partitions(self, program_file, facts_file, capsys):
        for parts in ("1", "2", "4"):
            code = main(
                ["run", program_file, "t(0, Y)", "--facts", facts_file,
                 "--partitions", parts]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert set(out.split()) == {str(i) for i in range(1, 15)}

    def test_stats_flag_reports_partition_counters(
        self, program_file, facts_file, capsys
    ):
        code = main(
            ["run", program_file, "t(0, Y)", "--facts", facts_file,
             "--stats", "--partitions", "2"]
        )
        assert code == 0
        err = capsys.readouterr().err
        for name in ("facts", "inferences", "partition_rounds",
                     "partition_skew"):
            assert name in err
        rounds = int(
            next(
                line.split(":")[1]
                for line in err.splitlines()
                if "partition_rounds" in line
            )
        )
        assert rounds > 0

    def test_bad_partitions_flag_is_a_clean_error(
        self, program_file, facts_file, capsys
    ):
        code = main(
            ["run", program_file, "t(0, Y)", "--facts", facts_file,
             "--partitions", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "partitions" in err

    def test_bad_partitions_env_is_a_clean_error(
        self, program_file, facts_file, capsys, monkeypatch
    ):
        monkeypatch.setenv(PARTITIONS_ENV, "gobs")
        code = main(["run", program_file, "t(0, Y)", "--facts", facts_file])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and PARTITIONS_ENV in err
