"""Incremental view maintenance: the churn path.

Every test holds the one invariant that matters: after any script of
inserts and deletes, the incrementally maintained database must be
*bit-identical* to a from-scratch ``seminaive_eval`` on the final EDB
(and, with provenance on, the recorded derivations must match a
from-scratch ``provenance_eval``).  The least model is unique, so this
is both necessary and sufficient.
"""

import random

import pytest

from repro.datalog.parser import parse_program
from repro.engine.database import Database, Relation
from repro.engine.incremental import IncrementalSession
from repro.engine.provenance import provenance_eval
from repro.engine.seminaive import seminaive_eval
from repro.session import DeductiveDatabase
from repro.workloads.synthetic import churn_edb, churn_program, churn_script

TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    """
)

LAYERED = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    r(X, Y) :- t(X, Y), sel(Y).
    s(X) :- r(X, Y).
    """
)


def chain(n):
    db = Database()
    db.add_facts("e", ((i, i + 1) for i in range(n)))
    return db


def assert_matches_scratch(session, edb, program=None):
    ref, _ = seminaive_eval(program or TC, edb)
    assert session.database == ref


class TestInsert:
    def test_insert_extends_closure(self):
        edb = chain(5)
        session = IncrementalSession(TC, edb)
        stats = session.insert([("e", (5, 6)), ("e", (6, 7))])
        edb.add_facts("e", [(5, 6), (6, 7)])
        assert_matches_scratch(session, edb)
        assert stats.facts > 2  # the EDB facts plus derived closure
        assert stats.incr_rounds >= 1
        assert (7,) in session.query("t(0, Y)")

    def test_insert_only_script(self):
        edb = chain(4)
        session = IncrementalSession(LAYERED, edb)
        rng = random.Random(0)
        for _ in range(25):
            if rng.random() < 0.7:
                fact = (rng.randrange(12), rng.randrange(12))
                session.insert([("e", fact)])
                edb.add_fact("e", fact)
            else:
                fact = (rng.randrange(12),)
                session.insert([("sel", fact)])
                edb.add_fact("sel", fact)
            assert_matches_scratch(session, edb, LAYERED)

    def test_duplicate_insert_is_noop(self):
        edb = chain(4)
        session = IncrementalSession(TC, edb)
        stats = session.insert([("e", (0, 1))])
        assert stats.facts == 0
        assert_matches_scratch(session, edb)

    def test_insert_accepts_datalog_text_and_mapping(self):
        edb = chain(3)
        session = IncrementalSession(TC, edb)
        session.insert("e(3, 4). e(4, 5).")
        session.insert({"e": [(5, 6)]})
        edb.add_facts("e", [(3, 4), (4, 5), (5, 6)])
        assert_matches_scratch(session, edb)

    def test_insert_rejects_non_ground(self):
        session = IncrementalSession(TC, chain(2))
        with pytest.raises(ValueError):
            session.insert("e(1, X).")


class TestDelete:
    def test_delete_shrinks_closure(self):
        edb = chain(6)
        session = IncrementalSession(TC, edb)
        session.delete([("e", (2, 3))])
        edb.remove_fact("e", (2, 3))
        assert_matches_scratch(session, edb)
        assert (5,) not in session.query("t(0, Y)")
        assert (2,) in session.query("t(0, Y)")

    def test_delete_only_script(self):
        edb = churn_edb(36, width=3)
        session = IncrementalSession(TC, edb)
        edges = sorted(
            tuple(t.value for t in fact) for fact in edb.get("e", 2).tuples
        )
        rng = random.Random(1)
        for _ in range(12):
            edge = edges.pop(rng.randrange(len(edges)))
            session.delete([("e", edge)])
            edb.remove_fact("e", edge)
            assert_matches_scratch(session, edb)

    def test_alternate_derivation_survives(self):
        # 0->1->2 plus the shortcut 0->2: deleting (1, 2) must keep
        # t(0, 2) alive through the shortcut (DRed's re-derivation).
        edb = chain(3)
        edb.add_fact("e", (0, 2))
        session = IncrementalSession(TC, edb)
        stats = session.delete([("e", (1, 2))])
        edb.remove_fact("e", (1, 2))
        assert_matches_scratch(session, edb)
        assert session.holds("t(0, 2)")
        assert not session.holds("t(1, 2)")
        assert stats.rederived >= 1

    def test_delete_of_unknown_fact_is_noop(self):
        edb = chain(3)
        session = IncrementalSession(TC, edb)
        stats = session.delete([("e", (7, 8)), ("nope", (1,))])
        assert stats.incr_rounds == 0
        assert_matches_scratch(session, edb)

    def test_saturated_delete_falls_back_to_recompute(self):
        # Deleting most of the EDB trips the over-delete saturation
        # path and the component-recompute re-derivation fallback;
        # the result must still match from scratch.
        edb = chain(12)
        session = IncrementalSession(TC, edb)
        doomed = [("e", (i, i + 1)) for i in range(1, 12)]
        session.delete(doomed)
        for _, args in doomed:
            edb.remove_fact("e", args)
        assert_matches_scratch(session, edb)
        assert session.query("t(0, Y)") == {(1,)}

    def test_program_fact_is_never_deleted(self):
        program = parse_program("p(X, Y) :- q(X, Y).\nq(1, 2).\n")
        edb = Database()
        edb.add_fact("q", (2, 3))
        session = IncrementalSession(program, edb)
        session.delete([("q", (1, 2))])  # not an EDB fact: protected
        assert session.database.has_fact("q", (1, 2))
        assert session.database.has_fact("p", (1, 2))
        session.delete([("q", (2, 3))])
        edb2 = Database()
        ref, _ = seminaive_eval(program, edb2)
        assert session.database == ref


class TestMixedScripts:
    @pytest.mark.parametrize("use_plans", [True, False])
    def test_mixed_script_matches_scratch(self, use_plans):
        edb = churn_edb(24, width=2)
        session = IncrementalSession(LAYERED, edb, use_plans=use_plans)
        rng = random.Random(5)
        for step in range(30):
            if rng.random() < 0.5:
                fact = (rng.randrange(24), rng.randrange(24))
                session.insert([("e", fact)])
                edb.add_fact("e", fact)
            else:
                rel = edb.get("e", 2)
                edges = sorted(
                    tuple(t.value for t in fact) for fact in rel.tuples
                )
                if not edges:
                    continue
                edge = edges[rng.randrange(len(edges))]
                session.delete([("e", edge)])
                edb.remove_fact("e", edge)
            assert_matches_scratch(session, edb, LAYERED)

    def test_churn_script_generator_round_trip(self):
        # The benchmark's script generator against the benchmark's EDB.
        n = 30
        session = IncrementalSession(TC, churn_edb(n))
        edb = churn_edb(n)
        for op, pred, args in churn_script(seed=3, updates=20, n=n):
            if op == "+":
                session.insert([(pred, args)])
                edb.add_fact(pred, args)
            else:
                session.delete([(pred, args)])
                edb.remove_fact(pred, args)
        assert_matches_scratch(session, edb)
        assert churn_script(seed=3, updates=20, n=n) == churn_script(
            seed=3, updates=20, n=n
        )


class TestKnobDeterminism:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"planner": "greedy"},
            {"planner": "cost"},
            {"use_plans": False},
            {"jobs": 2, "backend": "serial"},
            {"jobs": 2, "backend": "thread"},
            {"jobs": 2, "backend": "process"},
        ],
    )
    def test_final_database_identical_across_knobs(self, kwargs):
        """Cross-backend/job-count determinism for the churn path."""
        edb = churn_edb(18, width=2)
        session = IncrementalSession(LAYERED, edb, **kwargs)
        final_edb = churn_edb(18, width=2)
        for op, pred, args in churn_script(seed=9, updates=14, n=18, width=2):
            if op == "+":
                session.insert([(pred, args)])
                final_edb.add_fact(pred, args)
            else:
                session.delete([(pred, args)])
                final_edb.remove_fact(pred, args)
        ref, _ = seminaive_eval(LAYERED, final_edb)
        assert session.database == ref, f"diverged under {kwargs}"


class TestProvenance:
    def test_derivations_match_scratch_after_churn(self):
        edb = chain(5)
        session = IncrementalSession(LAYERED, edb, record_provenance=True)
        edb.add_fact("sel", (3,))
        session.insert([("sel", (3,))])
        edb.add_fact("e", (0, 3))
        session.insert([("e", (0, 3))])
        edb.remove_fact("e", (1, 2))
        session.delete([("e", (1, 2))])
        ref = provenance_eval(LAYERED, edb)
        assert session.database == ref.database
        assert session._derivations == ref.derivations

    def test_explain_after_maintenance(self):
        edb = chain(4)
        session = IncrementalSession(TC, edb, record_provenance=True)
        session.insert([("e", (4, 5))])
        tree = session.explain("t(0, 5)")
        leaves = {str(leaf) for leaf in tree.leaves()}
        assert "e(4, 5)" in leaves
        session.delete([("e", (4, 5))])
        with pytest.raises(KeyError):
            session.explain("t(0, 5)")

    def test_inserted_edb_fact_becomes_leaf(self):
        # t(0, 2) is derived; asserting it directly as an EDB fact
        # turns it into a leaf, exactly as a from-scratch run records.
        edb = chain(3)
        session = IncrementalSession(TC, edb, record_provenance=True)
        assert session.explain("t(0, 2)").height() > 1
        session.insert([("t", (0, 2))])
        edb.add_fact("t", (0, 2))
        ref = provenance_eval(TC, edb)
        assert session.database == ref.database
        assert session._derivations == ref.derivations
        assert session.explain("t(0, 2)").height() == 1

    def test_explain_requires_provenance_mode(self):
        session = IncrementalSession(TC, chain(3))
        with pytest.raises(RuntimeError):
            session.explain("t(0, 1)")

    def test_support_index_skips_unrelated_components(self):
        # Two disjoint closures: deleting in one must not recompute
        # the other (observable through the pass's facts counter —
        # component recomputation re-derives, fact-level passes don't).
        program = parse_program(
            """
            a(X, Y) :- ea(X, Y).
            a(X, Y) :- ea(X, W), a(W, Y).
            b(X, Y) :- eb(X, Y).
            b(X, Y) :- eb(X, W), b(W, Y).
            """
        )
        edb = Database()
        edb.add_facts("ea", ((i, i + 1) for i in range(3)))
        edb.add_facts("eb", ((i, i + 1) for i in range(30)))
        session = IncrementalSession(program, edb, record_provenance=True)
        stats = session.delete([("ea", (2, 3))])
        edb.remove_fact("ea", (2, 3))
        ref = provenance_eval(program, edb)
        assert session.database == ref.database
        assert session._derivations == ref.derivations
        # Only the small component recomputed: nowhere near the ~465
        # facts re-deriving the eb closure would have cost.
        assert stats.facts < 20


class TestDeltaHooks:
    def test_remove_facts_repairs_indexes(self):
        rel = Relation("e", 2)
        facts = [tuple(map(str, (i, i % 3))) for i in range(9)]
        for fact in facts:
            rel.add(fact)
        index = rel.ensure_index((1,))
        assert sum(len(b) for b in index.values()) == 9
        removed = rel.remove_facts([facts[0], facts[3], ("zz", "zz")])
        assert removed == 2
        assert len(rel) == 7
        # The live index was repaired in place, not dropped.
        assert rel._indexes, "index should survive removal"
        assert sum(len(b) for b in rel._indexes[(1,)].values()) == 7
        assert facts[0] not in rel.lookup((1,), (facts[0][1],))

    def test_remove_facts_compacts_log_for_views(self):
        rel = Relation("e", 1)
        for i in range(6):
            rel.add((str(i),))
        rel.remove_facts([("2",), ("4",)])
        assert list(rel.view(0, len(rel))) == [
            ("0",), ("1",), ("3",), ("5",)
        ]

    def test_database_remove_fact_wraps_values(self):
        db = Database()
        db.add_fact("e", (1, 2))
        assert db.remove_fact("e", (1, 2))
        assert not db.remove_fact("e", (1, 2))
        assert not db.has_fact("e", (1, 2))


class TestSessionIntegration:
    def test_materialize_round_trip(self):
        db = DeductiveDatabase()
        db.rules(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, W), reach(W, Y).
            """
        )
        db.facts("edge", [(1, 2), (2, 3)])
        session = db.materialize()
        assert session.query("reach(1, Y)") == {(2,), (3,)}
        session.insert([("edge", (3, 4))])
        assert (4,) in session.query("reach(1, Y)")
        session.delete([("edge", (2, 3))])
        assert session.query("reach(1, Y)") == {(2,)}

    def test_materialize_bridges_mixed_predicates(self):
        db = DeductiveDatabase()
        db.rules(
            """
            likes(X, Z) :- likes(X, Y), likes(Y, Z).
            likes(a, b).
            """
        )
        db.fact("likes", "b", "c")
        session = db.materialize()
        assert ("c",) in session.query("likes(a, Z)")
        # Updates under the user-facing name reach the bridged base.
        session.insert([("likes", ("c", "d"))])
        assert ("d",) in session.query("likes(a, Z)")
        session.delete([("likes", ("c", "d"))])
        assert ("d",) not in session.query("likes(a, Z)")

    def test_stats_accumulate(self):
        session = IncrementalSession(TC, chain(4))
        before = session.stats.facts
        session.insert([("e", (4, 5))])
        session.delete([("e", (4, 5))])
        assert session.stats.facts > before
        assert session.stats.incr_rounds > 0


class TestApplyBatch:
    """Atomic mixed batches: one maintenance pass, all-or-nothing."""

    def test_mixed_batch_matches_scratch(self):
        edb = chain(5)
        session = IncrementalSession(LAYERED, edb)
        session.apply_batch(
            inserts=[("e", (5, 6)), ("sel", (3,))],
            deletes=[("e", (0, 1))],
        )
        edb.add_facts("e", [(5, 6)])
        edb.add_fact("sel", (3,))
        edb.remove_fact("e", (0, 1))
        assert_matches_scratch(session, edb, LAYERED)

    def test_batch_equals_sequential_application(self):
        """One batched pass lands on the same state as per-call passes
        (deletes first, then inserts — the documented order)."""
        batched = IncrementalSession(LAYERED, chain(6))
        stepped = IncrementalSession(LAYERED, chain(6))
        inserts = [("e", (6, 7)), ("sel", (2,))]
        deletes = [("e", (1, 2))]
        batched.apply_batch(inserts=inserts, deletes=deletes)
        stepped.delete(deletes)
        stepped.insert(inserts)
        assert batched.database == stepped.database
        assert batched.edb == stepped.edb

    def test_fact_in_both_sides_ends_present(self):
        """Delete-then-insert order means +x/-x overlap keeps x."""
        edb = chain(4)
        session = IncrementalSession(TC, edb)
        session.apply_batch(
            inserts=[("e", (0, 1))], deletes=[("e", (0, 1))]
        )
        assert_matches_scratch(session, edb)  # unchanged overall
        assert (1,) in session.query("t(0, Y)")

    def test_empty_batch_is_a_noop(self):
        session = IncrementalSession(TC, chain(3))
        before = session.database.total_facts()
        stats = session.apply_batch()
        assert session.database.total_facts() == before
        assert stats.facts == 0

    @pytest.mark.parametrize("provenance", [False, True])
    def test_rollback_restores_everything(self, provenance):
        """A batch that dies mid-flight (round-budget blowout in the
        insert phase, after the delete phase already mutated state)
        leaves database, EDB, statistics, and derivations exactly as
        they were."""
        from repro.engine.stats import MaintenanceError, NonTerminationError

        session = IncrementalSession(
            TC, chain(5), record_provenance=provenance, max_iterations=8
        )
        db_before = {
            sig: set(rel.tuples)
            for sig, rel in session.database.relations.items()
        }
        edb_before = {
            sig: set(rel.tuples)
            for sig, rel in session.edb.relations.items()
        }
        stats_before = (session.stats.facts, session.stats.inferences)
        derivs_before = (
            dict(session._derivations) if provenance else None
        )
        poison = [("e", (100 + i, 101 + i)) for i in range(20)]
        with pytest.raises(MaintenanceError) as exc_info:
            session.apply_batch(inserts=poison, deletes=[("e", (0, 1))])
        assert exc_info.value.phase == "insert"
        assert isinstance(exc_info.value.__cause__, NonTerminationError)
        assert {
            sig: set(rel.tuples)
            for sig, rel in session.database.relations.items()
        } == db_before
        assert {
            sig: set(rel.tuples)
            for sig, rel in session.edb.relations.items()
        } == edb_before
        assert (session.stats.facts, session.stats.inferences) == stats_before
        if provenance:
            assert dict(session._derivations) == derivs_before
        # The session still works: the delete alone goes through.
        session.delete([("e", (0, 1))])
        edb = chain(5)
        edb.remove_fact("e", (0, 1))
        assert_matches_scratch(session, edb)

    def test_malformed_batch_raises_without_wrapping(self):
        """Input errors are the caller's problem, not a maintenance
        failure — no rollback machinery, no MaintenanceError."""
        session = IncrementalSession(TC, chain(3))
        with pytest.raises(TypeError):
            session.apply_batch(inserts=[42])  # not a (predicate, args) pair
