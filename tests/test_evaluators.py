"""Tests for the naive, semi-naive, and top-down evaluators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.parser import parse_literal, parse_program, parse_query
from repro.engine.database import Database
from repro.engine.naive import naive_eval
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import NonTerminationError
from repro.engine.topdown import topdown_eval
from repro.workloads.graphs import chain_edb, cycle_edb, random_digraph_edb
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

from tests.conftest import answer_values

TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    """
)


class TestNaive:
    def test_chain_closure(self):
        db, stats = naive_eval(TC, chain_edb(5))
        assert len(db.facts("t")) == 4 + 3 + 2 + 1
        assert stats.facts == 10

    def test_cycle_closure(self):
        db, _ = naive_eval(TC, cycle_edb(4))
        assert len(db.facts("t")) == 16

    def test_empty_edb(self):
        db, stats = naive_eval(TC, Database())
        assert db.facts("t") == set()

    def test_iteration_guard(self):
        diverging = parse_program("p(s(X)) :- p(X).\n")
        edb = Database()
        edb.add_fact("p", (0,))
        with pytest.raises(NonTerminationError):
            naive_eval(diverging, edb, max_iterations=10)

    def test_fact_guard(self):
        diverging = parse_program("p(s(X)) :- p(X).\n")
        edb = Database()
        edb.add_fact("p", (0,))
        with pytest.raises(NonTerminationError):
            naive_eval(diverging, edb, max_facts=50)

    def test_program_facts_loaded(self):
        program = parse_program("m(1).\nr(X) :- m(X).")
        db, _ = naive_eval(program, Database())
        assert db.has_fact("r", (1,))


class TestSemiNaive:
    def test_matches_naive_on_chain(self):
        naive_db, _ = naive_eval(TC, chain_edb(8))
        semi_db, _ = seminaive_eval(TC, chain_edb(8))
        assert naive_db == semi_db

    def test_matches_naive_on_cycle(self):
        naive_db, _ = naive_eval(TC, cycle_edb(6))
        semi_db, _ = seminaive_eval(TC, cycle_edb(6))
        assert naive_db == semi_db

    def test_no_duplicate_inferences_on_chain(self):
        """Semi-naive repeats strictly less work than naive."""
        _, naive_stats = naive_eval(TC, chain_edb(12))
        _, semi_stats = seminaive_eval(TC, chain_edb(12))
        assert semi_stats.inferences < naive_stats.inferences
        assert semi_stats.facts == naive_stats.facts

    def test_nonlinear_rules(self):
        nonlinear = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y)."
        )
        naive_db, _ = naive_eval(nonlinear, chain_edb(7))
        semi_db, _ = seminaive_eval(nonlinear, chain_edb(7))
        assert naive_db == semi_db

    def test_mutual_recursion(self):
        mutual = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- odd(X), succ(X, Y).
            odd(Y) :- even(X), succ(X, Y).
            """
        )
        edb = Database.from_dict(
            {"zero": [(0,)], "succ": [(i, i + 1) for i in range(10)]}
        )
        naive_db, _ = naive_eval(mutual, edb)
        semi_db, _ = seminaive_eval(mutual, edb)
        assert naive_db == semi_db
        assert answer_values(semi_db.query(parse_literal("even(X)"))) == {
            (i,) for i in range(0, 11, 2)
        }

    def test_stratified_chain_of_predicates(self):
        layered = parse_program(
            """
            a(X, Y) :- e(X, Y).
            b(X, Y) :- a(X, Y).
            c(X) :- b(X, _).
            """
        )
        db, _ = seminaive_eval(layered, chain_edb(4))
        assert len(db.facts("c")) == 3

    def test_guards(self):
        diverging = parse_program("p(s(X)) :- p(X).\n")
        edb = Database()
        edb.add_fact("p", (0,))
        with pytest.raises(NonTerminationError):
            seminaive_eval(diverging, edb, max_facts=50)

    def test_seed_facts_drive_first_round(self):
        program = parse_program("m(5).\nm(Y) :- m(X), e(X, Y).")
        db, _ = seminaive_eval(program, chain_edb(10, relation="e"))
        assert answer_values(db.query(parse_literal("m(X)"))) == {
            (i,) for i in range(5, 10)
        }


class TestTopDown:
    def test_tc_answers(self):
        result = topdown_eval(TC, chain_edb(6), parse_query("t(0, Y)"))
        assert answer_values(result.answers) == {(i,) for i in range(1, 6)}

    def test_goal_directed_subgoals(self):
        """Only goals reachable from the query get tables."""
        result = topdown_eval(TC, chain_edb(10), parse_query("t(7, Y)"))
        # subgoals: t(7,Y), t(8,Y), t(9,Y) — not the earlier sources
        assert result.subgoals <= 4

    def test_pmem_quadratic_table(self):
        """Example 1.2: the table holds O(n^2) entries."""
        n = 6
        result = topdown_eval(pmem_program(), pmem_edb(n), pmem_query(n))
        assert len(result.answers) == n
        assert result.table_entries == n * (n + 1) // 2

    def test_ground_goal(self):
        result = topdown_eval(TC, chain_edb(4), parse_query("t(0, 3)"))
        assert result.answers == {()}

    def test_budget(self):
        with pytest.raises(NonTerminationError):
            topdown_eval(
                TC, cycle_edb(50), parse_query("t(0, Y)"), max_steps=5
            )


# -- cross-evaluator property ------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 12),
    edges=st.integers(1, 30),
    seed=st.integers(0, 5),
    source=st.integers(0, 11),
)
def test_three_evaluators_agree_on_random_graphs(n, edges, seed, source):
    source = source % n
    edb = random_digraph_edb(n, edges, seed)
    goal = parse_literal(f"t({source}, Y)")
    naive_db, _ = naive_eval(TC, edb)
    semi_db, _ = seminaive_eval(TC, edb)
    assert naive_db == semi_db
    td = topdown_eval(TC, edb, goal)
    assert td.answers == naive_db.query(goal)
