"""Unit tests for rules and programs."""

import pytest

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.program import Program
from repro.datalog.rules import Fact, Rule
from repro.datalog.terms import Constant, Variable


class TestLiteral:
    def test_signature(self):
        lit = Literal("p", (Constant(1), Variable("X")))
        assert lit.signature == ("p", 2)

    def test_variables_order(self):
        lit = Literal("p", (Variable("Y"), Variable("X"), Variable("Y")))
        assert [v.name for v in lit.variables()] == ["Y", "X"]

    def test_with_predicate(self):
        lit = Literal("p", (Constant(1),))
        assert lit.with_predicate("q") == Literal("q", (Constant(1),))

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Literal("p", (1,))


class TestRule:
    def test_is_fact(self):
        assert parse_rule("e(1, 2).").is_fact()
        assert not parse_rule("e(X, 2).").is_fact()
        assert not parse_rule("e(1) :- f(1).").is_fact()

    def test_range_restriction(self):
        assert parse_rule("p(X) :- q(X).").is_range_restricted()
        assert not parse_rule("p(X, Y) :- q(X).").is_range_restricted()

    def test_variables_order(self):
        rule = parse_rule("p(X, Y) :- q(Y, Z).")
        assert [v.name for v in rule.variables()] == ["X", "Y", "Z"]

    def test_body_literals_filter(self):
        rule = parse_rule("p(X) :- q(X), r(X), q(X).")
        assert len(rule.body_literals("q")) == 2

    def test_fact_constructor_rejects_variables(self):
        with pytest.raises(ValueError):
            Fact("e", (Variable("X"),))

    def test_rename_variables(self):
        rule = parse_rule("p(X) :- q(X, Y).")
        renamed = rule.rename_variables(
            {Variable("X"): Variable("A"), Variable("Y"): Variable("B")}
        )
        assert renamed == parse_rule("p(A) :- q(A, B).")


class TestProgram:
    def test_idb_edb_split(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        assert program.idb_signatures == frozenset({("t", 2)})
        assert program.edb_signatures == frozenset({("e", 2)})

    def test_rules_for(self):
        program = parse_program("t(X) :- e(X).\nt(X) :- f(X).\ns(X) :- t(X).")
        assert len(program.rules_for("t")) == 2

    def test_replace_rule(self):
        program = parse_program("a(X) :- b(X).")
        old = program.rules[0]
        new = parse_rule("a(X) :- c(X).")
        replaced = program.replace_rule(old, [new])
        assert list(replaced.rules) == [new]

    def test_replace_missing_rule_raises(self):
        program = parse_program("a(X) :- b(X).")
        with pytest.raises(ValueError):
            program.replace_rule(parse_rule("z(X) :- b(X)."), [])

    def test_remove_rule(self):
        program = parse_program("a(X) :- b(X).\na(X) :- c(X).")
        removed = program.remove_rule(program.rules[0])
        assert len(removed) == 1

    def test_uses_function_symbols(self):
        assert parse_program("p(X) :- q(f(X)).").uses_function_symbols()
        assert not parse_program("p(X) :- q(X).").uses_function_symbols()

    def test_check_range_restricted(self):
        with pytest.raises(ValueError):
            parse_program("p(X, Y) :- q(X).").check_range_restricted()

    def test_facts_and_proper_rules(self):
        program = parse_program("e(1, 2).\nt(X) :- e(X, _).")
        assert len(program.facts()) == 1
        assert len(program.proper_rules()) == 1

    def test_declared_edb(self):
        program = parse_program("t(X) :- e(X).").declare_edb([("extra", 1)])
        assert ("extra", 1) in program.edb_signatures
