"""The goal-directed serving path (PR 7).

Covers the :class:`~repro.engine.query.QueryCompiler` tentpole —
strategy selection, canonical-form caching, invalidation — plus the
satellite regressions: reserved-name collisions, ``evaluate_stage``
validation, and the adornment audit for repeated-variable and
partially-ground function-term goals.
"""

import pytest

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.datalog.validate import (
    ensure_no_reserved_names,
    reserved_name_reason,
    validate_program,
)
from repro.engine.database import Database
from repro.engine.incremental import IncrementalSession
from repro.engine.query import QueryCompiler
from repro.engine.seminaive import seminaive_eval
from repro.session import DeductiveDatabase
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

TC_TEXT = """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, W), t(W, Y).
"""

LEFT_TC_TEXT = """
    lt(X, Y) :- e(X, Y).
    lt(X, Y) :- lt(X, W), e(W, Y).
"""


def chain_edb(n):
    edb = Database()
    for i in range(n):
        edb.add_fact("e", (i, i + 1))
    return edb


@pytest.fixture
def tc_compiler():
    return QueryCompiler(parse_program(TC_TEXT))


class TestStrategySelection:
    def test_bound_first_is_factored(self, tc_compiler):
        answer = tc_compiler.ask("t(0, Y)", chain_edb(4))
        assert answer.strategy == "factored"
        assert answer.certified_by == "Theorem 4.1 (selection-pushing)"
        assert answer.values() == {(1,), (2,), (3,), (4,)}

    def test_all_free_is_magic(self, tc_compiler):
        answer = tc_compiler.ask("t(X, Y)", chain_edb(3))
        assert answer.strategy == "magic"
        assert len(answer.values()) == 3 + 2 + 1

    def test_all_bound_is_counting(self, tc_compiler):
        edb = chain_edb(4)
        hit = tc_compiler.ask("t(0, 3)", edb)
        assert hit.strategy == "counting"
        assert hit.certified_by == "Section 6.4 (counting)"
        assert hit.values() == {()}
        assert tc_compiler.ask("t(3, 0)", edb).values() == set()

    def test_edb_goal_answers_from_relation(self, tc_compiler):
        answer = tc_compiler.ask("e(0, Y)", chain_edb(3))
        assert answer.strategy == "edb"
        assert answer.values() == {(1,)}

    def test_idb_arity_mismatch_is_an_error(self, tc_compiler):
        with pytest.raises(ValueError, match="arity 2"):
            tc_compiler.ask("t(1, 2, 3)", chain_edb(2))

    def test_edb_facts_for_idb_predicate_fall_back(self):
        compiler = QueryCompiler(parse_program(TC_TEXT))
        edb = chain_edb(3)
        edb.add_fact("t", (9, 9))  # base fact for a derived predicate
        answer = compiler.ask("t(9, Y)", edb)
        assert answer.strategy == "materialize"
        assert answer.values() == {(9,)}

    def test_zero_arity_goal(self):
        compiler = QueryCompiler(
            parse_program("ok :- e(X, Y), t(X, Y).\n" + TC_TEXT)
        )
        assert compiler.ask("ok", chain_edb(2)).values() == {()}
        empty_compiler = QueryCompiler(
            parse_program("ok :- e(X, Y), t(X, Y).\n" + TC_TEXT)
        )
        assert empty_compiler.ask("ok", Database()).values() == set()


class TestCountingFallback:
    def test_divergence_falls_back_to_magic(self):
        compiler = QueryCompiler(parse_program(LEFT_TC_TEXT))
        edb = Database()
        for a, b in [(1, 2), (2, 3), (3, 1)]:  # a cycle
            edb.add_fact("e", (a, b))
        answer = compiler.ask("lt(1, 3)", edb)
        assert answer.strategy == "counting->magic"
        assert answer.values() == {()}
        # The divergence is remembered: the next ask goes straight to
        # magic without re-running the counting budget.
        again = compiler.ask("lt(2, 1)", edb)
        assert again.strategy == "counting->magic"
        assert again.from_cache

    def test_edb_change_clears_remembered_divergence(self):
        compiler = QueryCompiler(parse_program(LEFT_TC_TEXT))
        edb = Database()
        for a, b in [(1, 2), (2, 3), (3, 1)]:
            edb.add_fact("e", (a, b))
        compiler.ask("lt(1, 3)", edb)
        compiler.note_edb_change()
        entry = compiler._entries[("lt", 2, "bb")]
        assert not entry.counting_diverged
        edb.remove_fact("e", (3, 1))  # break the cycle
        assert compiler.ask("lt(1, 3)", edb).strategy == "counting"


class TestCaching:
    def test_same_form_reuses_compiled_entry(self, tc_compiler):
        edb = chain_edb(4)
        first = tc_compiler.ask("t(0, Y)", edb)
        second = tc_compiler.ask("t(2, Y)", edb)
        assert not first.from_cache and second.from_cache
        assert tc_compiler.compiles == 1 and tc_compiler.cache_hits == 1
        assert second.values() == {(3,), (4,)}

    def test_distinct_forms_compile_separately(self, tc_compiler):
        edb = chain_edb(3)
        tc_compiler.ask("t(0, Y)", edb)
        tc_compiler.ask("t(X, 3)", edb)
        tc_compiler.ask("t(0, 3)", edb)
        assert set(tc_compiler._entries) == {
            ("t", 2, "bf"),
            ("t", 2, "fb"),
            ("t", 2, "bb"),
        }

    def test_cardinality_drift_recompiles(self, tc_compiler):
        edb = chain_edb(2)
        tc_compiler.ask("t(0, Y)", edb)
        for i in range(2, 40):  # > 4x growth past the hi >= 8 floor
            edb.add_fact("e", (i, i + 1))
        answer = tc_compiler.ask("t(0, Y)", edb)
        assert not answer.from_cache
        assert tc_compiler.compiles == 2
        assert answer.values() == {(i,) for i in range(1, 41)}

    def test_instance_certified_entries_drop_on_edb_change(self):
        compiler = QueryCompiler(
            parse_program(TC_TEXT), use_instance_checks=True
        )
        edb = chain_edb(3)
        compiler.ask("t(0, Y)", edb)
        assert compiler._entries
        compiler.note_edb_change()
        assert not compiler._entries


class TestGoalAudit:
    """Repeated variables and partially-ground compound arguments."""

    def test_repeated_variable_simple_positions(self, tc_compiler):
        edb = Database()
        for a, b in [(1, 2), (2, 3), (3, 1), (4, 5)]:
            edb.add_fact("e", (a, b))
        answer = tc_compiler.ask("t(X, X)", edb)
        full, _ = seminaive_eval(parse_program(TC_TEXT), edb)
        assert answer.answers == full.query(parse_query("t(X, X)"))
        assert answer.values() == {(1,), (2,), (3,)}

    def test_repeated_variable_no_cycles_is_empty(self, tc_compiler):
        assert tc_compiler.ask("t(X, X)", chain_edb(4)).values() == set()

    def test_ground_compound_goal(self):
        compiler = QueryCompiler(pmem_program())
        edb = pmem_edb(4)
        assert compiler.ask("pmem(2, [0, 2, 2])", edb).values() == {()}
        assert compiler.ask("pmem(9, [0, 1, 2])", edb).values() == set()

    def test_bound_list_free_element(self):
        compiler = QueryCompiler(pmem_program())
        answer = compiler.ask(pmem_query(4), pmem_edb(4))
        assert answer.strategy == "factored"
        assert answer.values() == {(i,) for i in range(4)}

    def test_repeated_variable_inside_bound_list(self):
        compiler = QueryCompiler(pmem_program())
        answer = compiler.ask("pmem(X, [3, 0, 3])", pmem_edb(4))
        assert answer.values() == {(0,), (3,)}

    @pytest.mark.parametrize(
        "goal",
        [
            "pmem(1, [0, 1, X])",  # variable inside the list
            "pmem(X, [1, X, 3])",  # repeated var straddling the list
            "pmem(1, L)",  # list entirely free
        ],
    )
    def test_unanswerable_forms_fail_with_goal_level_error(self, goal):
        compiler = QueryCompiler(pmem_program())
        with pytest.raises(ValueError) as err:
            compiler.ask(goal, pmem_edb(4))
        message = str(err.value)
        assert "not answerable" in message
        assert goal.replace(" ", "") in str(message).replace(" ", "")
        # The generated-rule vocabulary must not leak.
        assert "m_" not in message and "f_" not in message


class TestReservedNames:
    @pytest.mark.parametrize(
        "predicate",
        ["m_t", "cnt_path", "ans_t", "query", "we@ird", "od~d"],
    )
    def test_reason_flags_generated_namespace(self, predicate):
        assert reserved_name_reason(predicate) is not None

    def test_plain_names_pass(self):
        for name in ["t", "member", "magic", "mt", "cntx", "answer"]:
            assert reserved_name_reason(name) is None

    def test_validate_reports_reserved_names(self):
        report = validate_program(parse_program("m_t(X) :- e(X, Y)."))
        assert not report.ok
        assert any(d.code == "reserved-name" for d in report.diagnostics)

    def test_parser_still_accepts_generated_names(self):
        # The *parser* must keep reading generated programs (round-trips
        # of optimizer output); rejection lives in validation only.
        program = parse_program("m_t@bf(5).")
        assert program.rules[0].head.predicate == "m_t@bf"
        rule = parse_rule("m_t@bf(X) :- f_t@bf(X).")
        assert rule.head.predicate == "m_t@bf"

    def test_session_rules_reject_collisions(self):
        with pytest.raises(ValueError, match="reserved"):
            DeductiveDatabase().rules("m_t(X) :- e(X, Y).")

    def test_session_fact_rejects_collisions(self):
        with pytest.raises(ValueError, match="m_t"):
            DeductiveDatabase().fact("m_t", 1)
        with pytest.raises(ValueError, match="query"):
            DeductiveDatabase().facts("query", [(1,)])

    def test_incremental_updates_reject_collisions(self):
        session = IncrementalSession(parse_program(TC_TEXT), chain_edb(2))
        with pytest.raises(ValueError, match="cnt_x"):
            session.insert([("cnt_x", (1, 2))])
        with pytest.raises(ValueError, match="ans_t"):
            session.delete([("ans_t", (1,))])

    def test_compiler_rejects_collisions(self):
        with pytest.raises(ValueError, match="reserved"):
            QueryCompiler(parse_program("t(X) :- m_e(X)."))


class TestStageValidation:
    def test_unknown_stage_fails_before_evaluation(self):
        result = optimize(parse_program(TC_TEXT), parse_query("t(1, Y)"))
        with pytest.raises(ValueError, match="unknown stage 'bogus'"):
            result.evaluate_stage("bogus", chain_edb(2))

    def test_unproduced_stage_lists_available(self):
        # An all-free goal is never factored, so those stages are absent.
        result = optimize(parse_program(TC_TEXT), parse_query("t(X, Y)"))
        assert result.available_stages() == ("original", "magic")
        with pytest.raises(ValueError, match="original, magic"):
            result.evaluate_stage("factored", chain_edb(2))

    def test_produced_stages_evaluate(self):
        result = optimize(parse_program(TC_TEXT), parse_query("t(0, Y)"))
        assert result.available_stages() == (
            "original",
            "magic",
            "factored",
            "simplified",
        )
        edb = chain_edb(3)
        expected, _ = result.evaluate_stage("original", edb)
        for stage in ("magic", "factored", "simplified"):
            answers, _ = result.evaluate_stage(stage, edb)
            assert answers == expected


class TestSessionIntegration:
    def test_incremental_query_goal_matches_materialization(self):
        session = IncrementalSession(parse_program(TC_TEXT), chain_edb(4))
        assert session.query_goal("t(0, Y)") == session.query("t(0, Y)")
        answer = session.query_goal("t(0, Y)", explain=True)
        assert answer.strategy == "factored"

    def test_query_goal_sees_maintenance_batches(self):
        session = IncrementalSession(parse_program(TC_TEXT), chain_edb(3))
        before = session.query_goal("t(0, Y)")
        session.apply_batch(inserts=[("e", (3, 4))])
        after = session.query_goal("t(0, Y)")
        assert after == before | {(4,)}
        session.apply_batch(deletes=[("e", (1, 2))])
        assert session.query_goal("t(0, Y)") == {(1,)}

    def test_query_goal_is_read_only(self):
        session = IncrementalSession(parse_program(TC_TEXT), chain_edb(3))
        facts_before = session.database.total_facts()
        session.query_goal("t(0, Y)")
        session.query_goal("t(0, 2)")
        assert session.database.total_facts() == facts_before
        # No generated relations leak into the maintained database.
        assert all(
            not sig[0].startswith(("m_", "cnt_", "ans_"))
            for sig in session.database.relations
        )

    def test_session_ask_strategies(self):
        db = DeductiveDatabase()
        db.rules(TC_TEXT)
        for i in range(3):
            db.fact("e", i, i + 1)
        assert db.explain("t(0, Y)").strategy == "factored"
        assert db.explain("t(X, Y)").strategy == "magic"
        assert db.explain("e(0, Y)").strategy == "edb"
        assert db.ask("t(0, Y)") == {(1,), (2,), (3,)}
