"""Tests for the unit-preserving SIP body reordering in `adorn`."""

from repro.analysis.adornment import Adornment, adorn
from repro.datalog.parser import parse_program, parse_query


def body_predicates(adorned, head_predicate):
    return [
        [lit.predicate for lit in rule.body]
        for rule in adorned.program.rules_for(head_predicate)
    ]


class TestSipReorder:
    def test_identity_on_well_ordered_program(self):
        """All of the paper's examples keep their written order."""
        program = parse_program(
            """
            p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
            p(X, Y) :- e(X, Y).
            """
        )
        adorned = adorn(program, parse_query("p(5, Y)"))
        assert body_predicates(adorned, "p@bf")[0] == [
            "l1",
            "p@bf",
            "c1",
            "p@bf",
            "r1",
        ]

    def test_backwards_left_linear(self):
        """Recursive literal written before its binder gets reordered."""
        program = parse_program(
            "t(X, Y) :- t(W, Y), e(X, W).\nt(X, Y) :- e(X, Y)."
        )
        adorned = adorn(program, parse_query("t(X, 5)"))
        # single reachable adornment: unit program preserved
        assert adorned.adornments[("t", 2)] == {Adornment("fb")}
        bodies = body_predicates(adorned, "t@fb")
        assert ["t@fb", "e"] in bodies  # the recursive rule, t first

    def test_two_sided_recursion_both_selections(self):
        program = parse_program(
            """
            t(X, Y) :- t(X, W), down(W, Y).
            t(X, Y) :- up(X, U), t(U, Y).
            t(X, Y) :- flat(X, Y).
            """
        )
        for query, expected in (("t(0, Y)", "bf"), ("t(X, 0)", "fb")):
            adorned = adorn(program, parse_query(query))
            assert adorned.adornments[("t", 2)] == {Adornment(expected)}, query

    def test_genuinely_multi_adornment_falls_back(self):
        """When no order keeps the program unit, the written order stays."""
        program = parse_program(
            """
            p(X, Y) :- q(X, Y).
            p(X, Y) :- q(Y, X), q(X, Y).
            q(A, B) :- e(A, B).
            q(A, B) :- q(A, W), e(W, B).
            """
        )
        adorned = adorn(program, parse_query("p(1, Y)"))
        # p's second rule genuinely calls q under several binding
        # patterns; the reorder keeps each reachable adornment
        # self-consistent (q@fb's own recursion stays fb) but cannot
        # merge the distinct call patterns.
        assert len(adorned.adornments[("q", 2)]) >= 2
        assert all(
            lit.predicate in ("q@fb", "e")
            for rule in adorned.program.rules_for("q@fb")
            for lit in rule.body
        )

    def test_reorder_does_not_change_answers(self):
        from repro.engine.seminaive import seminaive_eval
        from repro.transforms.magic import magic_sets
        from repro.workloads.graphs import chain_edb
        from tests.conftest import oracle_answers

        program = parse_program(
            "t(X, Y) :- t(W, Y), e(X, W).\nt(X, Y) :- e(X, Y)."
        )
        goal = parse_query("t(X, 7)")
        adorned = adorn(program, goal)
        magic = magic_sets(adorned)
        edb = chain_edb(10)
        db, _ = seminaive_eval(magic.program, edb)
        assert magic.answers(db) == oracle_answers(program, goal, edb)

    def test_exit_rules_untouched(self):
        program = parse_program(
            "t(X, Y) :- a(X), b(Y), c(X, Y).\n"
        )
        adorned = adorn(program, parse_query("t(1, Y)"))
        assert body_predicates(adorned, "t@bf")[0] == ["a", "b", "c"]
