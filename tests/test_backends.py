"""Tests for the pluggable execution backends and their wire formats.

Covers the satellite checklist for the backend layer: round-tripping
the compact ``Relation``/``ComponentSpec`` snapshot forms (statistics
and index distinct-key counts preserved), spawn-safe worker
initialization, parallel determinism across ``backend=process`` at
``jobs ∈ {1, 2, 4}``, error propagation across the process boundary,
and the ``--backend``/``REPRO_BACKEND`` validation mirroring the
``--jobs``/``REPRO_JOBS`` handling.
"""

import pickle

import pytest

from repro.cli import main
from repro.datalog.parser import parse_literal, parse_program, parse_term
from repro.engine.backends import (
    BACKEND_ENV,
    ComponentSpec,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    evaluate_component,
    make_backend,
    resolve_backend,
)
from repro.engine.database import Database, Relation
from repro.engine.naive import naive_eval
from repro.engine.provenance import provenance_eval
from repro.engine.scheduler import SCCScheduler
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats, NonTerminationError
from repro.workloads.synthetic import (
    coarse_components_edb,
    coarse_components_program,
    wide_dag_edb,
    wide_dag_program,
)


class TestResolveBackend:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "thread"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend() == "process"

    def test_parameter_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend("serial") == "serial"

    def test_case_and_whitespace_are_forgiven(self):
        assert resolve_backend("  Process ") == "process"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend()

    def test_bad_parameter_raises(self):
        with pytest.raises(ValueError, match="bogus"):
            resolve_backend("bogus")

    def test_make_backend_passthrough_and_names(self):
        backend = ProcessBackend()
        assert make_backend(backend) is backend
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)


class TestCliBackendValidation:
    """--backend / $REPRO_BACKEND fail cleanly, mirroring --jobs."""

    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "tc.dl"
        path.write_text("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n")
        return str(path)

    @pytest.fixture
    def facts_file(self, tmp_path):
        path = tmp_path / "facts.dl"
        path.write_text("e(1, 2).\ne(2, 3).\n")
        return str(path)

    def test_run_with_explicit_backend(self, program_file, facts_file, capsys):
        for backend in ("serial", "thread", "process"):
            code = main(
                ["run", program_file, "t(1, Y)", "--facts", facts_file,
                 "--backend", backend]
            )
            assert code == 0
            assert set(capsys.readouterr().out.split()) == {"2", "3"}

    def test_bad_backend_flag_is_a_clean_error(
        self, program_file, facts_file, capsys
    ):
        code = main(
            ["run", program_file, "t(1, Y)", "--facts", facts_file,
             "--backend", "bogus"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "bogus" in err

    def test_bad_backend_env_is_a_clean_error(
        self, program_file, facts_file, capsys, monkeypatch
    ):
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        code = main(["run", program_file, "t(1, Y)", "--facts", facts_file])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "REPRO_BACKEND" in err

    def test_explain_validates_backend_too(
        self, program_file, facts_file, capsys
    ):
        code = main(
            ["explain", program_file, "t(1, 2)", "--facts", facts_file,
             "--backend", "bogus"]
        )
        assert code == 2
        assert "bogus" in capsys.readouterr().err


class TestRelationSnapshotRoundTrip:
    def _relation_with_stats(self) -> Relation:
        db = Database()
        db.add_facts("e", [(1, 2), (1, 3), (2, 3), (4, 4)])
        rel = db.relation("e", 2)
        rel.ensure_index((0,))
        rel.ensure_index((0,))  # a second use marks the index hot
        rel.ensure_index((1,))
        return rel

    def test_pickle_preserves_facts_log_and_statistics(self):
        rel = self._relation_with_stats()
        dup = pickle.loads(pickle.dumps(rel))
        assert dup.tuples == rel.tuples
        assert dup._log == rel._log  # insertion order is part of the form
        # Index *contents* do not travel; their statistics do.
        assert dup._indexes == {}
        assert dup.distinct_count((0,)) == rel.distinct_count((0,)) == 3
        assert dup.distinct_count((1,)) == rel.distinct_count((1,)) == 3
        assert dup.statistics() == rel.statistics()
        # The restored relation is live: inserts and probes work.
        assert dup.add(rel._log[0]) is False
        assert len(dup.lookup((0,), rel._log[0][:1])) == 2

    def test_snapshot_method_matches_pickle_form(self):
        rel = self._relation_with_stats()
        snap = rel.snapshot()
        assert snap.tuples == rel.tuples
        assert snap._log == rel._log
        assert snap._indexes == {}
        assert snap.statistics() == rel.statistics()
        # Independent: mutating the snapshot leaves the original alone.
        snap.add((parse_term("9"), parse_term("9")))
        assert len(snap) == len(rel) + 1

    def test_view_pickles_compactly(self):
        rel = self._relation_with_stats()
        view = rel.view(1, 3)
        view.ensure_index((0,))
        dup = pickle.loads(pickle.dumps(view))
        assert list(dup) == list(view)
        assert dup.fact_set() == view.fact_set()
        assert dup._indexes is None  # slice-local indexes are rebuilt lazily

    def test_database_snapshot_restricts_to_signatures(self):
        db = Database()
        db.add_facts("e", [(1, 2)])
        db.add_facts("f", [(3,)])
        snap = db.snapshot([("e", 2), ("missing", 1)])
        assert set(snap.relations) == {("e", 2), ("missing", 1)}
        assert len(snap.relation("missing", 1)) == 0
        assert snap.relation("e", 2).tuples == db.relation("e", 2).tuples


class TestComponentSpecRoundTrip:
    def _spec(self):
        program = wide_dag_program(2)
        edb = wide_dag_edb(2, 6)
        scheduler = SCCScheduler(program, jobs=2, backend="process")
        db = edb.copy()
        task = next(t for t in scheduler.tasks if t.recursive)
        return ComponentSpec.from_task(scheduler, task, db, fact_base=0), task

    def test_spec_pickles_and_evaluates_identically(self):
        spec, task = self._spec()
        dup = pickle.loads(pickle.dumps(spec))
        assert dup.sigs == spec.sigs
        assert dup.rules == spec.rules  # structural Rule equality survives
        assert set(dup.relations) == set(spec.relations)
        for sig, rel in spec.relations.items():
            assert dup.relations[sig].tuples == rel.tuples
            assert dup.relations[sig].statistics() == rel.statistics()
        result = evaluate_component(dup)
        direct = evaluate_component(spec)
        assert result.deltas == direct.deltas
        assert result.stats.facts == direct.stats.facts
        assert result.stats.inferences == direct.stats.inferences
        assert set(result.deltas) == set(task.sigs)
        assert all(facts for facts in result.deltas.values())

    def test_spec_carries_only_needed_signatures(self):
        spec, task = self._spec()
        expected = set(task.sigs)
        for rule in task.rules:
            expected |= {lit.signature for lit in rule.body}
        assert set(spec.relations) == expected

    def test_terms_reintern_across_pickle(self):
        term = parse_term("[a, b, c]")
        assert pickle.loads(pickle.dumps(term)) is term  # hash-consing holds


class TestProcessBackendDeterminism:
    def test_process_jobs_counter_identical(self):
        program, edb = wide_dag_program(4), wide_dag_edb(4, 15)
        base_db, base = seminaive_eval(program, edb, jobs=1)
        for jobs in (1, 2, 4):
            db, stats = seminaive_eval(
                program, edb, jobs=jobs, backend="process"
            )
            assert db == base_db, f"jobs={jobs}"
            assert (stats.facts, stats.inferences, stats.iterations) == (
                base.facts, base.inferences, base.iterations,
            ), f"jobs={jobs}"

    def test_all_backends_agree_on_coarse_components(self):
        program = coarse_components_program(3)
        edb = coarse_components_edb(3, 10)
        base_db, base = seminaive_eval(program, edb, jobs=1)
        for backend in ("serial", "thread", "process"):
            db, stats = seminaive_eval(program, edb, jobs=3, backend=backend)
            assert db == base_db, backend
            assert (stats.facts, stats.inferences, stats.iterations) == (
                base.facts, base.inferences, base.iterations,
            ), backend

    def test_naive_mode_through_process_backend(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        base_db, base = naive_eval(program, edb, jobs=1)
        db, stats = naive_eval(program, edb, jobs=3, backend="process")
        assert db == base_db
        assert (stats.facts, stats.inferences) == (base.facts, base.inferences)

    def test_cost_planner_through_process_backend(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 10)
        base_db, base = seminaive_eval(program, edb, planner="cost", jobs=1)
        db, stats = seminaive_eval(
            program, edb, planner="cost", jobs=3, backend="process"
        )
        assert db == base_db
        assert (stats.facts, stats.inferences, stats.iterations) == (
            base.facts, base.inferences, base.iterations,
        )

    def test_provenance_trees_identical_through_process_backend(self):
        program, edb = wide_dag_program(3), wide_dag_edb(3, 8)
        base = provenance_eval(program, edb, jobs=1)
        proc = provenance_eval(program, edb, jobs=3, backend="process")
        assert proc.database == base.database
        assert proc.derivations == base.derivations
        assert proc.stats.provenance_plan_ratio == 1.0
        fact = parse_literal("reach(0, 4)")
        assert proc.explain(fact).render() == base.explain(fact).render()

    def test_spawn_context_worker_init_is_safe(self):
        """Workers must bootstrap under spawn (no inherited state)."""
        program, edb = wide_dag_program(2), wide_dag_edb(2, 6)
        base_db, base = seminaive_eval(program, edb, jobs=1)
        backend = ProcessBackend(start_method="spawn")
        db, stats = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db == base_db
        assert (stats.facts, stats.inferences, stats.iterations) == (
            base.facts, base.inferences, base.iterations,
        )

    def test_nontermination_crosses_the_process_boundary(self):
        program, edb = wide_dag_program(4), wide_dag_edb(4, 15)
        with pytest.raises(NonTerminationError) as exc_info:
            seminaive_eval(
                program, edb, max_facts=30, jobs=2, backend="process"
            )
        assert exc_info.value.facts > 30

    def test_nontermination_error_pickles_with_counters(self):
        err = pickle.loads(pickle.dumps(NonTerminationError("over", 7, 42)))
        assert isinstance(err, NonTerminationError)
        assert (err.iterations, err.facts) == (7, 42)
        assert "over" in str(err)

    def test_backend_pool_is_reusable_after_close(self):
        backend = ProcessBackend()
        program, edb = wide_dag_program(2), wide_dag_edb(2, 5)
        db1, s1 = seminaive_eval(program, edb, jobs=2, backend=backend)
        # scheduler.run closed the pool; a second run must reopen it
        db2, s2 = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db1 == db2
        assert (s1.facts, s1.inferences) == (s2.facts, s2.inferences)

    def test_serial_backend_ignores_jobs(self):
        program, edb = wide_dag_program(4), wide_dag_edb(4, 10)
        db1, s1 = seminaive_eval(program, edb, jobs=1)
        db2, s2 = seminaive_eval(program, edb, jobs=8, backend="serial")
        assert db1 == db2
        assert (s1.facts, s1.inferences, s1.iterations) == (
            s2.facts, s2.inferences, s2.iterations,
        )


class TestSessionBackend:
    def test_deductive_database_accepts_backend(self):
        from repro.session import DeductiveDatabase

        answers = {}
        for backend in ("serial", "thread", "process"):
            db = DeductiveDatabase(jobs=2, backend=backend)
            db.rules(
                """
                reach(X, Y) :- edge(X, Y).
                reach(X, Y) :- edge(X, W), reach(W, Y).
                """
            )
            for edge in ((1, 2), (2, 3), (3, 4)):
                db.fact("edge", *edge)
            answers[backend] = db.ask("reach(1, Y)")
        assert answers["serial"] == answers["thread"] == answers["process"]
        assert answers["serial"] == {(2,), (3,), (4,)}
