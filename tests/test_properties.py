"""Cross-cutting property-based tests (hypothesis).

These are the empirical versions of the paper's theorems: whenever the
recognizers accept, the factored program must agree with Magic (and the
original program) on randomly generated EDBs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_literal, parse_program, parse_query
from repro.engine.database import Database
from repro.engine.naive import naive_eval
from repro.engine.seminaive import seminaive_eval
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import random_digraph_edb

from tests.conftest import oracle_answers

# A pool of unit programs spanning all three rule classes; all are
# syntactically certified, so Theorem 4.1/4.2/4.3 promises answer
# equality on EVERY database — which we sample randomly.
CERTIFIED_PROGRAMS = [
    three_rule_tc_program(),
    parse_program("t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y)."),
    parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y)."),
    parse_program(
        "t(X, Y) :- t(X, U), t(U, Y).\nt(X, Y) :- e(X, Y)."
    ),
    # symmetric: combined rule with a middle conjunction over e2
    parse_program(
        "t(X, Y) :- t(X, U), e2(U, V), t(V, Y).\nt(X, Y) :- e(X, Y)."
    ),
    # answer-propagating mix: left-linear + right-linear, empty bounds
    parse_program(
        """
        t(X, Y) :- t(X, W), e(W, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        t(X, Y) :- e(X, Y).
        """
    ),
]


@settings(max_examples=40, deadline=None)
@given(
    program_index=st.integers(0, len(CERTIFIED_PROGRAMS) - 1),
    n=st.integers(2, 9),
    seed=st.integers(0, 50),
    source=st.integers(0, 8),
)
def test_certified_factoring_preserves_answers(program_index, n, seed, source):
    program = CERTIFIED_PROGRAMS[program_index]
    goal = parse_literal(f"t({source % n}, Y)")
    result = optimize(program, goal)
    assert result.report is not None and result.report.factorable
    rng = random.Random(seed)
    edb = Database.from_dict(
        {
            "e": [(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)],
            "e2": [(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)],
        }
    )
    expected = oracle_answers(program, goal, edb)
    for stage in ("magic", "factored", "simplified"):
        answers, _ = result.evaluate_stage(stage, edb)
        assert answers == expected, stage


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 10),
    seed=st.integers(0, 50),
    source=st.integers(0, 9),
)
def test_simplified_never_more_facts_than_magic(n, seed, source):
    """"Never less efficient than the Magic Sets program" — measured in
    derived facts on random graphs."""
    goal = parse_literal(f"t({source % n}, Y)")
    result = optimize(three_rule_tc_program(), goal)
    edb = random_digraph_edb(n, 3 * n, seed)
    _, magic_stats = result.evaluate_stage("magic", edb)
    _, simplified_stats = result.evaluate_stage("simplified", edb)
    assert simplified_stats.facts <= magic_stats.facts
    assert simplified_stats.inferences <= magic_stats.inferences


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 8),
    extra=st.integers(0, 20),
    seed=st.integers(0, 30),
)
def test_seminaive_equals_naive_on_random_layered_programs(n, extra, seed):
    """Engine invariant: both bottom-up evaluators compute one fixpoint."""
    rng = random.Random(seed)
    program = parse_program(
        """
        a(X, Y) :- e(X, Y).
        a(X, Y) :- e(X, W), a(W, Y).
        b(X) :- a(X, X).
        c(X, Y) :- b(X), a(X, Y).
        """
    )
    edb = Database.from_dict(
        {"e": [(rng.randrange(n), rng.randrange(n)) for _ in range(n + extra)]}
    )
    naive_db, _ = naive_eval(program, edb)
    semi_db, _ = seminaive_eval(program, edb)
    assert naive_db == semi_db


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 8), seed=st.integers(0, 30))
def test_magic_subset_property(n, seed):
    """Magic's t@bf relation is always a subset of the full closure
    restricted to reachable sources (relevance)."""
    goal = parse_literal("t(0, Y)")
    result = optimize(three_rule_tc_program(), goal)
    edb = random_digraph_edb(n, 2 * n, seed)
    full_db, _ = seminaive_eval(three_rule_tc_program(), edb)
    magic_db, _ = seminaive_eval(result.magic.program, edb)
    full_t = full_db.facts("t")
    assert magic_db.facts("t@bf") <= full_t
