"""Tests for the high-level DeductiveDatabase session API."""

import pytest

from repro.session import DeductiveDatabase, QueryReport


@pytest.fixture
def reach_db():
    db = DeductiveDatabase()
    db.rules(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- edge(X, W), reach(W, Y).
        """
    )
    db.facts("edge", [(1, 2), (2, 3), (3, 4), (5, 1)])
    return db


class TestAsk:
    def test_basic_query(self, reach_db):
        assert reach_db.ask("reach(1, Y)") == {(2,), (3,), (4,)}

    def test_ground_query(self, reach_db):
        assert reach_db.ask("reach(1, 4)") == {()}
        assert reach_db.ask("reach(4, 1)") == set()

    def test_holds(self, reach_db):
        assert reach_db.holds("reach(5, 4)")
        assert not reach_db.holds("reach(2, 1)")

    def test_explain_reports_factoring(self, reach_db):
        report = reach_db.explain("reach(1, Y)")
        assert isinstance(report, QueryReport)
        assert report.strategy == "factored"
        assert report.certified_by == "Theorem 4.1 (selection-pushing)"
        assert report.stats.facts > 0

    def test_all_free_query_falls_back(self, reach_db):
        report = reach_db.explain("reach(X, Y)")
        assert report.strategy == "magic"
        assert len(report.answers) == 4 + 3 + 2 + 1  # closure of the chain 5->1->2->3->4

    def test_plan_cache_reused(self, reach_db):
        reach_db.ask("reach(1, Y)")
        entry_before = reach_db._compiler._entries[("reach", 2, "bf")]
        # A different constant with the same binding pattern reuses the
        # compiled query form — the rewrite is constant-independent.
        reach_db.ask("reach(5, Y)")
        assert reach_db._compiler._entries[("reach", 2, "bf")] is entry_before
        assert reach_db._compiler.cache_hits >= 1

    def test_replan_on_new_constant(self, reach_db):
        assert reach_db.ask("reach(1, Y)") == {(2,), (3,), (4,)}
        assert reach_db.ask("reach(5, Y)") == {(1,), (2,), (3,), (4,)}

    def test_facts_added_after_planning(self, reach_db):
        reach_db.ask("reach(1, Y)")
        reach_db.fact("edge", 4, 9)
        assert (9,) in reach_db.ask("reach(1, Y)")


class TestLoading:
    def test_rules_with_inline_facts(self):
        db = DeductiveDatabase()
        db.rules("edge(1, 2).\nreach(X, Y) :- edge(X, Y).")
        assert db.ask("reach(1, Y)") == {(2,)}

    def test_string_constants(self):
        db = DeductiveDatabase()
        db.rules("likes(X, Z) :- friend(X, Y), likes(Y, Z).")
        db.fact("friend", "ann", "bo")
        db.fact("likes", "bo", "jazz")
        # likes is both EDB and IDB here — engine tolerates it.
        assert ("jazz",) in db.ask("likes(ann, Z)")

    def test_adding_rules_clears_plans(self, reach_db):
        reach_db.ask("reach(1, Y)")
        reach_db.rules("reach(X, X) :- edge(X, _).")
        assert (1,) in reach_db.ask("reach(1, Y)")


class TestIntrospection:
    def test_compiled_program_is_unary(self, reach_db):
        program = reach_db.compiled_program("reach(1, Y)")
        for rule in program:
            for lit in (rule.head, *rule.body):
                if lit.predicate.startswith(("m_reach", "f_reach")):
                    assert lit.arity == 1

    def test_plan_summary_mentions_theorem(self, reach_db):
        summary = reach_db.plan_summary("reach(1, Y)")
        assert "Theorem 4.1" in summary
        assert "compiled program" in summary

    def test_plan_summary_non_factorable(self):
        db = DeductiveDatabase()
        db.rules(
            """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            """
        )
        db.facts("up", [(1, 0)])
        db.facts("down", [(0, 2)])
        db.facts("flat", [(0, 0)])
        summary = db.plan_summary("sg(1, Y)")
        assert "Magic Sets" in summary
