"""Tests for static-argument reduction (Section 5, Examples 5.1/5.2)."""

import random

import pytest

from repro.analysis.adornment import Adornment, adorn
from repro.core.pipeline import optimize
from repro.core.reduction import (
    reduce_static_arguments,
    static_argument_positions,
)
from repro.datalog.parser import parse_program, parse_query
from repro.engine.database import Database
from repro.workloads.examples import example_51_program, example_52_program

from tests.conftest import oracle_answers


def adorned_51():
    return adorn(example_51_program(), parse_query("p(5, 6, U)"))


class TestStaticPositions:
    def test_example_51_first_position_static(self):
        adorned = adorned_51()
        positions = static_argument_positions(
            adorned.program, "p@bbf", Adornment("bbf")
        )
        assert positions == [0]

    def test_non_static_when_variable_changes(self):
        program = parse_program(
            "p(X, Y) :- e(X, W), p(W, Y).\np(X, Y) :- e0(X, Y)."
        )
        adorned = adorn(program, parse_query("p(1, Y)"))
        assert static_argument_positions(adorned.program, "p@bf", Adornment("bf")) == []

    def test_free_positions_never_static(self):
        adorned = adorned_51()
        positions = static_argument_positions(
            adorned.program, "p@bbf", Adornment("bbf")
        )
        assert 2 not in positions


class TestReduce:
    def test_example_51_reduced_shape(self):
        adorned = adorned_51()
        result = reduce_static_arguments(adorned.program, adorned.goal)
        assert result.removed_positions == (0,)
        assert result.adornment == "bf"
        # every reduced literal has arity 2, the constant 5 appears in a(5)
        for rule in result.program:
            for lit in (rule.head, *rule.body):
                if lit.predicate == result.reduced_predicate:
                    assert lit.arity == 2
        assert "a(5)" in str(result.program)

    def test_reduction_preserves_answers(self):
        rng = random.Random(0)
        edb = Database.from_dict(
            {
                "a": [(5,)],
                "d": [(rng.randrange(8), rng.randrange(8)) for _ in range(20)],
                "exit": [(5, rng.randrange(8), rng.randrange(8)) for _ in range(12)]
                + [(5, 6, 0), (5, 6, 1)],
            }
        )
        goal = parse_query("p(5, 6, U)")
        result = optimize(example_51_program(), goal)
        assert result.reduction is not None
        best, _ = result.answers(edb)
        assert best == oracle_answers(example_51_program(), goal, edb)

    def test_example_52_pseudo_left_linear(self):
        goal = parse_query("p(5, 6, U)")
        result = optimize(example_52_program(), goal)
        assert result.reduction is not None
        assert result.report is not None and result.report.factorable
        rng = random.Random(1)
        edb = Database.from_dict(
            {
                "d": [(rng.randrange(8), 5, rng.randrange(8)) for _ in range(20)],
                "exit": [(5, 6, rng.randrange(8)) for _ in range(6)],
            }
        )
        best, _ = result.answers(edb)
        assert best == oracle_answers(example_52_program(), goal, edb)

    def test_no_static_positions_raises(self):
        program = parse_program(
            "p(X, Y) :- e(X, W), p(W, Y).\np(X, Y) :- e0(X, Y)."
        )
        adorned = adorn(program, parse_query("p(1, Y)"))
        with pytest.raises(ValueError):
            reduce_static_arguments(adorned.program, adorned.goal)

    def test_reduce_requires_ground_query_arg(self):
        adorned = adorned_51()
        from repro.datalog.parser import parse_literal

        with pytest.raises(ValueError):
            reduce_static_arguments(
                adorned.program, parse_literal("p@bbf(V, 6, U)"), positions=[0]
            )

    def test_reduce_rejects_free_position(self):
        adorned = adorned_51()
        with pytest.raises(ValueError):
            reduce_static_arguments(adorned.program, adorned.goal, positions=[2])
