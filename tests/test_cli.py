"""Tests for the command-line interface."""

import pytest

from repro.cli import main

TC_TEXT = """
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
"""

FACTS_TEXT = "e(1, 2).\ne(2, 3).\ne(3, 4).\n"


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(TC_TEXT)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(FACTS_TEXT)
    return str(path)


class TestClassify:
    def test_factorable(self, program_file, capsys):
        assert main(["classify", program_file, "t(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.1" in out
        assert "combined" in out and "right-linear" in out

    def test_non_factorable(self, tmp_path, capsys):
        path = tmp_path / "sg.dl"
        path.write_text(
            "sg(X, Y) :- flat(X, Y).\n"
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
        )
        assert main(["classify", str(path), "sg(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "factorable: not applicable" in out or "factorable: no" in out


class TestOptimize:
    def test_prints_stages(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)"]) == 0
        out = capsys.readouterr().out
        for marker in ("=== adorned ===", "=== magic ===", "=== simplified ==="):
            assert marker in out
        assert "m_t@bf(1)." in out

    def test_trace_flag(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "prop-5.4a" in out


class TestRun:
    def test_answers(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "t(1, Y)", "--facts", facts_file]) == 0
        captured = capsys.readouterr()
        assert set(captured.out.split()) == {"2", "3", "4"}
        assert "3 answers" in captured.err

    def test_ground_query_true(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "t(1, 4)", "--facts", facts_file]) == 0
        assert "true" in capsys.readouterr().out

    def test_no_facts_file(self, program_file, capsys):
        assert main(["run", program_file, "t(1, Y)"]) == 0
        assert "0 answers" in capsys.readouterr().err


class TestValidate:
    def test_ok_program(self, program_file, capsys):
        assert main(["validate", program_file]) == 0

    def test_warnings_printed(self, tmp_path, capsys):
        path = tmp_path / "warn.dl"
        path.write_text("p(X) :- e(X, Orphan).\n")
        assert main(["validate", str(path)]) == 0
        assert "singleton-variable" in capsys.readouterr().out


class TestServe:
    def run_script(self, tmp_path, program_file, facts_file, script, *extra):
        path = tmp_path / "serve.txt"
        path.write_text(script)
        args = ["serve", program_file, "--script", str(path)]
        if facts_file is not None:
            args += ["--facts", facts_file]
        return main(args + list(extra))

    def test_query_insert_delete_cycle(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = (
            "# incremental smoke\n"
            "? t(1, Y)\n"
            "+ e(4, 5). e(5, 6).\n"
            "? t(1, Y)\n"
            "- e(2, 3).\n"
            "? t(1, Y)\n"
            "stats\n"
            "quit\n"
        )
        assert self.run_script(tmp_path, program_file, facts_file, script) == 0
        out = capsys.readouterr().out
        blocks = out.split("\n")
        # After the inserts the closure reaches 6; after deleting
        # e(2, 3) only t(1, 2) survives.
        assert "6" in out
        assert blocks.count("2") >= 3
        assert "facts=" in out

    def test_bad_input_reports_and_continues(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = "+ e(1, X).\nbogus command\n? t(1, Y)\n"
        assert self.run_script(tmp_path, program_file, facts_file, script) == 0
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "2" in captured.out  # the query still ran

    def test_explain_requires_provenance_flag(
        self, tmp_path, program_file, facts_file, capsys
    ):
        assert (
            self.run_script(tmp_path, program_file, facts_file, "explain t(1, 2)\n")
            == 0
        )
        assert "--provenance" in capsys.readouterr().err

    def test_explain_with_provenance(
        self, tmp_path, program_file, facts_file, capsys
    ):
        code = self.run_script(
            tmp_path, program_file, facts_file,
            "explain t(1, 3)\n", "--provenance",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "t(1, 3)" in out and "[via" in out

    def test_rejects_bad_jobs(self, tmp_path, program_file, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("quit\n")
        code = main(
            ["serve", program_file, "--script", str(path), "--jobs", "0"]
        )
        assert code == 2
        assert "jobs" in capsys.readouterr().err


class TestExplain:
    def test_derivation_tree(self, program_file, facts_file, capsys):
        assert main(
            ["explain", program_file, "t(1, 3)", "--facts", facts_file]
        ) == 0
        out = capsys.readouterr().out
        assert "t(1, 3)" in out and "[via" in out

    def test_underivable(self, program_file, facts_file, capsys):
        code = main(
            ["explain", program_file, "t(4, 1)", "--facts", facts_file]
        )
        assert code == 1
        assert "not derivable" in capsys.readouterr().err


class TestServeRobustness:
    """Script errors: line numbers, rollback, and --strict (satellite a)."""

    run_script = TestServe.run_script

    def test_error_reports_line_number(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = "? t(1, Y)\nbogus command\n? t(1, Y)\n"
        assert self.run_script(tmp_path, program_file, facts_file, script) == 0
        assert "error: line 2:" in capsys.readouterr().err

    def test_failing_command_rolls_back_and_continues(
        self, tmp_path, program_file, facts_file, capsys
    ):
        # The malformed insert fails; the session must still answer
        # exactly as if the line had never been sent.
        script = "? t(1, Y)\n+ e(1, X).\n? t(1, Y)\n"
        assert self.run_script(tmp_path, program_file, facts_file, script) == 0
        captured = capsys.readouterr()
        assert "error: line 2:" in captured.err
        lines = [l for l in captured.out.splitlines() if l.strip()]
        half = len(lines) // 2
        assert lines[:half] == lines[half:]  # identical answer blocks

    def test_strict_aborts_at_the_failing_line(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = "bogus command\n? t(1, Y)\n"
        code = self.run_script(
            tmp_path, program_file, facts_file, script, "--strict"
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "aborting at line 1" in captured.err
        assert "2" not in captured.out  # the query after never ran

    def test_strict_passes_clean_scripts(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = "+ e(4, 5).\n? t(1, Y)\nquit\n"
        code = self.run_script(
            tmp_path, program_file, facts_file, script, "--strict"
        )
        assert code == 0
        assert "5" in capsys.readouterr().out


class TestServeKnobValidation:
    """New knobs fail as loudly as --jobs/--backend (satellite b)."""

    def _serve(self, tmp_path, program_file, *extra):
        path = tmp_path / "empty.txt"
        path.write_text("quit\n")
        return main(
            ["serve", program_file, "--script", str(path)] + list(extra)
        )

    def test_rejects_bad_checkpoint_every(self, tmp_path, program_file, capsys):
        code = self._serve(tmp_path, program_file, "--checkpoint-every", "0")
        assert code == 2
        assert "checkpoint_every" in capsys.readouterr().err

    def test_rejects_bad_timeout(self, tmp_path, program_file, capsys):
        code = self._serve(tmp_path, program_file, "--timeout", "-1")
        assert code == 2
        assert "seconds" in capsys.readouterr().err

    def test_rejects_malformed_faults_env(
        self, tmp_path, program_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "junk")
        from repro.engine import faults

        faults.clear()  # re-arm the lazy env lookup
        code = self._serve(tmp_path, program_file)
        assert code == 2
        assert "REPRO_FAULTS" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_FAULTS")
        faults.clear()

    def test_rejects_malformed_timeout_env(
        self, tmp_path, program_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        code = self._serve(tmp_path, program_file)
        assert code == 2
        assert "REPRO_TIMEOUT" in capsys.readouterr().err


class TestServeJournal:
    """serve --journal: write-ahead logging and restart recovery."""

    def serve(self, tmp_path, program_file, facts_file, script, *extra):
        path = tmp_path / "serve.txt"
        path.write_text(script)
        return main(
            [
                "serve",
                program_file,
                "--facts",
                facts_file,
                "--script",
                str(path),
            ]
            + list(extra)
        )

    def test_restart_resumes_where_it_left_off(
        self, tmp_path, program_file, facts_file, capsys
    ):
        journal = str(tmp_path / "wal.rjn")
        code = self.serve(
            tmp_path, program_file, facts_file,
            "+ e(4, 5).\n- e(2, 3).\nquit\n", "--journal", journal,
        )
        assert code == 0
        capsys.readouterr()
        # Second run over the same journal: both batches replay.
        code = self.serve(
            tmp_path, program_file, facts_file,
            "? t(3, Y)\n? t(1, Y)\nquit\n", "--journal", journal,
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "recovered 2 batches" in captured.err
        out = captured.out.splitlines()
        assert "4" in out and "5" in out  # t(3, 4), t(3, 5) survive
        assert out.count("2") == 1  # t(1, 2) only: e(2, 3) stays deleted

    def test_rolled_back_batch_is_not_replayed(
        self, tmp_path, program_file, facts_file, capsys
    ):
        journal = str(tmp_path / "wal.rjn")
        # e(1, X) fails normalization and never reaches the journal;
        # a semantically failing batch would abort-compensate instead.
        code = self.serve(
            tmp_path, program_file, facts_file,
            "+ e(4, 5).\n+ e(1, X).\nquit\n", "--journal", journal,
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            ["recover", program_file, journal, "--facts", facts_file]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "replayed 1 batches" in captured.err
        assert "e(4, 5)." in captured.out
        assert "X" not in captured.out

    def test_checkpoint_bounds_replay(
        self, tmp_path, program_file, facts_file, capsys
    ):
        journal = str(tmp_path / "wal.rjn")
        code = self.serve(
            tmp_path, program_file, facts_file,
            "+ e(4, 5).\n+ e(5, 6).\n+ e(6, 7).\nquit\n",
            "--journal", journal, "--checkpoint-every", "2",
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            ["recover", program_file, journal, "--facts", facts_file]
        )
        assert code == 0
        captured = capsys.readouterr()
        # Two batches landed before the checkpoint; only the third replays.
        assert "replayed 1 batches" in captured.err
        assert "t(1, 7)." in captured.out

    def test_recover_dump_matches_clean_run(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = "+ e(4, 5).\n- e(1, 2).\n+ e(2, 1).\nquit\n"
        j1, j2 = str(tmp_path / "a.rjn"), str(tmp_path / "b.rjn")
        assert self.serve(
            tmp_path, program_file, facts_file, script, "--journal", j1
        ) == 0
        assert self.serve(
            tmp_path, program_file, facts_file, script, "--journal", j2
        ) == 0
        capsys.readouterr()
        assert main(
            ["recover", program_file, j1, "--facts", facts_file]
        ) == 0
        dump1 = capsys.readouterr().out
        assert main(
            ["recover", program_file, j2, "--facts", facts_file]
        ) == 0
        dump2 = capsys.readouterr().out
        assert dump1 == dump2  # byte-identical recovered databases
        assert "t(" in dump1


class TestCrashRecovery:
    """kill -9 a journaled serve mid-stream; recovery must match a
    run that never crashed (the CI crash-recovery smoke)."""

    def test_sigkill_mid_stream_recovers_bit_identical(
        self, tmp_path, program_file, facts_file, capsys
    ):
        import os
        import signal
        import subprocess
        import sys as _sys

        import repro

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        journal = str(tmp_path / "crash.rjn")
        proc = subprocess.Popen(
            [
                _sys.executable, "-u", "-m", "repro", "serve",
                program_file, "--facts", facts_file, "--journal", journal,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        updates = ["+ e(4, 5).", "+ e(5, 6).", "- e(1, 2)."]
        try:
            for line in updates:
                proc.stdin.write(line + "\n")
                proc.stdin.flush()
                ack = proc.stdout.readline()  # per-batch acknowledgement
                assert ack.strip(), "serve died before acknowledging a batch"
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # A clean run of the same updates, journaled, never killed.
        clean = str(tmp_path / "clean.rjn")
        script = tmp_path / "clean.txt"
        script.write_text("\n".join(updates) + "\nquit\n")
        assert main(
            [
                "serve", program_file, "--facts", facts_file,
                "--script", str(script), "--journal", clean,
            ]
        ) == 0
        capsys.readouterr()

        assert main(
            ["recover", program_file, journal, "--facts", facts_file]
        ) == 0
        crashed_dump = capsys.readouterr().out
        assert main(
            ["recover", program_file, clean, "--facts", facts_file]
        ) == 0
        clean_dump = capsys.readouterr().out
        assert crashed_dump == clean_dump
        assert "t(2, 6)." in crashed_dump
        assert "t(1, 2)." not in crashed_dump  # the delete survived the crash


class TestQuery:
    def test_goal_directed_answers(self, program_file, facts_file, capsys):
        assert main(
            ["query", program_file, "t(1, Y)", "--facts", facts_file]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["2", "3", "4"]
        assert "via" in captured.err

    def test_engine_knobs_pass_through(self, program_file, facts_file, capsys):
        assert main(
            [
                "query", program_file, "t(1, Y)", "--facts", facts_file,
                "--planner", "cost", "--jobs", "2", "--backend", "thread",
            ]
        ) == 0
        assert capsys.readouterr().out.splitlines() == ["2", "3", "4"]

    def test_ground_goal_prints_true(self, program_file, facts_file, capsys):
        assert main(
            ["query", program_file, "t(1, 4)", "--facts", facts_file]
        ) == 0
        assert "true" in capsys.readouterr().out

    def test_reserved_program_is_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text("m_t(X) :- e(X, Y).\n")
        assert main(["query", str(path), "m_t(1)"]) == 2
        assert "reserved" in capsys.readouterr().err

    def test_bad_backend_fails_cleanly(self, program_file, capsys):
        assert main(
            ["query", program_file, "t(1, Y)", "--backend", "bogus"]
        ) == 2
        assert "backend" in capsys.readouterr().err


class TestOptimizeEvaluate:
    def test_evaluate_stage(self, program_file, facts_file, capsys):
        assert main(
            [
                "optimize", program_file, "t(1, Y)",
                "--evaluate", "magic", "--facts", facts_file,
            ]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["2", "3", "4"]
        assert "stage magic" in captured.err

    def test_unknown_stage_fails_before_evaluation(
        self, program_file, facts_file, capsys
    ):
        assert main(
            [
                "optimize", program_file, "t(1, Y)",
                "--evaluate", "bogus", "--facts", facts_file,
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown stage" in err
        assert "original, magic, factored, simplified" in err

    def test_unproduced_stage_lists_available(self, tmp_path, capsys):
        # sg is not factorable, so the factored stage is never produced.
        path = tmp_path / "sg.dl"
        path.write_text(
            "sg(X, Y) :- flat(X, Y).\n"
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
        )
        assert main(
            ["optimize", str(path), "sg(1, Y)", "--evaluate", "factored"]
        ) == 2
        err = capsys.readouterr().err
        assert "not produced" in err
        assert "original, magic" in err

    def test_optimize_rejects_bad_jobs(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err
