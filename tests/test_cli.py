"""Tests for the command-line interface."""

import pytest

from repro.cli import main

TC_TEXT = """
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
"""

FACTS_TEXT = "e(1, 2).\ne(2, 3).\ne(3, 4).\n"


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(TC_TEXT)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(FACTS_TEXT)
    return str(path)


class TestClassify:
    def test_factorable(self, program_file, capsys):
        assert main(["classify", program_file, "t(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.1" in out
        assert "combined" in out and "right-linear" in out

    def test_non_factorable(self, tmp_path, capsys):
        path = tmp_path / "sg.dl"
        path.write_text(
            "sg(X, Y) :- flat(X, Y).\n"
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
        )
        assert main(["classify", str(path), "sg(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "factorable: not applicable" in out or "factorable: no" in out


class TestOptimize:
    def test_prints_stages(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)"]) == 0
        out = capsys.readouterr().out
        for marker in ("=== adorned ===", "=== magic ===", "=== simplified ==="):
            assert marker in out
        assert "m_t@bf(1)." in out

    def test_trace_flag(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "prop-5.4a" in out


class TestRun:
    def test_answers(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "t(1, Y)", "--facts", facts_file]) == 0
        captured = capsys.readouterr()
        assert set(captured.out.split()) == {"2", "3", "4"}
        assert "3 answers" in captured.err

    def test_ground_query_true(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "t(1, 4)", "--facts", facts_file]) == 0
        assert "true" in capsys.readouterr().out

    def test_no_facts_file(self, program_file, capsys):
        assert main(["run", program_file, "t(1, Y)"]) == 0
        assert "0 answers" in capsys.readouterr().err


class TestValidate:
    def test_ok_program(self, program_file, capsys):
        assert main(["validate", program_file]) == 0

    def test_warnings_printed(self, tmp_path, capsys):
        path = tmp_path / "warn.dl"
        path.write_text("p(X) :- e(X, Orphan).\n")
        assert main(["validate", str(path)]) == 0
        assert "singleton-variable" in capsys.readouterr().out


class TestServe:
    def run_script(self, tmp_path, program_file, facts_file, script, *extra):
        path = tmp_path / "serve.txt"
        path.write_text(script)
        args = ["serve", program_file, "--script", str(path)]
        if facts_file is not None:
            args += ["--facts", facts_file]
        return main(args + list(extra))

    def test_query_insert_delete_cycle(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = (
            "# incremental smoke\n"
            "? t(1, Y)\n"
            "+ e(4, 5). e(5, 6).\n"
            "? t(1, Y)\n"
            "- e(2, 3).\n"
            "? t(1, Y)\n"
            "stats\n"
            "quit\n"
        )
        assert self.run_script(tmp_path, program_file, facts_file, script) == 0
        out = capsys.readouterr().out
        blocks = out.split("\n")
        # After the inserts the closure reaches 6; after deleting
        # e(2, 3) only t(1, 2) survives.
        assert "6" in out
        assert blocks.count("2") >= 3
        assert "facts=" in out

    def test_bad_input_reports_and_continues(
        self, tmp_path, program_file, facts_file, capsys
    ):
        script = "+ e(1, X).\nbogus command\n? t(1, Y)\n"
        assert self.run_script(tmp_path, program_file, facts_file, script) == 0
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "2" in captured.out  # the query still ran

    def test_explain_requires_provenance_flag(
        self, tmp_path, program_file, facts_file, capsys
    ):
        assert (
            self.run_script(tmp_path, program_file, facts_file, "explain t(1, 2)\n")
            == 0
        )
        assert "--provenance" in capsys.readouterr().err

    def test_explain_with_provenance(
        self, tmp_path, program_file, facts_file, capsys
    ):
        code = self.run_script(
            tmp_path, program_file, facts_file,
            "explain t(1, 3)\n", "--provenance",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "t(1, 3)" in out and "[via" in out

    def test_rejects_bad_jobs(self, tmp_path, program_file, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("quit\n")
        code = main(
            ["serve", program_file, "--script", str(path), "--jobs", "0"]
        )
        assert code == 2
        assert "jobs" in capsys.readouterr().err


class TestExplain:
    def test_derivation_tree(self, program_file, facts_file, capsys):
        assert main(
            ["explain", program_file, "t(1, 3)", "--facts", facts_file]
        ) == 0
        out = capsys.readouterr().out
        assert "t(1, 3)" in out and "[via" in out

    def test_underivable(self, program_file, facts_file, capsys):
        code = main(
            ["explain", program_file, "t(4, 1)", "--facts", facts_file]
        )
        assert code == 1
        assert "not derivable" in capsys.readouterr().err
