"""Tests for the command-line interface."""

import pytest

from repro.cli import main

TC_TEXT = """
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
"""

FACTS_TEXT = "e(1, 2).\ne(2, 3).\ne(3, 4).\n"


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(TC_TEXT)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(FACTS_TEXT)
    return str(path)


class TestClassify:
    def test_factorable(self, program_file, capsys):
        assert main(["classify", program_file, "t(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.1" in out
        assert "combined" in out and "right-linear" in out

    def test_non_factorable(self, tmp_path, capsys):
        path = tmp_path / "sg.dl"
        path.write_text(
            "sg(X, Y) :- flat(X, Y).\n"
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
        )
        assert main(["classify", str(path), "sg(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "factorable: not applicable" in out or "factorable: no" in out


class TestOptimize:
    def test_prints_stages(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)"]) == 0
        out = capsys.readouterr().out
        for marker in ("=== adorned ===", "=== magic ===", "=== simplified ==="):
            assert marker in out
        assert "m_t@bf(1)." in out

    def test_trace_flag(self, program_file, capsys):
        assert main(["optimize", program_file, "t(1, Y)", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "prop-5.4a" in out


class TestRun:
    def test_answers(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "t(1, Y)", "--facts", facts_file]) == 0
        captured = capsys.readouterr()
        assert set(captured.out.split()) == {"2", "3", "4"}
        assert "3 answers" in captured.err

    def test_ground_query_true(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "t(1, 4)", "--facts", facts_file]) == 0
        assert "true" in capsys.readouterr().out

    def test_no_facts_file(self, program_file, capsys):
        assert main(["run", program_file, "t(1, Y)"]) == 0
        assert "0 answers" in capsys.readouterr().err


class TestValidate:
    def test_ok_program(self, program_file, capsys):
        assert main(["validate", program_file]) == 0

    def test_warnings_printed(self, tmp_path, capsys):
        path = tmp_path / "warn.dl"
        path.write_text("p(X) :- e(X, Orphan).\n")
        assert main(["validate", str(path)]) == 0
        assert "singleton-variable" in capsys.readouterr().out


class TestExplain:
    def test_derivation_tree(self, program_file, facts_file, capsys):
        assert main(
            ["explain", program_file, "t(1, 3)", "--facts", facts_file]
        ) == 0
        out = capsys.readouterr().out
        assert "t(1, 3)" in out and "[via" in out

    def test_underivable(self, program_file, facts_file, capsys):
        code = main(
            ["explain", program_file, "t(4, 1)", "--facts", facts_file]
        )
        assert code == 1
        assert "not derivable" in capsys.readouterr().err
