"""Tests for adornment (Section 4.1 / the Magic Sets front end)."""

import pytest

from repro.analysis.adornment import (
    Adornment,
    adorn,
    adorned_name,
    adornment_from_query,
    split_adorned_name,
)
from repro.datalog.parser import parse_program, parse_query
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.lists import pmem_program, pmem_query


class TestAdornmentBasics:
    def test_positions(self):
        adn = Adornment("bfb")
        assert adn.bound_positions() == (0, 2)
        assert adn.free_positions() == (1,)

    def test_all_bound_free(self):
        assert Adornment("bb").all_bound()
        assert Adornment("ff").all_free()
        assert not Adornment("bf").all_bound()

    def test_name_roundtrip(self):
        name = adorned_name("t", "bf")
        assert name == "t@bf"
        assert split_adorned_name(name) == ("t", Adornment("bf"))

    def test_split_plain_name(self):
        assert split_adorned_name("edge") == ("edge", None)

    def test_split_rejects_non_adornment_suffix(self):
        assert split_adorned_name("a@xyz") == ("a@xyz", None)

    def test_from_query(self):
        assert adornment_from_query(parse_query("t(5, Y)")) == "bf"
        assert adornment_from_query(parse_query("t(X, Y)")) == "ff"
        assert adornment_from_query(parse_query("t(1, 2)")) == "bb"

    def test_ground_compound_is_bound(self):
        assert adornment_from_query(parse_query("p(X, [1, 2])")) == "fb"
        assert adornment_from_query(parse_query("p(X, [1 | T])")) == "ff"


class TestAdornPrograms:
    def test_tc_single_adornment(self):
        adorned = adorn(three_rule_tc_program(), parse_query("t(5, Y)"))
        assert adorned.goal.predicate == "t@bf"
        assert adorned.adornments[("t", 2)] == {Adornment("bf")}
        assert len(adorned.program) == 4

    def test_edb_literals_untouched(self):
        adorned = adorn(three_rule_tc_program(), parse_query("t(5, Y)"))
        for rule in adorned.program:
            for lit in rule.body:
                assert lit.predicate in ("t@bf", "e")

    def test_left_to_right_sip(self):
        """A variable bound by an earlier EDB literal makes later args bound."""
        program = parse_program("p(X, Y) :- e(X, W), q(W, Y).\nq(A, B) :- f(A, B).")
        adorned = adorn(program, parse_query("p(1, Y)"))
        body_preds = {
            lit.predicate for rule in adorned.program for lit in rule.body
        }
        assert "q@bf" in body_preds

    def test_multiple_adornments_reachable(self):
        program = parse_program(
            """
            p(X, Y) :- q(X, Y).
            p(X, Y) :- q(Y, X), q(X, Y).
            q(A, B) :- e(A, B).
            q(A, B) :- q(A, W), e(W, B).
            """
        )
        adorned = adorn(program, parse_query("p(1, Y)"))
        assert Adornment("bf") in adorned.adornments[("q", 2)]
        assert Adornment("fb") in adorned.adornments[("q", 2)]

    def test_pmem_fb(self):
        adorned = adorn(pmem_program(), pmem_query(3))
        assert adorned.goal.predicate == "pmem@fb"
        # The recursive rule's body occurrence must also be fb.
        preds = {lit.predicate for r in adorned.program for lit in r.body}
        assert preds == {"pmem@fb", "p"}

    def test_unknown_query_predicate(self):
        with pytest.raises(ValueError):
            adorn(three_rule_tc_program(), parse_query("nope(1, Y)"))

    def test_all_free_query(self):
        adorned = adorn(three_rule_tc_program(), parse_query("t(X, Y)"))
        assert adorned.goal.predicate == "t@ff"
