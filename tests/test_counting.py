"""Tests for the Counting transformation (Section 6.4)."""

import pytest

from repro.analysis.adornment import adorn
from repro.analysis.isomorphism import programs_isomorphic
from repro.core.factoring import free_name
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query
from repro.engine.database import Database
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import NonTerminationError
from repro.transforms.counting import (
    counting,
    counting_diverges,
    delete_index_fields,
    refine_counting,
)
from repro.transforms.magic import magic_name
from repro.workloads.graphs import chain_edb

RIGHT_ONLY = parse_program(
    """
    p(X, Y) :- first1(X, U), p(U, Y), right1(Y).
    p(X, Y) :- first2(X, U), p(U, Y), right2(Y).
    p(X, Y) :- exit(X, Y).
    """
)

LEFT_TC = parse_program(
    """
    t(X, Y) :- t(X, Z), e(Z, Y).
    t(X, Y) :- e(X, Y).
    """
)

RIGHT_TC = parse_program(
    """
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
    """
)


def right_only_edb(n=8):
    """An EDB satisfying the Section 6.4 example's semantic conditions."""
    db = Database()
    db.add_facts("first1", [(i, i + 1) for i in range(0, n, 2)])
    db.add_facts("first2", [(i, i + 1) for i in range(1, n, 2)])
    db.add_facts("exit", [(i, 100 + i) for i in range(n + 1)])
    targets = [(100 + i,) for i in range(n + 1)]
    db.add_facts("right1", targets)
    db.add_facts("right2", targets)
    return db


class TestCountingStructure:
    def test_right_linear_no_divergence(self):
        result = counting(adorn(RIGHT_ONLY, parse_query("p(0, Y)")))
        assert not counting_diverges(result)

    def test_left_linear_divergence_detected(self):
        result = counting(adorn(LEFT_TC, parse_query("t(0, Y)")))
        assert counting_diverges(result)

    def test_nonunit_program_rejected(self):
        program = parse_program("a(X) :- b(X).\nb(X) :- e(X).")
        adorned = adorn(program, parse_query("a(1)"))
        with pytest.raises(ValueError):
            counting(adorned)


class TestCountingSemantics:
    def test_right_linear_answers_match_magic(self):
        goal = parse_query("t(0, Y)")
        result = counting(adorn(RIGHT_TC, goal))
        edb = chain_edb(8)
        db, _ = seminaive_eval(result.program, edb)
        opt = optimize(RIGHT_TC, goal)
        expected, _ = opt.evaluate_stage("magic", edb)
        assert result.answers(db) == expected

    def test_left_linear_diverges_dynamically(self):
        result = counting(adorn(LEFT_TC, parse_query("t(0, Y)")))
        with pytest.raises(NonTerminationError):
            seminaive_eval(result.program, chain_edb(6), max_facts=3000)

    def test_refined_counting_preserves_answers(self):
        goal = parse_query("p(0, Y)")
        result = counting(adorn(RIGHT_ONLY, goal))
        refined = refine_counting(result)
        edb = right_only_edb()
        db1, _ = seminaive_eval(result.program, edb)
        db2, _ = seminaive_eval(refined.program, edb)
        assert result.answers(db1) == refined.answers(db2)
        assert result.answers(db1)  # nonempty

    def test_index_deletion_preserves_answers_when_factorable(self):
        goal = parse_query("p(0, Y)")
        result = refine_counting(counting(adorn(RIGHT_ONLY, goal)))
        no_index, query_head = delete_index_fields(result)
        edb = right_only_edb()
        db1, _ = seminaive_eval(result.program, edb)
        db2, _ = seminaive_eval(no_index, edb)
        assert result.answers(db1) == db2.query(query_head)


class TestTheorem64:
    def test_program_identity(self):
        """Theorem 6.4: counting minus indices == factored Magic program."""
        goal = parse_query("p(5, Y)")
        adorned = adorn(RIGHT_ONLY, goal)
        no_index, _ = delete_index_fields(refine_counting(counting(adorned)))
        factored = optimize(RIGHT_ONLY, goal, force_factor=True).simplified
        predicate = adorned.goal.predicate
        renaming = {
            f"cnt_{predicate}": magic_name(predicate),
            f"ans_{predicate}": free_name(predicate),
        }
        assert programs_isomorphic(no_index, factored.program, renaming)

    def test_identity_fails_with_left_linear(self):
        """With a left-linear rule, the counting program (even index-
        stripped) differs: the factored program keeps a terminating rule
        where counting had a divergent self-loop."""
        goal = parse_query("t(5, Y)")
        adorned = adorn(LEFT_TC, goal)
        no_index, _ = delete_index_fields(refine_counting(counting(adorned)))
        factored = optimize(LEFT_TC, goal, force_factor=True).simplified
        predicate = adorned.goal.predicate
        renaming = {
            f"cnt_{predicate}": magic_name(predicate),
            f"ans_{predicate}": free_name(predicate),
        }
        assert not programs_isomorphic(no_index, factored.program, renaming)
