"""The cost model: estimator sanity, guard scheduling, re-planning.

Three layers of defence for the cost-based planner:

* *Property tests* over randomized bodies and randomized statistics:
  guard literals (negation / comparison) are never scheduled before
  every variable they mention is bound — whatever the statistics say —
  and the ordering is a permutation of the body.
* *Estimator edge cases*: empty and singleton relations never produce
  negative, NaN, or >cardinality fanouts, and never divide by zero.
* *Regression*: the versioned ``PlanCache`` recompiles a plan when a
  relation's cardinality drifts past the threshold mid-evaluation, and
  ``EvalStats.replans`` counts exactly those recompilations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.literals import Literal
from repro.datalog.parser import parse_program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.cost import (
    COMPARISON_PREDICATES,
    cost_join_order,
    estimate_fanout,
    is_guard,
    resolve_planner,
)
from repro.engine.database import Database, Relation, RelationStatistics
from repro.engine.plan import PlanCache
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats
from repro.workloads.graphs import chain_edb
from repro.workloads.synthetic import skewed_fanout_edb, skewed_fanout_program

VARS = [Variable(name) for name in ("X", "Y", "Z", "W", "U")]


# ---------------------------------------------------------------------------
# Guard scheduling: a property of the ordering, independent of statistics
# ---------------------------------------------------------------------------

relation_literals = st.lists(
    st.tuples(
        st.sampled_from(["e0", "e1", "e2"]),
        st.lists(st.integers(0, len(VARS) - 1), min_size=1, max_size=3),
    ),
    min_size=1,
    max_size=4,
)

guard_literals = st.lists(
    st.tuples(
        st.sampled_from(sorted(COMPARISON_PREDICATES) + ["not_e0", "not_p"]),
        st.lists(st.integers(0, len(VARS) - 1), min_size=1, max_size=2),
    ),
    min_size=1,
    max_size=3,
)

random_stats = st.dictionaries(
    st.sampled_from(["e0", "e1", "e2"]),
    st.integers(0, 10_000),
    min_size=0,
    max_size=3,
)


def _body(relations, guards):
    body = [
        Literal(name, tuple(VARS[i] for i in idxs)) for name, idxs in relations
    ]
    body += [
        Literal(name, tuple(VARS[i] for i in idxs)) for name, idxs in guards
    ]
    return body


@settings(max_examples=200, deadline=None)
@given(relations=relation_literals, guards=guard_literals, cards=random_stats)
def test_guards_never_scheduled_before_bound(relations, guards, cards):
    """Whatever cardinalities the statistics report, a guard literal only
    runs once every one of its variables was bound by an earlier step."""

    def stat_of(idx, literal):
        n = cards.get(literal.predicate)
        return RelationStatistics(n) if n is not None else None

    body = _body(relations, guards)
    order, estimated = cost_join_order(body, {}, stat_of)
    assert sorted(order) == list(range(len(body)))
    assert estimated >= 0.0

    bindable = set()
    for lit in body:
        if not is_guard(lit):
            bindable.update(lit.iter_variables())
    bound = set()
    for idx in order:
        literal = body[idx]
        if is_guard(literal):
            lit_vars = set(literal.iter_variables())
            # A guard whose variables no relation can ever bind is parked
            # at the end; a bindable guard must wait for its variables.
            if lit_vars <= bindable:
                assert lit_vars <= bound, (
                    f"guard {literal} scheduled before {lit_vars - bound} bound"
                )
        bound.update(literal.iter_variables())


@settings(max_examples=100, deadline=None)
@given(relations=relation_literals, cards=random_stats)
def test_cost_order_is_deterministic_permutation(relations, cards):
    def stat_of(idx, literal):
        n = cards.get(literal.predicate)
        return RelationStatistics(n) if n is not None else None

    body = _body(relations, [])
    first, _ = cost_join_order(body, {}, stat_of)
    second, _ = cost_join_order(body, {}, stat_of)
    assert first == second
    assert sorted(first) == list(range(len(body)))


def test_delta_role_breaks_ties():
    x, y, w = Variable("X"), Variable("Y"), Variable("W")
    body = [Literal("e", (x, w)), Literal("t", (w, y))]
    stats = RelationStatistics(100)
    order, _ = cost_join_order(body, {1: "delta"}, lambda i, l: stats)
    assert order[0] == 1  # equal cardinality: the delta drives the join


# ---------------------------------------------------------------------------
# Estimator sanity on degenerate relations
# ---------------------------------------------------------------------------

def test_estimator_on_empty_relation():
    empty = RelationStatistics(0)
    for bound in ((), (0,), (0, 1)):
        assert estimate_fanout(empty, bound, 2) == 0.0


def test_estimator_on_singleton_relation():
    single = RelationStatistics(1, {(0,): 1})
    assert estimate_fanout(single, (), 2) == 1.0
    assert 0.0 < estimate_fanout(single, (0,), 2) <= 1.0
    assert 0.0 < estimate_fanout(single, (0, 1), 2) <= 1.0


def test_estimator_on_unknown_relation():
    assert estimate_fanout(None, (0,), 2) == 0.0


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(0, 10_000),
    distinct=st.integers(0, 10_000),
    arity=st.integers(0, 4),
    bound=st.integers(0, 4),
)
def test_estimator_never_negative_or_above_cardinality(n, distinct, arity, bound):
    positions = tuple(range(min(bound, arity)))
    stats = RelationStatistics(
        n, {positions: min(distinct, n)} if positions else {}
    )
    fanout = estimate_fanout(stats, positions, arity)
    assert fanout >= 0.0
    assert fanout == fanout  # not NaN
    if n == 0:
        assert fanout == 0.0
    else:
        assert fanout <= float(n)


def test_distinct_key_statistics_refine_estimates():
    """With an index, the estimate is the true mean bucket size."""
    stats = RelationStatistics(1000, {(0,): 10})
    assert estimate_fanout(stats, (0,), 2) == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# Versioned invalidation: drift triggers a re-plan, and replans counts it
# ---------------------------------------------------------------------------

def _rule():
    program = parse_program("q(X, Z) :- a(X, Y), b(Y, Z).")
    return program.proper_rules()[0]


def test_plan_cache_replans_on_drift():
    rule = _rule()
    db = Database()
    db.add_facts("a", [(i, i + 1) for i in range(100)])
    db.add_facts("b", [(0, 1)])
    cache = PlanCache("cost")
    stats = EvalStats()

    plan = cache.plan(rule, (), stats, db=db)
    assert plan.order == [1, 0]  # b is tiny: drive the join from it
    assert stats.replans == 0 and stats.plans_compiled == 1

    # Within the drift threshold: the cached plan is reused.
    db.add_facts("b", [(1, 2), (2, 3)])
    assert cache.plan(rule, (), stats, db=db) is plan
    assert stats.replans == 0 and stats.plan_cache_hits == 1

    # b grows past the threshold: the cache must recompile ...
    db.add_facts("b", [(i, i + 1) for i in range(5000)])
    replanned = cache.plan(rule, (), stats, db=db)
    assert replanned is not plan
    assert stats.replans == 1 and stats.plans_compiled == 2
    # ... and the new statistics flip the join order.
    assert replanned.order == [0, 1]


def test_plan_cache_greedy_never_replans():
    rule = _rule()
    db = Database()
    db.add_facts("a", [(1, 2)])
    db.add_facts("b", [(2, 3)])
    cache = PlanCache("greedy")
    stats = EvalStats()
    plan = cache.plan(rule, (), stats, db=db)
    db.add_facts("a", [(i, i + 1) for i in range(1000)])
    assert cache.plan(rule, (), stats, db=db) is plan
    assert stats.replans == 0


def test_replans_counted_during_seminaive_evaluation():
    """Mid-evaluation drift: the recursive relation grows from empty to
    thousands of facts, so the cost planner must re-plan between delta
    rounds and record it on the stats it returns."""
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        """
    )
    _, greedy = seminaive_eval(program, chain_edb(80), planner="greedy")
    _, cost = seminaive_eval(program, chain_edb(80), planner="cost")
    assert cost.replans > 0
    assert greedy.replans == 0
    assert (cost.facts, cost.inferences) == (greedy.facts, greedy.inferences)
    assert cost.estimated_vs_actual  # accuracy samples were recorded
    assert all(est >= 0 and actual >= 0 for est, actual in cost.estimated_vs_actual)
    assert cost.planner_accuracy() >= 0.0


def test_rejects_unknown_planner():
    with pytest.raises(ValueError):
        resolve_planner("selinger")
    with pytest.raises(ValueError):
        PlanCache("selinger")
    with pytest.raises(ValueError):
        seminaive_eval(parse_program("p(1)."), Database(), planner="nope")


def test_planner_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_PLANNER", raising=False)
    assert resolve_planner(None) == "greedy"
    monkeypatch.setenv("REPRO_PLANNER", "cost")
    assert resolve_planner(None) == "cost"
    assert resolve_planner("greedy") == "greedy"  # explicit beats env


def test_skewed_fanout_counters_match_across_planners():
    """The separation workload itself: identical fixpoints and counters,
    far fewer probes under the cost planner."""
    program = skewed_fanout_program()
    edb = skewed_fanout_edb(sources=10, fanout=10, burst=20, selected=20)
    db_g, greedy = seminaive_eval(program, edb, planner="greedy")
    db_c, cost = seminaive_eval(program, edb, planner="cost")
    assert db_g == db_c
    assert (greedy.facts, greedy.inferences) == (cost.facts, cost.inferences)
    assert cost.probes < greedy.probes
