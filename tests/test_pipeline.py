"""Integration tests: the optimize() pipeline on the paper's examples."""

import pytest

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query
from repro.engine.database import Database
from repro.workloads.examples import (
    example_43_edb,
    example_43_program,
    example_43_violating_edbs,
    example_44_edb,
    example_44_program,
    example_45_edb,
    example_45_program,
    same_generation_edb,
    same_generation_program,
    same_generation_query_node,
    three_rule_tc_program,
)
from repro.workloads.graphs import chain_edb, random_digraph_edb
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

from tests.conftest import oracle_answers


class TestTransitiveClosure:
    def test_all_stages_agree(self):
        goal = parse_query("t(0, Y)")
        result = optimize(three_rule_tc_program(), goal)
        edb = random_digraph_edb(15, 40, seed=2)
        expected = oracle_answers(three_rule_tc_program(), goal, edb)
        for stage in ("original", "magic", "factored", "simplified"):
            answers, _ = result.evaluate_stage(stage, edb)
            assert answers == expected, stage

    def test_simplified_is_linear(self):
        goal = parse_query("t(0, Y)")
        result = optimize(three_rule_tc_program(), goal)
        n = 60
        _, stats = result.answers(chain_edb(n))
        # m: n facts, f: n-1, query: n-1 — strictly linear in n.
        assert stats.facts <= 3 * n

    def test_magic_quadratic_on_chain(self):
        goal = parse_query("t(0, Y)")
        result = optimize(three_rule_tc_program(), goal)
        n = 30
        _, stats = result.evaluate_stage("magic", chain_edb(n))
        assert stats.facts > n * n / 4  # the t@bf relation is quadratic


class TestPmem:
    def test_factorable_and_correct(self):
        # NOTE: the original pmem program is not range-restricted (the
        # recursive rule's head invents the list tail), so bottom-up
        # evaluation of the *original* is impossible — the oracle here
        # is the tabled top-down evaluator, as in the paper's Prolog
        # comparison.
        from repro.engine.topdown import topdown_eval

        n = 10
        result = optimize(pmem_program(), pmem_query(n))
        assert result.report.certified_by == "Theorem 4.1 (selection-pushing)"
        edb = pmem_edb(n, satisfying=[2, 5, 7])
        answers, _ = result.answers(edb)
        expected = topdown_eval(pmem_program(), edb, pmem_query(n)).answers
        assert answers == expected


class TestInstanceCertification:
    @pytest.mark.parametrize(
        "program_fn, edb_fn",
        [
            (example_43_program, example_43_edb),
            (example_44_program, example_44_edb),
            (example_45_program, example_45_edb),
        ],
    )
    def test_instance_certified_examples(self, program_fn, edb_fn):
        program, edb = program_fn(), edb_fn()
        goal = parse_query("p(5, Y)")
        result = optimize(program, goal, edb=edb)
        assert result.report is not None and result.report.factorable
        expected = oracle_answers(program, goal, edb)
        for stage in ("magic", "factored", "simplified"):
            answers, _ = result.evaluate_stage(stage, edb)
            assert answers == expected, stage

    def test_syntactic_mode_rejects_them(self):
        for program_fn in (example_43_program, example_44_program, example_45_program):
            result = optimize(program_fn(), parse_query("p(5, Y)"))
            assert result.factored is None

    def test_violating_edbs_make_forced_factoring_wrong(self):
        program = example_43_program()
        for name, (edb, goal) in example_43_violating_edbs().items():
            result = optimize(program, goal, force_factor=True, simplify=False)
            magic_answers, _ = result.evaluate_stage("magic", edb)
            factored_answers, _ = result.evaluate_stage("factored", edb)
            assert magic_answers < factored_answers, name  # strictly wrong

    def test_instance_check_rejects_violating_edbs(self):
        program = example_43_program()
        for name, (edb, goal) in example_43_violating_edbs().items():
            result = optimize(program, goal, edb=edb)
            assert result.factored is None, name


class TestSameGeneration:
    def test_not_factorable_but_magic_correct(self):
        node = same_generation_query_node(4, 2)
        goal = parse_query(f"sg({node}, Y)")
        result = optimize(same_generation_program(), goal)
        assert result.factored is None
        assert not result.classification.ok
        edb = same_generation_edb(4, 2)
        answers, _ = result.answers(edb)
        assert answers == oracle_answers(same_generation_program(), goal, edb)


class TestPipelineEdges:
    def test_all_bound_query_not_factored(self):
        result = optimize(three_rule_tc_program(), parse_query("t(1, 2)"))
        assert result.factored is None  # trivial factoring refused
        edb = chain_edb(5)
        answers, _ = result.answers(edb)
        assert answers == {()}

    def test_all_free_query_not_factored(self):
        result = optimize(three_rule_tc_program(), parse_query("t(X, Y)"))
        assert result.factored is None
        edb = chain_edb(5)
        answers, _ = result.answers(edb)
        assert len(answers) == 10

    def test_nonrecursive_program(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        result = optimize(program, parse_query("t(1, Y)"))
        assert result.classification is None
        edb = chain_edb(4)
        answers, _ = result.answers(edb)
        assert answers == oracle_answers(program, parse_query("t(1, Y)"), edb)

    def test_best_program_fallback_order(self):
        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"),
                          simplify=False)
        assert result.simplified is None
        assert result.best_program() is result.factored.program

    def test_evaluate_stage_unavailable(self):
        result = optimize(same_generation_program(),
                          parse_query(f"sg(1, Y)"))
        with pytest.raises(ValueError):
            result.evaluate_stage("factored", Database())
