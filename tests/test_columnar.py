"""Columnar execution: interning, column slabs, and the batch kernel.

The differential fuzz (``tests/test_fuzz.py``) holds the big property —
columnar and tuple modes are bit-identical on facts and counters.  This
module pins the columnar machinery's *local* contracts: dictionary
interning round-trips, buffered-column draining, compaction after
deletion, duplicate handling, empty-delta rounds, pickling, and the
query overlay sharing the EDB's columns instead of rebuilding them.
"""

import pickle

import pytest

from repro.datalog.parser import parse_program, parse_term
from repro.datalog.terms import Constant
from repro.engine.columnar import (
    DEFAULT_EXEC,
    EXEC_ENV,
    decode_rows,
    resolve_exec,
)
from repro.engine.database import Database, Relation
from repro.engine.intern import TermDictionary
from repro.engine.seminaive import seminaive_eval


def chain_edb(n: int) -> Database:
    db = Database()
    for i in range(n):
        db.add_fact("e", (i, i + 1))
    return db


TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    """
)


# ---------------------------------------------------------------------------
# Mode resolution
# ---------------------------------------------------------------------------


def test_resolve_exec_parameter_env_default(monkeypatch):
    monkeypatch.delenv(EXEC_ENV, raising=False)
    assert resolve_exec() == DEFAULT_EXEC == "columnar"
    assert resolve_exec("tuple") == "tuple"
    monkeypatch.setenv(EXEC_ENV, "tuple")
    assert resolve_exec() == "tuple"
    # The explicit parameter beats the environment.
    assert resolve_exec("columnar") == "columnar"
    monkeypatch.setenv(EXEC_ENV, "bogus")
    with pytest.raises(ValueError, match="REPRO_EXEC"):
        resolve_exec()
    with pytest.raises(ValueError, match="exec"):
        resolve_exec("row-at-a-time")


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------


def test_interning_round_trips_terms():
    d = TermDictionary()
    terms = [
        Constant(7),
        Constant("a"),
        parse_term("[a, b]"),
        parse_term("f(g(1), 2)"),
    ]
    ids = [d.intern(t) for t in terms]
    assert ids == [d.intern(t) for t in terms], "re-interning must be stable"
    assert len(set(ids)) == len(terms)
    assert [d.terms[i] for i in ids] == terms
    rows = [(ids[0], ids[1]), (ids[2], ids[3])]
    assert decode_rows(d.terms, rows) == [
        (terms[0], terms[1]),
        (terms[2], terms[3]),
    ]
    assert decode_rows(d.terms, []) == []


def test_dictionary_survives_pickle_with_ids_intact():
    db = chain_edb(5)
    d = db.ensure_dictionary()
    rel = db.relation("e", 2)
    rel.ensure_columns()
    clone = pickle.loads(pickle.dumps(db))
    assert clone.dictionary is not None
    assert clone.relation("e", 2).tuples == rel.tuples
    # Ids minted before the pickle still decode to the same terms.
    i = d.intern(Constant(0))
    assert clone.dictionary.terms[i] == Constant(0)


# ---------------------------------------------------------------------------
# Buffered columns and lazy mirrors
# ---------------------------------------------------------------------------


def test_append_rows_buffers_then_drains():
    d = TermDictionary()
    rel = Relation("r", 2, d)
    rows = [(d.intern(Constant(i)), d.intern(Constant(i + 1))) for i in range(4)]
    rel.append_rows(rows)
    assert rel._pending_rows, "bulk appends buffer instead of transposing"
    assert len(rel) == 4
    cols = rel.ensure_columns()
    assert not rel._pending_rows
    assert [list(c) for c in cols] == [
        [r[0] for r in rows],
        [r[1] for r in rows],
    ]
    # The tuple mirror decodes lazily and agrees with the columns.
    assert rel.tuples == {(Constant(i), Constant(i + 1)) for i in range(4)}


def test_buffered_relation_snapshot_copy_pickle_drain():
    d = TermDictionary()
    rel = Relation("r", 1, d)
    rel.append_rows([(d.intern(Constant(i)),) for i in range(3)])
    assert rel._pending_rows
    for clone in (rel.copy(), rel.snapshot(), pickle.loads(pickle.dumps(rel))):
        assert clone.tuples == rel.tuples
    assert not rel._pending_rows, "shipping a relation drains its buffer"


def test_views_window_buffered_rows():
    d = TermDictionary()
    rel = Relation("r", 1, d)
    rel.append_rows([(d.intern(Constant(i)),) for i in range(3)])
    rel.append_rows([(d.intern(Constant(i)),) for i in range(3, 5)])
    view = rel.view(3, 5)
    assert set(view) == {(Constant(3),), (Constant(4),)}


# ---------------------------------------------------------------------------
# Compaction after deletion
# ---------------------------------------------------------------------------


def test_columns_compact_after_remove_facts():
    db = chain_edb(6)
    db.ensure_dictionary()
    rel = db.relation("e", 2)
    cols = rel.ensure_columns()
    assert len(cols[0]) == 6
    rel.col_index((0,))
    rel.col_set()
    removed = rel.remove_facts([(Constant(2), Constant(3)), (Constant(4), Constant(5))])
    assert removed == 2
    cols = rel.ensure_columns()
    # Survivors, in their original order, with row i of the columns
    # describing row i of the compacted log.
    survivors = [(0, 1), (1, 2), (3, 4), (5, 6)]
    decoded = decode_rows(db.dictionary.terms, list(zip(*[list(c) for c in cols])))
    assert decoded == [(Constant(a), Constant(b)) for a, b in survivors]
    # Rebuilt row-position structures see only survivors.
    index = rel.col_index((0,))
    key = (db.dictionary.intern(Constant(2)),)
    assert not index.get(key)
    assert len(rel.col_set()) == 4
    # Evaluation over the compacted relation still matches the oracle.
    db_col, _ = seminaive_eval(TC, db, exec="columnar")
    db_tup, _ = seminaive_eval(TC, db, exec="tuple")
    assert db_col == db_tup


def test_remove_facts_invalidates_row_cache():
    db = chain_edb(4)
    db.ensure_dictionary()
    rel = db.relation("e", 2)
    d = db.dictionary
    rel.append_rows([(d.intern(Constant(9)), d.intern(Constant(10)))])
    assert rel._last_rows is not None
    rel.remove_facts([(Constant(9), Constant(10))])
    assert rel._last_rows is None, "compaction shifts the cached span"


# ---------------------------------------------------------------------------
# Kernel semantics
# ---------------------------------------------------------------------------


def test_duplicate_derivations_count_inferences_once_per_row():
    """Rows reachable through several paths dedup into one fact.

    ``p(Y) :- e(X, Y)`` derives each ``Y`` once per incoming edge;
    the kernel must preserve the duplicates for counter parity
    (``inferences``) while the relation dedups the facts.
    """
    program = parse_program("p(Y) :- e(X, Y).")
    db = Database()
    for x in range(4):
        db.add_fact("e", (x, 99))
    col_db, col_stats = seminaive_eval(program, db, exec="columnar")
    tup_db, tup_stats = seminaive_eval(program, db, exec="tuple")
    assert col_db == tup_db
    assert len(col_db.relation("p", 1)) == 1
    assert col_stats.inferences == tup_stats.inferences == 4


def test_empty_delta_round_terminates_identically():
    """The closing round (delta derives nothing new) matches the oracle."""
    db = chain_edb(8)
    col_db, col_stats = seminaive_eval(TC, db, exec="columnar")
    tup_db, tup_stats = seminaive_eval(TC, db, exec="tuple")
    assert col_db == tup_db
    assert col_stats.iterations == tup_stats.iterations
    assert col_stats.probes == tup_stats.probes
    assert len(col_db.relation("t", 2)) == 8 * 9 // 2


def test_columnar_database_equality_is_mode_blind():
    """A columnar-built database equals a tuple-built one (and vice versa)."""
    db = chain_edb(5)
    col_db, _ = seminaive_eval(TC, db, exec="columnar")
    tup_db, _ = seminaive_eval(TC, db, exec="tuple")
    assert col_db == tup_db
    assert tup_db == col_db
    assert col_db.dictionary is not None


# ---------------------------------------------------------------------------
# The query overlay (satellite: dictionary carry + column sharing)
# ---------------------------------------------------------------------------


def test_query_overlay_shares_edb_columns():
    """Serving a query reuses the EDB's dictionary and column slabs.

    The overlay database the compiled query runs in shares the EDB
    relations *by reference*; with a dictionary attached it must also
    share the dictionary, so the columnar kernel probes the EDB's
    persistent column indexes instead of falling back (foreign
    dictionary) or rebuilding per query.
    """
    from repro.engine.query import QueryCompiler

    edb = chain_edb(12)
    edb.ensure_dictionary()
    compiler = QueryCompiler(TC, planner="greedy", exec="columnar")
    answer = compiler.ask("t(3, Y)", edb)
    assert answer.values() == {(y,) for y in range(4, 13)}
    rel = edb.relation("e", 2)
    built = dict(rel._col_indexes)
    assert built, "the serving pass built column indexes on the EDB relation"
    again = compiler.ask("t(5, Y)", edb)
    assert again.from_cache
    assert again.values() == {(y,) for y in range(6, 13)}
    for positions, (index, watermark) in rel._col_indexes.items():
        if positions in built:
            assert built[positions][0] is index, (
                "repeated queries must reuse the EDB's column indexes"
            )


def test_database_copy_and_snapshot_carry_dictionary():
    db = chain_edb(4)
    d = db.ensure_dictionary()
    assert db.copy().dictionary is d
    assert db.snapshot({("e", 2)}).dictionary is d
    staged = db.copy()
    out, _ = seminaive_eval(TC, staged, exec="columnar")
    ref, _ = seminaive_eval(TC, db, exec="tuple")
    assert out == ref


# ---------------------------------------------------------------------------
# Incremental maintenance under the kernel (deterministic spot checks)
# ---------------------------------------------------------------------------


def test_incremental_columnar_batch_churn_matches_scratch():
    from repro.engine.incremental import IncrementalSession

    session = IncrementalSession(TC, chain_edb(6), exec="columnar")
    session.apply_batch(inserts=[("e", (6, 7)), ("e", (7, 8))])
    session.apply_batch(deletes=[("e", (3, 4))])
    session.apply_batch(
        inserts=[("e", (3, 4))], deletes=[("e", (0, 1)), ("e", (7, 8))]
    )
    ref, _ = seminaive_eval(TC, session.edb, exec="tuple")
    assert session.database == ref
    assert session.query("t(1, Y)") == {(y,) for y in range(2, 8)}


# ---------------------------------------------------------------------------
# Concurrent snapshot vs. drain (the serving layer's read-side race)
# ---------------------------------------------------------------------------


def test_snapshot_racing_column_drain_pins_the_watermark():
    """A snapshot/copy/pickle taken while another thread drains the
    pending-row buffer must never capture a partially-buffered slab.

    The serving layer publishes relations by reference and readers
    lazily columnize them, so two readers can race: one triggers the
    ``ensure_columns`` drain while another snapshots the same relation.
    Both run under the dictionary sync lock, which pins the row
    watermark — a torn capture would surface here as a snapshot whose
    columns have unequal lengths (rows lost or garbled by the zip).
    """
    import pickle as _pickle
    import threading

    n = 400
    for trial in range(12):
        d = TermDictionary()
        rel = Relation("r", 2, d)
        expected = set()
        for start in range(0, n, 50):  # several buffered slabs
            rows = []
            for i in range(start, start + 50):
                rows.append((d.intern(Constant(i)), d.intern(Constant(i + 1))))
                expected.add((Constant(i), Constant(i + 1)))
            rel.append_rows(rows)
        assert rel._pending_rows

        captured = {}
        errors = []
        barrier = threading.Barrier(2)

        def drain():
            try:
                barrier.wait()
                rel.ensure_columns()
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def capture():
            try:
                barrier.wait()
                mode = trial % 3
                if mode == 0:
                    captured["clone"] = rel.snapshot()
                elif mode == 1:
                    captured["clone"] = rel.copy()
                else:
                    captured["clone"] = _pickle.loads(_pickle.dumps(rel))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=drain),
            threading.Thread(target=capture),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "drain/snapshot deadlocked"
        assert not errors, errors

        clone = captured["clone"]
        assert len(clone) == n, f"trial {trial}: torn row count"
        assert clone.tuples == expected, f"trial {trial}: garbled capture"
        cols = rel.ensure_columns()
        assert all(len(col) == n for col in cols)
        assert rel.tuples == expected
