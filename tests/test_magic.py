"""Tests for the Magic Sets transformation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.adornment import adorn
from repro.datalog.parser import parse_literal, parse_program, parse_query
from repro.engine.database import Database
from repro.engine.naive import naive_eval
from repro.engine.seminaive import seminaive_eval
from repro.transforms.magic import magic_name, magic_sets, magic_transform
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb, random_digraph_edb
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

from tests.conftest import answer_values, oracle_answers

RIGHT_TC = parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).")


class TestMagicStructure:
    def test_seed(self):
        magic = magic_transform(RIGHT_TC, parse_query("t(5, Y)"))
        assert magic.seed == parse_literal("m_t@bf(5)")
        assert any(r.head == magic.seed and not r.body for r in magic.program)

    def test_guards_added(self):
        magic = magic_transform(RIGHT_TC, parse_query("t(5, Y)"))
        modified = [r for r in magic.program.rules_for("t@bf")]
        assert all(r.body[0].predicate == "m_t@bf" for r in modified)

    def test_magic_rules_have_prefix_bodies(self):
        magic = magic_transform(RIGHT_TC, parse_query("t(5, Y)"))
        magic_rules = [
            r for r in magic.program.rules_for("m_t@bf") if r.body
        ]
        assert len(magic_rules) == 1
        body_preds = [l.predicate for l in magic_rules[0].body]
        assert body_preds == ["m_t@bf", "e"]

    def test_three_rule_tc_matches_figure_1(self):
        """Fig. 1: three magic rules (one per recursive occurrence prefix),
        the seed, four modified rules, and the query rule."""
        magic = magic_transform(three_rule_tc_program(), parse_query("t(5, Y)"))
        magic_rules = [r for r in magic.program.rules_for("m_t@bf") if r.body]
        assert len(magic_rules) == 4  # nonlinear rule contributes 2
        assert len(magic.program.rules_for("t@bf")) == 4
        assert len(magic.program.rules_for("query")) == 1

    def test_query_rule(self):
        magic = magic_transform(RIGHT_TC, parse_query("t(5, Y)"))
        query_rule = magic.program.rules_for("query")[0]
        assert query_rule.body[0].predicate == "t@bf"

    def test_nonground_bound_argument_rejected(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        adorned = adorn(program, parse_query("t(f(Z), Y)"))
        # adornment sees a free arg -> ff; force a fake bound arg instead
        with pytest.raises(ValueError):
            magic_sets(
                type(adorned)(
                    program=adorned.program,
                    goal=parse_literal("t@bf(f(Z), Y)"),
                    original_goal=adorned.original_goal,
                )
            )


class TestMagicSemantics:
    def test_answers_preserved_chain(self):
        magic = magic_transform(RIGHT_TC, parse_query("t(3, Y)"))
        edb = chain_edb(10)
        db, _ = seminaive_eval(magic.program, edb)
        expected = oracle_answers(RIGHT_TC, parse_query("t(3, Y)"), edb)
        assert magic.answers(db) == expected

    def test_relevance_restriction(self):
        """Magic computes fewer t facts than the full closure."""
        magic = magic_transform(RIGHT_TC, parse_query("t(7, Y)"))
        edb = chain_edb(10)
        full_db, _ = seminaive_eval(RIGHT_TC, edb)
        magic_db, _ = seminaive_eval(magic.program, edb)
        assert len(magic_db.facts("t@bf")) < len(full_db.facts("t"))

    def test_pmem_magic(self):
        magic = magic_transform(pmem_program(), pmem_query(5))
        db, _ = seminaive_eval(magic.program, pmem_edb(5))
        assert answer_values(magic.answers(db)) == {(i,) for i in range(5)}

    def test_all_free_query(self):
        magic = magic_transform(RIGHT_TC, parse_query("t(X, Y)"))
        edb = chain_edb(5)
        db, _ = seminaive_eval(magic.program, edb)
        expected = oracle_answers(RIGHT_TC, parse_query("t(X, Y)"), edb)
        assert magic.answers(db) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 10),
        edges=st.integers(1, 25),
        seed=st.integers(0, 20),
        source=st.integers(0, 9),
    )
    def test_answers_preserved_random(self, n, edges, seed, source):
        goal = parse_literal(f"t({source % n}, Y)")
        edb = random_digraph_edb(n, edges, seed)
        magic = magic_transform(three_rule_tc_program(), goal)
        db, _ = seminaive_eval(magic.program, edb)
        assert magic.answers(db) == oracle_answers(
            three_rule_tc_program(), goal, edb
        )


class TestMagicNames:
    def test_magic_name(self):
        assert magic_name("t@bf") == "m_t@bf"
