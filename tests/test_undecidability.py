"""Tests for the Theorem 3.1 reduction gadget."""

from repro.core.undecidability import (
    containment_gadget,
    factoring_is_valid_on,
    proof_counterexample_edb,
)
from repro.datalog.parser import parse_program
from repro.engine.database import Database

from tests.conftest import answer_values


class TestGadget:
    def test_proof_counterexample_refutes_12_3(self):
        """The EDB from the proof: t1'(X,Y), t2'(Z) computes extra tuples."""
        gadget = containment_gadget()
        edb = proof_counterexample_edb()
        assert not factoring_is_valid_on(gadget, "12|3", edb)

    def test_proof_counterexample_exact_tuples(self):
        from repro.core.undecidability import answers

        gadget = containment_gadget()
        edb = proof_counterexample_edb()
        original = answer_values(answers(gadget.original, gadget.goal, edb))
        rewritten = answer_values(answers(gadget.factored_12_3, gadget.goal, edb))
        assert original == {(1, 2, 3), (1, 4, 5)}
        assert rewritten == {(1, 2, 3), (1, 4, 5), (1, 2, 5), (1, 4, 3)}

    def test_1_23_valid_iff_q1_equals_q2(self):
        gadget = containment_gadget()
        same = Database.from_dict(
            {"a1": [(1,)], "a2": [(2,)], "q1": [(3, 4)], "q2": [(3, 4)]}
        )
        differ = Database.from_dict(
            {"a1": [(1,)], "a2": [(2,)], "q1": [(3, 4)], "q2": [(5, 6)]}
        )
        assert factoring_is_valid_on(gadget, "1|23", same)
        assert not factoring_is_valid_on(gadget, "1|23", differ)

    def test_identical_a_relations_always_valid(self):
        """When a1 == a2 the rewritten program cannot mix rule sources."""
        gadget = containment_gadget()
        edb = Database.from_dict(
            {"a1": [(1,)], "a2": [(1,)], "q1": [(3, 4)], "q2": [(5, 6)]}
        )
        assert factoring_is_valid_on(gadget, "1|23", edb)

    def test_idb_queries(self):
        """q1 and q2 given as (recursive) IDB programs."""
        q1 = parse_program("q1(X, Y) :- e(X, Y).\nq1(X, Y) :- e(X, W), q1(W, Y).")
        q2 = parse_program("q2(X, Y) :- e(X, Y).\nq2(X, Y) :- q2(X, W), e(W, Y).")
        gadget = containment_gadget(q1, q2)
        # q1 ≡ q2 (both are TC of e): factoring 1|23 is valid on any EDB.
        edb = Database.from_dict(
            {"a1": [(1,)], "a2": [(2,)], "e": [(1, 2), (2, 3), (3, 1)]}
        )
        assert factoring_is_valid_on(gadget, "1|23", edb)

    def test_idb_queries_differ(self):
        q1 = parse_program("q1(X, Y) :- e(X, Y).\nq1(X, Y) :- e(X, W), q1(W, Y).")
        q2 = parse_program("q2(X, Y) :- e(X, Y).")  # only one step
        gadget = containment_gadget(q1, q2)
        edb = Database.from_dict(
            {"a1": [(1,)], "a2": [(2,)], "e": [(1, 2), (2, 3)]}
        )
        assert not factoring_is_valid_on(gadget, "1|23", edb)
